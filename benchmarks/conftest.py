"""Shared fixtures and reporting helpers for the experiment benches.

Every bench regenerates one of the paper's quantitative claims (see
DESIGN.md's experiment index) and reports *paper vs measured* rows.  Rows
are printed to the live terminal (bypassing capture) and written to
``benchmarks/results/EXX.txt`` so the numbers survive into version
control next to the code that produced them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.match import HarmonyMatchEngine
from repro.synthetic import case_study, extended_study, generate_clustered_corpus

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class ExperimentReport:
    """Collects and emits one experiment's paper-vs-measured rows."""

    experiment_id: str
    title: str
    _lines: list[str]

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def row(self, label: str, paper: str, measured: str) -> None:
        self._lines.append(f"  {label:<44} paper: {paper:<16} measured: {measured}")

    def flush(self, capsys) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        header = f"[{self.experiment_id}] {self.title}"
        body = "\n".join([header, "-" * len(header), *self._lines, ""])
        with open(
            os.path.join(RESULTS_DIR, f"{self.experiment_id}.txt"),
            "w",
            encoding="utf-8",
        ) as handle:
            handle.write(body + "\n")
        with capsys.disabled():
            print()
            print(body)


@pytest.fixture
def report_factory(capsys):
    reports: list[ExperimentReport] = []

    def make(experiment_id: str, title: str) -> ExperimentReport:
        report = ExperimentReport(experiment_id, title, [])
        reports.append(report)
        return report

    yield make
    for report in reports:
        report.flush(capsys)


@pytest.fixture(scope="session")
def case_pair():
    """The synthetic section-3 pair (1378 x 784, paper counts asserted)."""
    return case_study(seed=2009)


@pytest.fixture(scope="session")
def engine():
    return HarmonyMatchEngine()


@pytest.fixture(scope="session")
def case_result(case_pair, engine):
    """One full engine run over the case-study pair, shared by benches."""
    return engine.match(case_pair.source.schema, case_pair.target.schema)


@pytest.fixture(scope="session")
def case_summaries(case_pair):
    return case_pair.source.truth_summary(), case_pair.target.truth_summary()


@pytest.fixture(scope="session")
def family():
    """The {SA, SC, SD, SE, SF} comprehensive-vocabulary family."""
    return extended_study(seed=2009)


@pytest.fixture(scope="session")
def registry_corpus():
    """Planted-cluster corpus for the clustering and search benches."""
    return generate_clustered_corpus(
        n_domains=4, schemata_per_domain=6, seed=2009
    )
