"""E10 -- schema search: the registry ranked by a schema-as-query.

Paper (sections 2 and 5): "A powerful way to search the MDR would be to
simply use one's target schema as the 'query term.'  Using schema matching
technology, the system would rank the available schemata" and "a more
sophisticated one could return relevant schema fragments."

Every corpus schema queries the registry (itself excluded); a hit is
relevant when it comes from the same planted domain.  We report MRR and
precision@5 for whole-schema ranking plus a fragment-search spot check.
"""

from repro.metrics import precision_at_k, reciprocal_rank
from repro.search import KeywordQuery, SchemaIndex, SchemaQuery, SchemaSearchEngine


def test_e10_schema_as_query(benchmark, registry_corpus, report_factory):
    index = SchemaIndex()
    for generated in registry_corpus.schemata:
        index.add(generated.schema)
    searcher = SchemaSearchEngine(index)
    names = registry_corpus.names
    domain_of = registry_corpus.domain_of

    def run_all_queries():
        rankings = {}
        for generated in registry_corpus.schemata:
            name = generated.schema.name
            hits = searcher.search(
                SchemaQuery(generated.schema), limit=10, exclude=name
            )
            rankings[name] = [hit.schema_name for hit in hits]
        return rankings

    rankings = benchmark.pedantic(run_all_queries, rounds=1, iterations=1)

    mrr_values = []
    p5_values = []
    for name, ranked in rankings.items():
        relevant = {
            other
            for other in names
            if other != name and domain_of[other] == domain_of[name]
        }
        mrr_values.append(reciprocal_rank(ranked, relevant))
        p5_values.append(precision_at_k(ranked, relevant, 5))
    mrr = sum(mrr_values) / len(mrr_values)
    p5 = sum(p5_values) / len(p5_values)

    fragments = searcher.search_fragments(KeywordQuery("blood test physician"), limit=5)

    report = report_factory("E10", "Registry search with schema-as-query (2, 5)")
    report.row("queries run", "each schema as query term", str(len(rankings)))
    report.row("mean reciprocal rank", "same-COI schema first", f"{mrr:.2f}")
    report.row("precision@5", "same-COI dominates top-5", f"{p5:.2f}")
    report.line()
    report.line("  fragment search for 'blood test physician':")
    for hit in fragments:
        report.line(
            f"    {hit.schema_name}/{hit.root_name}  (score {hit.score:.2f})"
        )

    # Shape: same-domain schemata rank first essentially always, and the
    # top-5 is mostly same-domain (5 positive candidates exist per query).
    assert mrr > 0.9
    assert p5 > 0.6
    # Fragment search surfaces a medically themed sub-tree when one exists.
    if fragments:
        assert fragments[0].score >= fragments[-1].score
