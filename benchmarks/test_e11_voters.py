"""E11 -- ablation: evidence-aware voting is Harmony's claimed novelty.

Paper (section 3.2): "Harmony is novel in that it considers both the
standard evidence ratio ... as well as the total amount of available
evidence when calculating confidence scores.  This approach allows the vote
merger to combine confidence scores into a single match score based on how
confident each match voter is."

Three ablations on the case study, all scored against ground truth at each
configuration's best-F1 operating point under a 1:1 assignment:

1. single voters vs the full ensemble (does combination help?);
2. **evidence-blind** voters (ratio only, ignoring evidence mass) vs the
   evidence-aware default -- the paper's explicit novelty claim;
3. merger family: conviction-linear (default) vs conviction-renormalised
   vs plain average.
"""

from repro.match import HarmonyMatchEngine
from repro.matchers import (
    DEFAULT_VOTER_WEIGHTS,
    DataTypeVoter,
    DocumentationVoter,
    NameTokenVoter,
    NgramVoter,
    PathVoter,
    StructuralVoter,
    ThesaurusVoter,
    default_voters,
)
from repro.metrics import best_f1_assignment
from repro.voting import (
    AverageMerger,
    ConvictionLinearMerger,
    ConvictionWeightedMerger,
)

SINGLE_VOTERS = (
    NameTokenVoter,
    NgramVoter,
    ThesaurusVoter,
    DocumentationVoter,
    DataTypeVoter,
    PathVoter,
    StructuralVoter,
)


def test_e11_voter_and_merger_ablation(benchmark, case_pair, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema
    truth = case_pair.truth_pairs

    def ablate():
        scores = {}
        for voter_class in SINGLE_VOTERS:
            engine = HarmonyMatchEngine(voters=[voter_class()])
            scores[voter_class().name] = best_f1_assignment(
                engine.match(source, target).matrix, truth
            )
        scores["ensemble (default)"] = best_f1_assignment(
            HarmonyMatchEngine().match(source, target).matrix, truth
        )
        blind_voters = default_voters()
        for voter in blind_voters:
            voter.evidence_blind = True
        blind_engine = HarmonyMatchEngine(
            voters=blind_voters,
            merger=ConvictionLinearMerger(voter_weights=DEFAULT_VOTER_WEIGHTS),
        )
        scores["ensemble evidence-blind"] = best_f1_assignment(
            blind_engine.match(source, target).matrix, truth
        )
        for merger in (ConvictionWeightedMerger(), AverageMerger()):
            engine = HarmonyMatchEngine(voters=default_voters(), merger=merger)
            scores[f"ensemble {merger.name}"] = best_f1_assignment(
                engine.match(source, target).matrix, truth
            )
        return scores

    scores = benchmark.pedantic(ablate, rounds=1, iterations=1)

    report = report_factory("E11", "Voter / merger / evidence ablation (section 3.2)")
    report.line("  configuration                   best-thr   P      R      F1")
    for name, (threshold, measurement) in scores.items():
        report.line(
            f"  {name:<30}  {threshold:>7.2f}  {measurement.precision:.3f}  "
            f"{measurement.recall:.3f}  {measurement.f1:.3f}"
        )

    ensemble_f1 = scores["ensemble (default)"][1].f1
    blind_f1 = scores["ensemble evidence-blind"][1].f1
    average_f1 = scores["ensemble average"][1].f1
    renorm_f1 = scores["ensemble conviction_weighted"][1].f1
    best_single_f1 = max(
        measurement.f1
        for name, (_, measurement) in scores.items()
        if not name.startswith("ensemble")
    )

    report.line()
    report.row(
        "ensemble vs best single voter", "combination helps",
        f"{ensemble_f1:.3f} vs {best_single_f1:.3f}",
    )
    report.row(
        "evidence-aware vs evidence-blind", "evidence mass helps (novelty)",
        f"{ensemble_f1:.3f} vs {blind_f1:.3f}",
    )
    report.row(
        "conviction-linear vs renormalised vs average", "merging strategy matters",
        f"{ensemble_f1:.3f} vs {renorm_f1:.3f} vs {average_f1:.3f}",
    )

    # Shape claims.
    assert ensemble_f1 > best_single_f1
    assert ensemble_f1 > blind_f1
    assert ensemble_f1 > average_f1
    assert ensemble_f1 > renorm_f1
