"""E12 -- Harmony vs conventional matcher architectures.

Paper (section 3.2) positions Harmony against the conventional architecture
line [COMA, Cupid, learning ensembles]; this bench scores the architectural
comparators on the case study: naive exact-name matching, COMA-lite
(average-combined matchers), Cupid-lite (linguistic+structural linear mix),
Similarity-Flooding-lite (structural fixpoint), and the full Harmony-style
engine -- all at their individual best-F1 operating points under a 1:1
assignment (the standard basis for comparing matchers that are allowed a
final selection step).
"""

from repro.baselines import SimilarityFloodingMatcher, baseline_engines
from repro.metrics import best_f1_assignment


def test_e12_baseline_comparison(benchmark, case_pair, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema
    truth = case_pair.truth_pairs

    def run_comparison():
        scores = {}
        for name, engine in baseline_engines().items():
            result = engine.match(source, target)
            scores[name] = (
                best_f1_assignment(result.matrix, truth),
                result.elapsed_seconds,
            )
        flooding_result = SimilarityFloodingMatcher().match(source, target)
        scores["similarity_flooding"] = (
            best_f1_assignment(flooding_result.matrix, truth),
            flooding_result.elapsed_seconds,
        )
        return scores

    scores = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    report = report_factory("E12", "Matcher architecture comparison (section 3.2)")
    report.line("  matcher               best-thr   P      R      F1     seconds")
    for name, ((threshold, measurement), seconds) in scores.items():
        report.line(
            f"  {name:<20}  {threshold:>7.2f}  {measurement.precision:.3f}  "
            f"{measurement.recall:.3f}  {measurement.f1:.3f}  {seconds:>7.2f}"
        )

    harmony_f1 = scores["harmony"][0][1].f1
    naive_f1 = scores["naive"][0][1].f1
    coma_f1 = scores["coma_lite"][0][1].f1
    cupid_f1 = scores["cupid_lite"][0][1].f1
    flooding_f1 = scores["similarity_flooding"][0][1].f1

    report.line()
    report.row(
        "who wins", "Harmony-class engine",
        f"harmony {harmony_f1:.3f} > coma {coma_f1:.3f}, cupid {cupid_f1:.3f}, "
        f"SF {flooding_f1:.3f}, naive {naive_f1:.3f}",
    )

    # Shape claims: the full evidence-aware ensemble wins; naive exact-name
    # matching is hopeless across naming conventions.
    assert harmony_f1 >= max(coma_f1, cupid_f1, flooding_f1)
    assert naive_f1 < 0.2
    assert harmony_f1 > 2 * naive_f1
