"""E13 -- automatic summarization approximates the engineers' concepts.

Paper (sections 4.2 and 5): "schema summarization is a useful pre-cursor to
large scale schema matching ... research is needed both in exploiting such
summaries, and in creating them."

The bench scores the automatic summarizers against the ground-truth
(engineer) summary of SA: the importance summarizer must pick concept roots
that agree with the truth assignment; the token-cluster summarizer trades
concept count for breadth.  It also measures the *exploitation* claim: the
concept-level match pass driven by an automatic summary still finds most of
the true concept matches found with the manual one.
"""

from repro.summarize import (
    ImportanceSummarizer,
    TokenClusterSummarizer,
    match_concepts,
    summary_agreement,
)


def test_e13_auto_summarization(
    benchmark, case_pair, case_result, case_summaries, report_factory
):
    source = case_pair.source.schema
    truth_summary, target_truth = case_summaries

    def summarize_all():
        importance = ImportanceSummarizer(k=140).summarize(source)
        clustered = TokenClusterSummarizer().summarize(source)
        return importance, clustered

    importance, clustered = benchmark.pedantic(summarize_all, rounds=1, iterations=1)

    importance_agreement = summary_agreement(importance, truth_summary)
    clustered_agreement = summary_agreement(clustered, truth_summary)

    manual_matches = match_concepts(truth_summary, target_truth, case_result)
    auto_matches = match_concepts(importance, target_truth, case_result)

    report = report_factory("E13", "Automatic schema summarization (4.2, 5)")
    report.line("  summarizer          concepts  coverage  purity  inv.purity  pairF1")
    for name, summary, agreement in (
        ("truth (engineers)", truth_summary, summary_agreement(truth_summary, truth_summary)),
        ("importance k=140", importance, importance_agreement),
        ("token clusters", clustered, clustered_agreement),
    ):
        report.line(
            f"  {name:<18}  {int(agreement['n_concepts']):>7}  "
            f"{agreement['coverage']:>7.0%}  {agreement['purity']:>6.2f}  "
            f"{agreement['inverse_purity']:>9.2f}  {agreement['pairwise_f1']:>6.2f}"
        )
    report.line()
    report.row(
        "concept matches via manual summary", "24", str(len(manual_matches))
    )
    report.row(
        "concept matches via auto summary", "close to manual",
        str(len(auto_matches)),
    )

    # With k = number of roots, the importance summarizer reproduces the
    # root-per-concept truth exactly (same partition of elements).
    assert importance_agreement["purity"] == 1.0
    assert importance_agreement["coverage"] == 1.0
    # Token clustering is coarser but must remain pure enough to organise
    # work (each cluster dominated by few truth concepts) and total.
    assert clustered_agreement["coverage"] == 1.0
    assert clustered_agreement["inverse_purity"] > 0.9
    # Exploitation: the automatic summary supports concept matching nearly
    # as well as the manual one.
    assert len(auto_matches) >= int(0.8 * len(manual_matches))
