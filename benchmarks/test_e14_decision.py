"""E14 -- the subsume-vs-bridge decision and its crossover.

Paper (section 3.1): "Eliminating Sys(SB) was not the clear choice if a)
the set of distinct SB elements were sufficiently large and b) the set of
common elements ... were sufficiently small" -- and 3.4's outcome: with 517
distinct elements, "subsuming Sys(SB) would be a challenging undertaking."

The bench evaluates the decision model on the reproduced overlap analysis
(the verdict must be BRIDGE, matching the paper's implication) and sweeps
the distinct-element count to locate the crossover where subsuming becomes
attractive.
"""

from repro.metrics import workflow_overlap
from repro.metrics.overlap import OverlapReport
from repro.planning import DecisionModel, Option


def _report_with(n_common: int, n_distinct: int) -> OverlapReport:
    return OverlapReport(
        source_total=1378,
        target_total=n_common + n_distinct,
        intersection_source_ids={f"s{i}" for i in range(n_common)},
        intersection_target_ids={f"t{i}" for i in range(n_common)},
        source_only_ids=set(),
        target_only_ids={f"u{i}" for i in range(n_distinct)},
    )


def test_e14_subsume_vs_bridge(
    benchmark, case_result, case_summaries, report_factory
):
    source_summary, target_summary = case_summaries
    model = DecisionModel()

    def decide():
        overlap = workflow_overlap(case_result, source_summary, target_summary)
        verdict = model.evaluate(overlap)
        sweep = []
        for n_distinct in (0, 30, 60, 90, 150, 300, 517):
            sweep.append(
                (n_distinct, model.evaluate(_report_with(267, n_distinct)))
            )
        return overlap, verdict, sweep

    overlap, verdict, sweep = benchmark.pedantic(decide, rounds=1, iterations=1)

    report = report_factory("E14", "Subsume-vs-bridge decision (3.1, 3.4)")
    report.row(
        "case-study verdict",
        "subsuming SB 'challenging' -> bridge",
        verdict.describe(),
    )
    report.row(
        "crossover (distinct elements)",
        "exists; 517 is far above it",
        f"{model.crossover_distinct_count():.0f}",
    )
    report.line()
    report.line("  distinct SB elements   subsume(pd)   bridge(pd)   choice")
    for n_distinct, recommendation in sweep:
        report.line(
            f"  {n_distinct:>19}   {recommendation.subsume.total:>10.0f}   "
            f"{recommendation.bridge.total:>9.0f}   {recommendation.choice}"
        )

    # The paper's outcome: with ~2/3 of SB distinct, bridge wins.
    assert verdict.choice is Option.BRIDGE
    # The sweep crosses over exactly once, from subsume to bridge.
    choices = [recommendation.choice for _, recommendation in sweep]
    first_bridge = choices.index(Option.BRIDGE)
    assert all(choice is Option.SUBSUME for choice in choices[:first_bridge])
    assert all(choice is Option.BRIDGE for choice in choices[first_bridge:])
    assert 0 < model.crossover_distinct_count() < 517
