"""E15 (extension) -- documentation vs data instances.

Paper (section 3.2): "Harmony relies heavily on textual documentation to
identify candidate correspondences instead of data instances because, at
least in the government sector, schema documentation is easier to obtain
than data (which may not yet exist, or may be sensitive)."

The paper could not quantify what that choice costs; the synthetic
substrate can.  We equip the case-study pair with synthetic value samples
(same facet -> same value population) and compare, at 1:1-assignment
best-F1:

* the default documentation-driven ensemble (what the paper used);
* the ensemble with documentation removed (docs unavailable);
* the doc-less ensemble plus the instance voter (data available instead);
* the full ensemble plus the instance voter (both available).
"""

from repro.match import HarmonyMatchEngine
from repro.matchers import (
    DataTypeVoter,
    DocumentationVoter,
    InstanceVoter,
    NameTokenVoter,
    NgramVoter,
    PathVoter,
    StructuralVoter,
    ThesaurusVoter,
)
from repro.metrics import best_f1_assignment
from repro.synthetic import generate_instances
from repro.voting import ConvictionLinearMerger

# Weights aligned with each configuration's voter list (context-heavy, as
# in DEFAULT_VOTER_WEIGHTS; the instance voter gets documentation's slot).
_BASE = [0.8, 0.8, 1.0, 0.5, 2.0, 3.0]          # name, ngram, thes, type, path, struct


def _voters(docs: bool, instances=None):
    """Build a configuration; the rich-evidence slot always weighs 1.5.

    When both documentation and instances participate they *share* that
    slot (0.75 each), so the context voters' share of the ensemble is
    identical in every configuration -- the comparison isolates the
    evidence source, not the weighting.
    """
    voters = [NameTokenVoter(), NgramVoter(), ThesaurusVoter()]
    weights = list(_BASE[:3])
    slot = 1.5 / (int(docs) + int(instances is not None) or 1)
    if docs:
        voters.append(DocumentationVoter())
        weights.append(slot)
    if instances is not None:
        voters.append(InstanceVoter(*instances))
        weights.append(slot)
    voters.extend([DataTypeVoter(), PathVoter(), StructuralVoter()])
    weights.extend(_BASE[3:])
    return voters, weights


def test_e15_documentation_vs_instances(benchmark, case_pair, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema
    truth = case_pair.truth_pairs

    source_tokens = {
        eid: tokens
        for eid, (key, tokens) in case_pair.source.facet_of_element.items()
        if tokens
    }
    target_tokens = {
        eid: tokens
        for eid, (key, tokens) in case_pair.target.facet_of_element.items()
        if tokens
    }

    def run_ablation():
        instances = (
            generate_instances(source, rows=40, tokens_of=source_tokens),
            generate_instances(target, rows=40, tokens_of=target_tokens),
        )
        scores = {}
        for name, (docs, inst) in {
            "docs only (the paper's setting)": (True, None),
            "neither docs nor instances": (False, None),
            "instances instead of docs": (False, instances),
            "docs + instances": (True, instances),
        }.items():
            voters, weights = _voters(docs, inst)
            engine = HarmonyMatchEngine(
                voters=voters, merger=ConvictionLinearMerger(voter_weights=weights)
            )
            scores[name] = best_f1_assignment(engine.match(source, target).matrix, truth)
        return scores

    scores = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report = report_factory("E15", "Documentation vs data instances (3.2, extension)")
    report.line("  configuration                        best-thr   P      R      F1")
    for name, (threshold, measurement) in scores.items():
        report.line(
            f"  {name:<35}  {threshold:>7.2f}  {measurement.precision:.3f}  "
            f"{measurement.recall:.3f}  {measurement.f1:.3f}"
        )

    docs_f1 = scores["docs only (the paper's setting)"][1].f1
    bare_f1 = scores["neither docs nor instances"][1].f1
    inst_f1 = scores["instances instead of docs"][1].f1
    both_f1 = scores["docs + instances"][1].f1

    report.line()
    report.row(
        "documentation's value", "docs carry real signal",
        f"{docs_f1:.3f} vs {bare_f1:.3f} without",
    )
    report.row(
        "instances as a substitute", "comparable when data exists",
        f"{inst_f1:.3f} vs docs {docs_f1:.3f}",
    )
    report.row(
        "both together", "best of all", f"{both_f1:.3f}",
    )

    # Shape: docs beat nothing; instances are a usable substitute; both is
    # at least as good as either alone (within noise).
    assert docs_f1 > bare_f1
    assert inst_f1 > bare_f1
    assert both_f1 >= max(docs_f1, inst_f1) - 0.02
