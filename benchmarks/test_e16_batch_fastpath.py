"""E16 -- corpus-scale batch fast path vs the exact per-pair engine.

The paper's scale claim (section 3.1: 10^4-10^6 potential matches per
operation, whole repositories of schemata to sweep) is what motivates the
two-stage fast path of :mod:`repro.batch`: candidate blocking through
shared-token inverted indexes, then bulk ``score_pairs`` voting over cached
:class:`~repro.matchers.profile.FeatureSpace` matrices.

This bench reruns the E2 scale sweep through both paths and holds the fast
path to its contract at the largest setting (the full 1378 x 784 case-study
grid): **>= 5x wall-clock speedup** over the exact engine with **blocking
recall >= 0.98** against the exact match matrix at the default candidate
threshold.  Candidate scores are exact (tier-1 property tests pin them to
1e-9), so blocking recall *is* end-to-end recall.
"""

import time

from repro.batch import BatchMatchRunner, blocking_recall, candidate_pairs
from repro.match import HarmonyMatchEngine

SWEEP_SIZES = (100, 300, 600, 1000, 1378)  # as in E2's scale sweep
CANDIDATE_THRESHOLD = 0.15
SPEEDUP_FLOOR = 5.0
RECALL_FLOOR = 0.98


def _best_of(function, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def test_e16_batch_fastpath(benchmark, case_pair, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema
    all_ids = [element.element_id for element in source]

    # Both paths amortise their per-schema work across a corpus run, so
    # both are timed steady-state: profiles (engine) and profiles+features
    # (runner) are built before the clock starts.
    engine = HarmonyMatchEngine()
    engine.profile(source)
    engine.profile(target)
    exact_result = engine.match(source, target)

    runner = BatchMatchRunner(executor="serial")
    runner.warm([source, target])
    fast_result = runner.match_pair(source, target)

    sweep_rows = []
    for size in SWEEP_SIZES:
        restricted = all_ids[:size]
        exact_seconds = _best_of(
            lambda: engine.match(source, target, source_element_ids=restricted), 2
        )
        fast_seconds = _best_of(
            lambda: runner.match_pair(source, target, source_element_ids=restricted), 2
        )
        sweep_rows.append((size, exact_seconds, fast_seconds))

    exact_seconds = _best_of(lambda: engine.match(source, target), 3)
    benchmark.pedantic(lambda: runner.match_pair(source, target), rounds=3, iterations=1)
    fast_seconds = _best_of(lambda: runner.match_pair(source, target), 3)
    speedup = exact_seconds / fast_seconds

    candidates = candidate_pairs(
        runner.profile(source), runner.profile(target), runner.space, runner.blocking
    )
    recall = blocking_recall(exact_result.matrix, candidates, CANDIDATE_THRESHOLD)

    report = report_factory("E16", "Batch fast path vs exact engine (E2 sweep)")
    report.line("  source size   exact s   fast s   speedup")
    for size, exact_s, fast_s in sweep_rows:
        report.line(f"  {size:>11}   {exact_s:>7.3f}   {fast_s:>6.3f}   {exact_s / fast_s:>6.1f}x")
    report.row("pairs at full scale", "~10^6", f"{exact_result.n_pairs:,}")
    report.row(
        "candidates after blocking",
        "(fraction of grid)",
        f"{candidates.n_candidates:,} ({candidates.fraction:.1%})",
    )
    report.row("full-scale speedup", f">= {SPEEDUP_FLOOR:.0f}x", f"{speedup:.1f}x")
    report.row(
        f"blocking recall @ {CANDIDATE_THRESHOLD}",
        f">= {RECALL_FLOOR}",
        f"{recall:.4f}",
    )

    assert fast_result.matrix.shape == exact_result.matrix.shape
    assert speedup >= SPEEDUP_FLOOR
    assert recall >= RECALL_FLOOR
