"""E17 -- repository-scale corpus matching: index, prune, match, rank.

The paper's central enterprise claim (sections 2 and 5) is that matching is
a *routine repository operation*: a registry holds hundreds of schemata,
and a match effort starts by locating candidates in that pool ("simply use
one's target schema as the 'query term'"), not by hand-picking one pair.
``MatchService.corpus_match`` is that operation: the persistent
:class:`~repro.corpus.CorpusIndex` prunes the registry to a shortlist, the
blocked batch fast path (E16) scores each survivor, and candidates rank by
match strength.

This bench registers a >= 100-schema synthetic enterprise corpus
(:func:`~repro.synthetic.generate_enterprise_corpus`, planted domains as
ground truth) in a SQLite repository and holds the subsystem to three
contracts:

* **index lifecycle** -- the cold build derives every fingerprint once;
  reopening the repository rebuilds the index from persisted fingerprints
  alone (no re-profiling), which must be at least 2x faster than cold;
* **query latency** -- one-per-domain top-5 corpus queries must run >= 5x
  faster end-to-end than the brute-force alternative (looping the exact
  service over every registered schema with the same options);
* **quality** -- mean top-5 recall against the planted domains must be
  >= 0.95 (a returned candidate counts when it shares the query's domain).
"""

import time

from repro.corpus import CorpusIndex
from repro.repository import MetadataRepository
from repro.service import CorpusMatchRequest, MatchOptions, MatchService
from repro.synthetic import generate_enterprise_corpus

N_SCHEMATA = 100
N_DOMAINS = 10
TOP_K = 5
SPEEDUP_FLOOR = 5.0
RECALL_FLOOR = 0.95
RELOAD_SPEEDUP_FLOOR = 2.0


def _match_strength(correspondences) -> float:
    return sum(max(0.0, c.score) for c in correspondences)


def test_e17_corpus_match(benchmark, tmp_path, report_factory):
    corpus = generate_enterprise_corpus(
        n_schemata=N_SCHEMATA, n_domains=N_DOMAINS, seed=2009
    )
    assert len(corpus.schemata) >= 100
    path = str(tmp_path / "e17.db")

    with MetadataRepository(path=path) as repository:
        started = time.perf_counter()
        for generated in corpus.schemata:
            repository.register(generated.schema)
        register_seconds = time.perf_counter() - started

        started = time.perf_counter()
        cold = CorpusIndex(repository).refresh()
        cold_seconds = time.perf_counter() - started
        assert cold.n_derived == N_SCHEMATA

    # Reopen: the index must come back from persisted fingerprints alone.
    with MetadataRepository(path=path) as repository:
        started = time.perf_counter()
        warm = CorpusIndex(repository).refresh()
        warm_seconds = time.perf_counter() - started
        assert warm.n_from_fingerprints == N_SCHEMATA
        assert warm.n_derived == 0

        queries = [f"D{domain}S0" for domain in range(N_DOMAINS)]
        service = MatchService(repository=repository)

        # -- the corpus-match path (index pruning + batch fast path) ----
        recalls = []
        started = time.perf_counter()
        for query in queries:
            response = service.corpus_match(
                CorpusMatchRequest(source=query, top_k=TOP_K, reuse=None)
            )
            domain = corpus.domain_of[query]
            recalls.append(
                sum(
                    1
                    for name in response.candidate_names
                    if corpus.domain_of[name] == domain
                )
                / TOP_K
            )
        corpus_seconds = time.perf_counter() - started
        benchmark.pedantic(
            lambda: service.corpus_match(
                CorpusMatchRequest(source=queries[0], top_k=TOP_K, reuse=None)
            ),
            rounds=3,
            iterations=1,
        )
        recall = sum(recalls) / len(recalls)

        # -- brute force: the exact service over every registered pair --
        brute_service = MatchService(repository=repository)
        options = MatchOptions(execution="exact")
        schemata = {
            name: repository.schema(name) for name in repository.schema_names()
        }
        started = time.perf_counter()
        brute_top: dict[str, list[str]] = {}
        for query in queries:
            scored = []
            for name, target in schemata.items():
                if name == query:
                    continue
                result = brute_service.match_pair(
                    schemata[query], target, options=options
                )
                scored.append((_match_strength(result.correspondences), name))
            scored.sort(key=lambda entry: (-entry[0], entry[1]))
            brute_top[query] = [name for _, name in scored[:TOP_K]]
        brute_seconds = time.perf_counter() - started
        speedup = brute_seconds / corpus_seconds

    n_elements = sum(len(g.schema) for g in corpus.schemata)
    report = report_factory(
        "E17", "Repository-scale corpus matching (index + top-k + fast path)"
    )
    report.row("corpus size", ">= 100 schemata", f"{N_SCHEMATA} ({n_elements:,} elements)")
    report.row("register into SQLite", "(seconds)", f"{register_seconds:.2f}s")
    report.row(
        "index build, cold (derive fingerprints)", "(seconds)", f"{cold_seconds:.2f}s"
    )
    report.row(
        "index reload from fingerprints",
        f">= {RELOAD_SPEEDUP_FLOOR:.0f}x faster than cold",
        f"{warm_seconds:.2f}s ({cold_seconds / warm_seconds:.1f}x)",
    )
    report.row(
        f"top-{TOP_K} query latency (corpus_match)",
        "(seconds / query)",
        f"{corpus_seconds / len(queries):.2f}s",
    )
    report.row(
        "brute force (exact service, all pairs)",
        "(seconds / query)",
        f"{brute_seconds / len(queries):.2f}s",
    )
    report.row("corpus_match speedup", f">= {SPEEDUP_FLOOR:.0f}x", f"{speedup:.1f}x")
    report.row(
        f"top-{TOP_K} recall vs planted domains", f">= {RECALL_FLOOR}", f"{recall:.3f}"
    )

    assert cold_seconds / warm_seconds >= RELOAD_SPEEDUP_FLOOR
    assert speedup >= SPEEDUP_FLOOR
    assert recall >= RECALL_FLOOR
