"""E18 -- mapping-network composition: route stored mappings, don't re-match.

The paper's section-5 claim that "other developers should be able to
benefit from previous matches" becomes, at corpus scale, a *routing*
problem: an enterprise whose systems form a migration lineage S0 -> S1 ->
... -> S(N-1) only ever matched *adjacent* systems, so answering S0 -> Sk
means composing stored evidence along pivot paths.
:class:`~repro.network.MappingGraph` is that router; this bench holds it
to three contracts over a >= 20-schema synthetic chain
(:func:`~repro.synthetic.generate_mapping_chain`, every member a
different-convention rendering of one conceptual schema).  The stored
lineage reproduces the paper's validation workflow per consecutive pair:
the engine's 1-1 output is persisted as AUTOMATIC assertions, then the
pairs it missed are stored as HUMAN_VALIDATED corrections -- a migration
mapping is a validated deliverable, which is exactly why composing
through it beats re-matching:

* **warm routing** -- repeated queries over a warm graph (adjacency cached
  under the repository's generation + match-generation clocks) must run
  >= 5x faster end-to-end than a rebuild-per-query loop (a fresh
  MappingGraph, i.e. a full store scan, per query);
* **composition quality** -- for queries k >= 2 hops apart, the composed
  correspondences must recover >= 0.9 of the pairs a *direct* fresh match
  over the distant pair finds (1-1 stable-marriage selection on both
  sides of the comparison);
* **refactor fidelity** -- ``compose_matches`` (now the ``max_hops=1``
  case of the network composer) must agree with an independent
  re-implementation of the original single-pivot algorithm to 1e-9.
"""

import time

from repro.match import Correspondence
from repro.network import MappingGraph
from repro.repository import AssertionMethod, MetadataRepository
from repro.repository.reuse import compose_matches
from repro.service import MatchOptions, MatchService
from repro.synthetic import generate_mapping_chain

N_SCHEMATA = 20
MAX_HOPS = 3
WARM_SPEEDUP_FLOOR = 5.0
RECALL_FLOOR = 0.9
K1_TOLERANCE = 1e-9
ROUNDS = 3

#: 1-1 selection on both the stored legs and the direct baseline, so the
#: recall comparison is between comparable artifacts (threshold selection
#: would drown both sides in sub-truth pairs).
OPTIONS = MatchOptions(selection="stable_marriage", threshold=0.15)


def _reference_single_pivot(matches, source_schema, target_schema):
    """The pre-network single-pivot composition, re-implemented verbatim."""
    def directed_legs(schema_name):
        legs = []
        for match in matches:
            if schema_name not in (match.source_schema, match.target_schema):
                continue
            correspondence = match.correspondence
            if correspondence.status.value == "rejected":
                continue
            if match.source_schema == schema_name:
                legs.append(
                    (match.target_schema, correspondence.source_id,
                     correspondence.target_id, correspondence.score)
                )
            else:
                legs.append(
                    (match.source_schema, correspondence.target_id,
                     correspondence.source_id, correspondence.score)
                )
        return legs

    via = {}
    for pivot_schema, own, pivot_el, score in directed_legs(source_schema):
        if pivot_schema == target_schema:
            continue
        via.setdefault((pivot_schema, pivot_el), []).append((own, score))
    best = {}
    for pivot_schema, own, pivot_el, score in directed_legs(target_schema):
        if pivot_schema == source_schema:
            continue
        for source_element, source_score in via.get((pivot_schema, pivot_el), []):
            pair = (source_element, own)
            composed = min(source_score, score)
            if composed > best.get(pair, float("-inf")):
                best[pair] = composed
    return best


def test_e18_mapping_network(tmp_path, report_factory):
    chain = generate_mapping_chain(n_schemata=N_SCHEMATA, seed=2009)
    assert len(chain) >= 20
    path = str(tmp_path / "e18.db")

    with MetadataRepository(path=path) as repository:
        for generated in chain.schemata:
            repository.register(generated.schema)
        service = MatchService(repository=repository)

        # -- store the lineage: engine match + validation per pair -------
        started = time.perf_counter()
        n_corrected = 0
        for i in range(len(chain) - 1):
            response = service.match_pair(
                chain.names[i], chain.names[i + 1], options=OPTIONS
            )
            service.persist(response)
            # The engineer's pass: truth pairs the engine missed enter as
            # human-validated corrections (full confidence).
            found = {c.pair for c in response.correspondences}
            missed = chain.truth_pairs(i, i + 1) - found
            repository.store_matches(
                chain.names[i],
                chain.names[i + 1],
                [
                    Correspondence(source_id=s, target_id=t, score=1.0)
                    for s, t in sorted(missed)
                ],
                asserted_by="validator",
                method=AssertionMethod.HUMAN_VALIDATED,
            )
            n_corrected += len(missed)
        lineage_seconds = time.perf_counter() - started
        n_stored = len(repository.matches())

        # -- warm routing vs rebuild-per-query ---------------------------
        queries = [
            (chain.names[i], chain.names[i + span])
            for span in (2, 3)
            for i in range(0, len(chain) - span)
        ]
        graph = MappingGraph(repository)
        graph.refresh()
        warm_seconds = float("inf")
        for _ in range(ROUNDS):
            started = time.perf_counter()
            for source, target in queries:
                graph.route(source, target, max_hops=MAX_HOPS)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)
        rebuild_seconds = float("inf")
        for _ in range(ROUNDS):
            started = time.perf_counter()
            for source, target in queries:
                MappingGraph(repository).route(source, target, max_hops=MAX_HOPS)
            rebuild_seconds = min(rebuild_seconds, time.perf_counter() - started)
        speedup = rebuild_seconds / warm_seconds

        # -- multi-hop composition vs direct matching --------------------
        recalls = []
        for span in (3, 4):  # k = span - 1 pivots >= 2
            for i in (0, len(chain) - 1 - span):
                source, target = chain.names[i], chain.names[i + span]
                composed = {
                    c.pair
                    for c in graph.compose(source, target, max_hops=span - 1)
                }
                direct = {
                    c.pair
                    for c in service.match_pair(
                        source, target, options=OPTIONS
                    ).correspondences
                }
                recalls.append(
                    len(composed & direct) / len(direct) if direct else 1.0
                )
        recall = sum(recalls) / len(recalls)

        # -- k=1 fidelity of the refactored compose_matches --------------
        pool = repository.matches()
        max_delta = 0.0
        for i in range(len(chain) - 2):
            source, target = chain.names[i], chain.names[i + 2]
            reference = _reference_single_pivot(pool, source, target)
            refactored = {
                c.pair: c.score for c in compose_matches(repository, source, target)
            }
            assert set(reference) == set(refactored)
            for pair, score in reference.items():
                max_delta = max(max_delta, abs(score - refactored[pair]))

    n_elements = sum(len(g.schema) for g in chain.schemata)
    report = report_factory(
        "E18", "Mapping-network composition (multi-hop routing through stored mappings)"
    )
    report.row("chain", ">= 20 schemata", f"{len(chain)} ({n_elements:,} elements)")
    report.row(
        "stored lineage (consecutive pairs)",
        "(matches; seconds)",
        f"{n_stored} ({n_corrected} validated corrections) in {lineage_seconds:.2f}s",
    )
    report.row(
        f"warm routing ({len(queries)} queries, <= {MAX_HOPS} hops)",
        "(seconds)",
        f"{warm_seconds:.4f}s",
    )
    report.row("rebuild-per-query loop", "(seconds)", f"{rebuild_seconds:.4f}s")
    report.row("warm-graph speedup", f">= {WARM_SPEEDUP_FLOOR:.0f}x", f"{speedup:.1f}x")
    report.row(
        "composed recall vs direct match (k >= 2)",
        f">= {RECALL_FLOOR}",
        f"{recall:.3f}",
    )
    report.row(
        "compose_matches k=1 drift after refactor",
        f"<= {K1_TOLERANCE:g}",
        f"{max_delta:.2e}",
    )

    assert speedup >= WARM_SPEEDUP_FLOOR
    assert recall >= RECALL_FLOOR
    assert max_delta <= K1_TOLERANCE
