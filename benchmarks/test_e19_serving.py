"""E19 -- match-as-a-service: throughput, cache speedup, invalidation.

The ROADMAP north star ("heavy traffic from millions of users, as fast as
the hardware allows") becomes measurable once matching is *served* rather
than shelled out: the paper's enterprise users hit one shared repository
continuously, with heavily repeated queries.  This bench holds the
serving tier (:mod:`repro.server`) to three contracts over a registered
synthetic corpus in a SQLite repository:

* **cached latency vs process invocations** -- with 8 concurrent clients
  against a warmed server, the p50 latency of cached requests must be
  >= 10x faster than a cold single-shot ``repro match`` process
  invocation (what every caller paid before the serving tier: interpreter
  + numpy/scipy import, cold caches, one match, exit) -- at *identical*
  correspondence scores (1e-9);
* **cold-vs-warm-cache speedup on the server itself** -- the same request
  served from the response cache must beat its first (computed) serving;
* **invalidation correctness** -- across an interleaved write/read sweep
  (store a match set, re-query ``/corpus-match`` and ``/network-match``,
  repeat), every served response must equal a freshly computed
  direct-service answer: zero stale responses.
"""

from __future__ import annotations

import json
import statistics
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.match import Correspondence
from repro.repository import AssertionMethod, MetadataRepository
from repro.schema.serialize import dump_schema
from repro.server import MatchServer, MatchServiceClient
from repro.service import (
    CorpusMatchRequest,
    MatchOptions,
    MatchRequest,
    MatchService,
    NetworkMatchRequest,
)
from repro.synthetic import generate_clustered_corpus

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 20
COLD_RUNS = 3
SPEEDUP_FLOOR = 10.0
SCORE_TOLERANCE = 1e-9
SWEEP_ROUNDS = 5
THRESHOLD = 0.15
OPTIONS = MatchOptions(threshold=THRESHOLD)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(int(fraction * len(ordered)), len(ordered) - 1)]


def test_e19_serving(tmp_path, report_factory):
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=4, seed=2009
    )
    db_path = str(tmp_path / "e19.db")
    with MetadataRepository(path=db_path) as repository:
        for generated in corpus.schemata:
            repository.register(generated.schema)
        names = sorted(repository.schema_names())
        service = MatchService(repository=repository)
        server = MatchServer(service, port=0)
        worker = threading.Thread(target=server.serve_forever, daemon=True)
        worker.start()
        try:
            # -- cold baseline: single-shot CLI process invocations ------
            source_name, target_name = names[0], names[1]
            source_file = str(tmp_path / "query_a.json")
            target_file = str(tmp_path / "query_b.json")
            dump_schema(repository.schema(source_name), source_file)
            dump_schema(repository.schema(target_name), target_file)
            cold_seconds = float("inf")
            cli_payload = None
            for _ in range(COLD_RUNS):
                started = time.perf_counter()
                completed = subprocess.run(
                    [
                        sys.executable, "-m", "repro", "match",
                        source_file, target_file,
                        "--threshold", str(THRESHOLD), "--json",
                    ],
                    capture_output=True, text=True, check=True,
                )
                cold_seconds = min(cold_seconds, time.perf_counter() - started)
                cli_payload = json.loads(completed.stdout)

            # -- warm the server, then hammer it -------------------------
            request = MatchRequest(
                source=source_name, target=target_name, options=OPTIONS
            )
            warm_client = MatchServiceClient(server.url)
            first_serving = time.perf_counter()
            served = warm_client.match(request)
            first_serving = time.perf_counter() - first_serving
            assert warm_client.last_cache_status == "miss"

            # Identical scores: served (by-name) vs the CLI's cold run.
            cli_scores = {
                (c["source_id"], c["target_id"]): c["score"]
                for c in cli_payload["correspondences"]
            }
            served_scores = {c.pair: c.score for c in served.correspondences}
            assert set(cli_scores) == set(served_scores)
            score_drift = max(
                (abs(cli_scores[pair] - served_scores[pair]) for pair in cli_scores),
                default=0.0,
            )

            latencies: list[float] = []
            latencies_lock = threading.Lock()

            def client_session() -> None:
                client = MatchServiceClient(server.url)
                mine = []
                for _ in range(REQUESTS_PER_CLIENT):
                    started = time.perf_counter()
                    client.match(request)
                    mine.append(time.perf_counter() - started)
                    assert client.last_cache_status == "hit"
                with latencies_lock:
                    latencies.extend(mine)

            hammer_started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                for future in [
                    pool.submit(client_session) for _ in range(N_CLIENTS)
                ]:
                    future.result()
            hammer_seconds = time.perf_counter() - hammer_started
            n_requests = N_CLIENTS * REQUESTS_PER_CLIENT
            p50 = statistics.median(latencies)
            p95 = _percentile(latencies, 0.95)
            cli_speedup = cold_seconds / p50
            cache_speedup = first_serving / p50

            # -- interleaved write/read invalidation sweep ---------------
            for left, right in zip(names, names[1:]):
                service.persist(service.match_pair(left, right, options=OPTIONS))
            sweep_client = MatchServiceClient(server.url)
            referee = MatchService(repository=repository)
            corpus_request = CorpusMatchRequest(
                source=source_name, top_k=3, options=OPTIONS
            )
            network_request = NetworkMatchRequest(
                source=names[0], target=names[2], max_hops=2, options=OPTIONS
            )
            def same_correspondences(ours, theirs) -> bool:
                """Same pair set and notes, scores to 1e-9 (thread-order
                interning permutes float summation order by one ulp)."""
                mine = {c.pair: c for c in ours}
                reference = {c.pair: c for c in theirs}
                return set(mine) == set(reference) and all(
                    mine[pair].note == reference[pair].note
                    and abs(mine[pair].score - reference[pair].score)
                    <= SCORE_TOLERANCE
                    for pair in mine
                )

            def corpus_is_fresh(served_response, fresh_response) -> bool:
                """Served corpus knowledge equals freshly computed knowledge."""
                if (
                    served_response.candidate_names
                    != fresh_response.candidate_names
                ):
                    return False
                return all(
                    same_correspondences(ours.correspondences, theirs.correspondences)
                    for ours, theirs in zip(
                        served_response.candidates, fresh_response.candidates
                    )
                )

            def network_is_fresh(served_response, fresh_response) -> bool:
                """Served network knowledge equals freshly computed knowledge."""
                return served_response.paths == fresh_response.paths and (
                    same_correspondences(
                        served_response.correspondences,
                        fresh_response.correspondences,
                    )
                )

            n_stale = 0
            n_checked = 0
            for round_number in range(SWEEP_ROUNDS):
                # Warm both entries, then write, then re-read: the served
                # answers must always equal fresh direct computation.
                sweep_client.corpus_match(corpus_request)
                sweep_client.network_match(network_request)
                pivot = repository.matches(
                    source_schema=names[0], target_schema=names[1]
                )[0]
                repository.store_matches(
                    names[1],
                    names[2],
                    [
                        Correspondence(
                            source_id=pivot.correspondence.target_id,
                            target_id=f"validated_round_{round_number}",
                            score=1.0,
                        )
                    ],
                    asserted_by="validator",
                    method=AssertionMethod.HUMAN_VALIDATED,
                )
                served_corpus = sweep_client.corpus_match(corpus_request)
                served_network = sweep_client.network_match(network_request)
                fresh_corpus = referee.corpus_match(corpus_request)
                fresh_network = referee.network_match(network_request)
                n_checked += 2
                if not corpus_is_fresh(served_corpus, fresh_corpus):
                    n_stale += 1
                if not network_is_fresh(served_network, fresh_network):
                    n_stale += 1
            invalidations = server.cache.stats.invalidations
        finally:
            server.shutdown()
            worker.join()
            server.server_close()

    n_elements = sum(len(g.schema) for g in corpus.schemata)
    report = report_factory(
        "E19", "Match-as-a-service (concurrent serving + generation-aware cache)"
    )
    report.row(
        "registered corpus",
        "(schemata; elements)",
        f"{len(names)} ({n_elements:,} elements, SQLite)",
    )
    report.row(
        "cold single-shot `repro match` process",
        "(seconds)",
        f"{cold_seconds:.3f}s",
    )
    report.row(
        "first serving (computed, cache miss)", "(seconds)", f"{first_serving:.4f}s"
    )
    report.row(
        f"warm cached p50 ({N_CLIENTS} clients x {REQUESTS_PER_CLIENT})",
        "(seconds)",
        f"{p50 * 1000:.2f}ms (p95 {p95 * 1000:.2f}ms)",
    )
    report.row(
        "throughput under 8 concurrent clients",
        "(requests/second)",
        f"{n_requests / hammer_seconds:,.0f} req/s",
    )
    report.row(
        "cached p50 vs cold process invocation",
        f">= {SPEEDUP_FLOOR:.0f}x",
        f"{cli_speedup:.0f}x",
    )
    report.row(
        "cached p50 vs first (uncached) serving",
        "> 1x",
        f"{cache_speedup:.1f}x",
    )
    report.row(
        "served-vs-CLI score drift", f"<= {SCORE_TOLERANCE:g}", f"{score_drift:.2e}"
    )
    report.row(
        f"invalidation sweep ({SWEEP_ROUNDS} writes, {n_checked} re-reads)",
        "0 stale",
        f"{n_stale} stale ({invalidations} entries invalidated)",
    )

    assert cli_speedup >= SPEEDUP_FLOOR
    assert cache_speedup > 1.0
    assert score_drift <= SCORE_TOLERANCE
    assert n_stale == 0
    assert invalidations >= 2 * SWEEP_ROUNDS
