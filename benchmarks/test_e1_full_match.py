"""E1 -- the fully automated 1378 x 784 match.

Paper (section 3.3): "we had recently scaled Harmony to perform matches of
this size, and the fully automated match executed in 10.2 seconds."

We regenerate the same-shape workload (the synthetic SA x SB with the exact
element counts) and time the full engine: linguistic profiling of both
schemata plus all seven voters plus merging over ~1.08M candidate pairs.
Absolute time differs from the paper's 2008 hardware/Java stack; the shape
claim is that an industrial-scale binary match is an *interactive-scale*
operation (seconds, not hours).
"""

from repro.match import HarmonyMatchEngine
from repro.synthetic import PAPER_MATCH_SECONDS


def test_e1_full_automated_match(benchmark, case_pair, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema

    def full_match():
        # A fresh engine each round so profiling cost is included, exactly
        # as the paper's end-to-end number would have been measured.
        return HarmonyMatchEngine().match(source, target)

    result = benchmark.pedantic(full_match, rounds=3, iterations=1, warmup_rounds=1)

    report = report_factory("E1", "Fully automated SA x SB match (section 3.3)")
    report.row("schema sizes", "1378 x 784", f"{len(source)} x {len(target)}")
    report.row("candidate pairs", "~10^6", f"{result.n_pairs:,}")
    report.row(
        "full match wall time",
        f"{PAPER_MATCH_SECONDS:.1f} s",
        f"{benchmark.stats['mean']:.2f} s (mean of 3)",
    )
    assert result.n_pairs == len(source) * len(target)
    assert result.n_pairs > 1_000_000
    # Interactive scale: well under a minute on any modern machine.
    assert benchmark.stats["mean"] < 60.0
