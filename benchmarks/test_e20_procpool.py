"""E20 -- process-pool serving: prefork throughput, cross-process exactness.

E19 established the serving tier; this bench holds the *process-pool*
deployment (``repro serve --workers N``: N prefork workers, one shared
listening socket, one pooled-WAL SQLite store) to three contracts against
the threaded single-process server on the same repository:

* **warm throughput** -- under the E19 hammer (8 concurrent clients x 20
  requests over a fixed request set), the warmed worker pool must beat
  the warmed threaded server.  Warm requests are pure-Python cache hits,
  which one server process serialises on its GIL; N worker processes
  hold N independent GILs.  The strict ">1x" assertion is gated on the
  machine actually having >= 2 CPUs: with a single core the clients, the
  hammer, and every server share one CPU, total CPU work is the
  bottleneck, and the measured ratio is a coin-flip around 1.0x -- there
  a non-regression floor is asserted instead and the ratio reported;
* **score exactness** -- every correspondence served by either deployment
  must match a direct in-process MatchService referee to 1e-9: the
  serving topology may never change answers;
* **cross-process invalidation** -- an interleaved write/read sweep where
  the WRITER IS ANOTHER PROCESS (this bench) storing matches straight
  into the shared store: every subsequent served ``/corpus-match`` and
  ``/network-match`` answer must equal a freshly computed referee answer,
  zero stale, because the workers' response caches key on the DB-backed
  ``generation``/``match_generation`` clocks that every write moves
  transactionally.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import repro
from repro.match import Correspondence
from repro.repository import AssertionMethod, MetadataRepository
from repro.server import MatchServiceClient
from repro.service import (
    CorpusMatchRequest,
    MatchOptions,
    MatchRequest,
    MatchService,
    NetworkMatchRequest,
)
from repro.synthetic import generate_clustered_corpus

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 20
N_WORKERS = 2
N_DISTINCT_REQUESTS = 16
SCORE_TOLERANCE = 1e-9
SWEEP_ROUNDS = 5
THRESHOLD = 0.15
OPTIONS = MatchOptions(threshold=THRESHOLD)
#: Warm-pool-vs-threaded floor on a single-CPU machine, where the ratio
#: hovers around parity (see module docstring): the pool must at least
#: not regress materially.
SINGLE_CPU_FLOOR = 0.6


class _Server:
    """One ``repro serve`` deployment as a subprocess, URL from announce."""

    def __init__(self, db_path: str, label: str, extra: list[str]):
        self.label = label
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", db_path, "--port", "0", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            start_new_session=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
            },
        )
        announce = self.process.stdout.readline()
        assert "serving on http://" in announce, f"{label}: {announce!r}"
        self.url = announce.split("serving on ", 1)[1].split()[0]

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        self.process.communicate(timeout=120)
        return self.process.returncode

    def kill(self) -> None:
        if self.process.poll() is None:
            try:
                os.killpg(os.getpgid(self.process.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            self.process.communicate(timeout=30)


def _hammer(url: str, requests: list[MatchRequest]) -> float:
    """E19's hammer: N clients, each its own connection loop; returns req/s."""

    def client_session(client_index: int) -> None:
        client = MatchServiceClient(url)
        for i in range(REQUESTS_PER_CLIENT):
            request = requests[
                (client_index * REQUESTS_PER_CLIENT + i) % len(requests)
            ]
            client.match(request)

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        for future in [
            pool.submit(client_session, index) for index in range(N_CLIENTS)
        ]:
            future.result()
    return (N_CLIENTS * REQUESTS_PER_CLIENT) / (time.perf_counter() - started)


def _served_scores(url: str, requests: list[MatchRequest]) -> dict:
    client = MatchServiceClient(url)
    return {
        (request.source, request.target): {
            c.pair: c.score for c in client.match(request).correspondences
        }
        for request in requests
    }


def _same_correspondences(ours, theirs) -> bool:
    mine = {c.pair: c for c in ours}
    reference = {c.pair: c for c in theirs}
    return set(mine) == set(reference) and all(
        mine[pair].note == reference[pair].note
        and abs(mine[pair].score - reference[pair].score) <= SCORE_TOLERANCE
        for pair in mine
    )


def test_e20_procpool(tmp_path, report_factory):
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=4, seed=2009
    )
    db_path = str(tmp_path / "e20.db")
    with MetadataRepository(path=db_path, backend="pooled") as seeder:
        for generated in corpus.schemata:
            seeder.register(generated.schema)
        names = sorted(seeder.schema_names())
    requests = [
        MatchRequest(source=source, target=target, options=OPTIONS)
        for source, target in itertools.combinations(names, 2)
    ][:N_DISTINCT_REQUESTS]

    # -- the same hammer against both deployments ----------------------
    throughput: dict[str, dict[str, float]] = {}
    scores: dict[str, dict] = {}
    exit_status: dict[str, int] = {}
    deployments = [
        ("threaded", []),
        ("procpool", ["--workers", str(N_WORKERS)]),
    ]
    for label, extra in deployments:
        server = _Server(db_path, label, extra)
        try:
            cold = _hammer(server.url, requests)
            warm = _hammer(server.url, requests)
            throughput[label] = {"cold": cold, "warm": warm}
            scores[label] = _served_scores(server.url, requests)
        finally:
            try:
                exit_status[label] = server.stop()
            finally:
                server.kill()

    # -- referee: direct in-process answers ----------------------------
    with MetadataRepository(path=db_path, backend="pooled") as repository:
        referee = MatchService(repository=repository)
        score_drift = 0.0
        for request in requests:
            expected = {
                c.pair: c.score
                for c in referee.match_pair(
                    request.source, request.target, options=OPTIONS
                ).correspondences
            }
            for label, _ in deployments:
                served = scores[label][(request.source, request.target)]
                assert set(served) == set(expected), (
                    f"{label} served different pairs for "
                    f"{request.source}->{request.target}"
                )
                for pair, score in served.items():
                    score_drift = max(score_drift, abs(score - expected[pair]))

    # -- cross-process interleaved write/read sweep --------------------
    server = _Server(
        db_path, "procpool-sweep", ["--workers", str(N_WORKERS)]
    )
    n_stale = 0
    n_checked = 0
    try:
        sweep_clients = [MatchServiceClient(server.url) for _ in range(2)]
        with MetadataRepository(path=db_path, backend="pooled") as repository:
            referee = MatchService(repository=repository)
            # Give the a->c network route edges to compose (these two
            # persists are themselves cross-process writes the workers
            # must notice).
            referee.persist(referee.match_pair(names[0], names[1], options=OPTIONS))
            referee.persist(referee.match_pair(names[1], names[2], options=OPTIONS))
            corpus_request = CorpusMatchRequest(
                source=names[0], top_k=3, options=OPTIONS
            )
            network_request = NetworkMatchRequest(
                source=names[0], target=names[2], max_hops=2, options=OPTIONS
            )
            pivot = repository.matches(
                source_schema=names[0], target_schema=names[1]
            )[0]
            for round_number in range(SWEEP_ROUNDS):
                # Warm every worker's cache, then write from THIS process,
                # then demand freshness from every client connection.
                for client in sweep_clients:
                    client.corpus_match(corpus_request)
                    client.network_match(network_request)
                repository.store_matches(
                    names[1],
                    names[2],
                    [
                        Correspondence(
                            source_id=pivot.correspondence.target_id,
                            target_id=f"validated_round_{round_number}",
                            score=1.0,
                        )
                    ],
                    asserted_by="validator",
                    method=AssertionMethod.HUMAN_VALIDATED,
                )
                fresh_corpus = referee.corpus_match(corpus_request)
                fresh_network = referee.network_match(network_request)
                for client in sweep_clients:
                    served_corpus = client.corpus_match(corpus_request)
                    served_network = client.network_match(network_request)
                    n_checked += 2
                    corpus_fresh = (
                        served_corpus.candidate_names
                        == fresh_corpus.candidate_names
                        and all(
                            _same_correspondences(
                                ours.correspondences, theirs.correspondences
                            )
                            for ours, theirs in zip(
                                served_corpus.candidates, fresh_corpus.candidates
                            )
                        )
                    )
                    network_fresh = (
                        served_network.paths == fresh_network.paths
                        and _same_correspondences(
                            served_network.correspondences,
                            fresh_network.correspondences,
                        )
                    )
                    n_stale += (not corpus_fresh) + (not network_fresh)
    finally:
        try:
            exit_status["procpool-sweep"] = server.stop()
        finally:
            server.kill()

    # -- report and assert ---------------------------------------------
    warm_advantage = throughput["procpool"]["warm"] / throughput["threaded"]["warm"]
    n_elements = sum(len(g.schema) for g in corpus.schemata)
    report = report_factory(
        "E20", "Process-pool serving (prefork workers over one pooled-WAL store)"
    )
    report.row(
        "registered corpus",
        "(schemata; elements)",
        f"{len(names)} ({n_elements:,} elements, WAL SQLite)",
    )
    report.row(
        "deployment under test",
        "(workers)",
        f"{N_WORKERS} prefork processes vs 1 threaded process "
        f"({os.cpu_count()} CPU visible)",
    )
    report.row(
        f"threaded throughput ({N_CLIENTS} clients x {REQUESTS_PER_CLIENT})",
        "(requests/second)",
        f"cold {throughput['threaded']['cold']:,.0f} / "
        f"warm {throughput['threaded']['warm']:,.0f} req/s",
    )
    report.row(
        f"process-pool throughput ({N_CLIENTS} clients x {REQUESTS_PER_CLIENT})",
        "(requests/second)",
        f"cold {throughput['procpool']['cold']:,.0f} / "
        f"warm {throughput['procpool']['warm']:,.0f} req/s",
    )
    n_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    advantage_goal = "> 1x" if n_cpus >= 2 else f">= {SINGLE_CPU_FLOOR}x (1 CPU)"
    report.row(
        "warm pool vs warm threaded", advantage_goal, f"{warm_advantage:.2f}x"
    )
    report.row(
        f"served-vs-direct score drift ({len(requests)} requests x 2 deployments)",
        f"<= {SCORE_TOLERANCE:g}",
        f"{score_drift:.2e}",
    )
    report.row(
        f"cross-process sweep ({SWEEP_ROUNDS} writes, {n_checked} re-reads)",
        "0 stale",
        f"{n_stale} stale",
    )
    report.row(
        "clean SIGTERM shutdown",
        "status 0",
        ", ".join(f"{label}: {status}" for label, status in exit_status.items()),
    )

    # The warm pool must beat the warm threaded server outright wherever
    # the workers can actually run in parallel; on a single CPU the honest
    # claim is non-regression (see module docstring).  The cold pass is
    # reported above but never asserted (N workers warming N caches do
    # redundant fills).
    if n_cpus >= 2:
        assert warm_advantage > 1.0
    else:
        assert warm_advantage >= SINGLE_CPU_FLOOR
    assert score_drift <= SCORE_TOLERANCE
    assert n_stale == 0
    assert all(status == 0 for status in exit_status.values())
