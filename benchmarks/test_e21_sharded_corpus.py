"""E21 -- sharded corpus at 10k schemata: bulk ingest, flat latency, live refresh.

The paper's registry numbers (section 2: the DoD metadata registry holds
thousands of schemata; BTS alone ~3,800) put corpus retrieval one order
of magnitude past E17's hundred-schema bench.  This bench drives the
sharded corpus subsystem at that scale and holds it to four contracts:

* **bulk ingestion** -- 10k schemata land through
  ``bulk_register_schemas`` (one transaction per chunk) at >= 5x the
  rate of a ``register()`` loop (two write transactions per schema),
  measured on the same single-connection SQLite store kind --
  registration path only, best of three paired runs, since sub-second
  single-shot SQLite timings are fsync-noise dominated;
* **exactness** -- sharded top-k scores equal the unsharded engine's to
  1e-9 at 1k and at 10k (the implementation is bit-identical; the bench
  asserts the looser published tolerance);
* **flat retrieval** -- p50 ``top_candidates`` latency grows <= 1.5x
  from 1k to 10k schemata.  The corpus scales by ADDING domains at
  constant domain size (:func:`~repro.synthetic.generate_scaled_corpus`
  dialects), so a query's true candidate set never grows; the pruned
  scorer must exploit that and skip the corpus-wide low-idf facet tail;
* **live refresh** -- with the refresh worker running, a forced full
  rebuild of all 10k entries never blocks queries (reads stay on the
  published shard snapshots), and an interleaved register/query sweep
  sees every registration immediately (zero stale results -- the
  synchronous fallback, not the worker, is the correctness backstop).
"""

import statistics
import threading
import time

from repro.corpus import CorpusIndex, CorpusRefreshWorker, ShardedCorpusIndex, bulk_ingest
from repro.repository import MetadataRepository
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.synthetic import generate_scaled_corpus

N_SMALL = 1_000
N_LARGE = 10_000
SCHEMATA_PER_DOMAIN = 50
N_SHARDS = 8
TOP_K = 5
LOOP_SAMPLE = 400            # register()-loop timing subsample
INGEST_SPEEDUP_FLOOR = 5.0
EXACTNESS_TOLERANCE = 1e-9
P50_RATIO_CEILING = 1.5
BLOCKED_QUERY_CEILING = 1.0  # seconds; lock-free reads sit ~3 orders below


def _p50(seconds: list[float]) -> float:
    return statistics.median(seconds)


def _query_names(corpus, n_queries: int) -> list[str]:
    step = max(1, len(corpus.names) // n_queries)
    return corpus.names[::step][:n_queries]


def _measure_queries(index, corpus, names: list[str]) -> list[float]:
    samples = []
    for name in names:
        query = corpus.by_name(name).schema
        started = time.perf_counter()
        hits = index.top_candidates(query, limit=TOP_K, exclude=name)
        samples.append(time.perf_counter() - started)
        assert len(hits) > 0
    return samples


def test_e21_sharded_corpus(tmp_path, report_factory):
    report = report_factory(
        "E21", "sharded corpus: bulk ingest, exact retrieval, background refresh"
    )

    started = time.perf_counter()
    small = generate_scaled_corpus(N_SMALL, schemata_per_domain=SCHEMATA_PER_DOMAIN)
    large = generate_scaled_corpus(N_LARGE, schemata_per_domain=SCHEMATA_PER_DOMAIN)
    generate_seconds = time.perf_counter() - started
    report.line(
        f"  corpus: {N_SMALL} and {N_LARGE} schemata, "
        f"{SCHEMATA_PER_DOMAIN}/domain, generated in {generate_seconds:.1f}s"
    )

    # ---- bulk ingestion vs loop registration (same store kind) ---------
    # Registration only, fingerprints off on BOTH sides, best-of-3 paired
    # runs on fresh stores: the contract is about transaction batching
    # (one BEGIN IMMEDIATE per chunk vs per-schema write transactions),
    # and a single ~0.3s loop window is fsync-noise dominated.
    loop_rate = bulk_rate = 0.0
    for rep in range(3):
        with MetadataRepository(path=str(tmp_path / f"loop{rep}.db")) as repository:
            sample = large.schemata[:LOOP_SAMPLE]
            started = time.perf_counter()
            for generated in sample:
                repository.register(generated.schema)
            loop_rate = max(loop_rate, LOOP_SAMPLE / (time.perf_counter() - started))
        with MetadataRepository(path=str(tmp_path / f"blk{rep}.db")) as repository:
            trial = bulk_ingest(
                repository,
                (generated.schema for generated in large.schemata),
                fingerprint=False,
            )
            assert trial.n_written == N_LARGE
            bulk_rate = max(bulk_rate, N_LARGE / trial.register_seconds)
    speedup = bulk_rate / loop_rate

    # The real thing once, fingerprints and all: this store feeds every
    # later phase of the bench.
    bulk_path = str(tmp_path / "bulk.db")
    with MetadataRepository(path=bulk_path) as repository:
        ingest = bulk_ingest(
            repository,
            (generated.schema for generated in large.schemata),
            fingerprint=True,
        )
        assert ingest.n_written == N_LARGE
        assert len(repository) == N_LARGE
    report.row(
        "bulk registration rate (schemata/s)",
        f">= {INGEST_SPEEDUP_FLOOR}x loop",
        f"{bulk_rate:,.0f}/s vs {loop_rate:,.0f}/s loop ({speedup:.1f}x, best of 3)",
    )
    report.row(
        "full ingest incl. fingerprints (off the loop path)",
        "reported",
        f"{ingest.schemata_per_second:,.0f}/s end-to-end "
        f"({ingest.fingerprint_seconds:.1f}s fingerprinting)",
    )
    assert speedup >= INGEST_SPEEDUP_FLOOR

    # ---- exactness and p50 flatness, 1k vs 10k -------------------------
    small_repo = MetadataRepository()
    bulk_ingest(small_repo, (g.schema for g in small.schemata), fingerprint=True)

    with MetadataRepository(path=bulk_path) as large_repo:
        flat_small, flat_large = CorpusIndex(small_repo), CorpusIndex(large_repo)
        sharded_small = ShardedCorpusIndex(small_repo, n_shards=N_SHARDS)
        sharded_large = ShardedCorpusIndex(large_repo, n_shards=N_SHARDS)
        for index in (flat_small, flat_large, sharded_small, sharded_large):
            index.refresh()

        worst = 0.0
        for corpus, flat, sharded, n_queries in (
            (small, flat_small, sharded_small, 6),
            (large, flat_large, sharded_large, 4),
        ):
            for name in _query_names(corpus, n_queries):
                query = corpus.by_name(name).schema
                expected = flat.top_candidates(query, limit=TOP_K, exclude=name)
                actual = sharded.top_candidates(query, limit=TOP_K, exclude=name)
                assert [h.schema_name for h in actual] == [
                    h.schema_name for h in expected
                ]
                for got, want in zip(actual, expected):
                    worst = max(worst, abs(got.score - want.score))
        report.row(
            "sharded vs unsharded score divergence",
            f"<= {EXACTNESS_TOLERANCE}",
            f"{worst:.2e} (worst absolute)",
        )
        assert worst <= EXACTNESS_TOLERANCE

        queries_small = _query_names(small, 31)
        queries_large = _query_names(large, 31)
        p50_small = _p50(_measure_queries(sharded_small, small, queries_small))
        p50_large = _p50(_measure_queries(sharded_large, large, queries_large))
        ratio = p50_large / p50_small
        report.row(
            "p50 top_candidates, 1k -> 10k",
            f"<= {P50_RATIO_CEILING}x",
            f"{p50_small * 1e3:.2f}ms -> {p50_large * 1e3:.2f}ms ({ratio:.2f}x)",
        )
        assert ratio <= P50_RATIO_CEILING

        # ---- background refresh never blocks a query -------------------
        # Invalidate a quarter of the persisted fingerprints (fingerprint
        # writes never move the generation clock), so the forced refresh
        # must genuinely re-derive ~2,500 entries across every shard
        # while readers keep hitting the published snapshots lock-free.
        invalidated = large.names[::4]
        large_repo.put_fingerprints(
            {
                name: {"format_version": 1, "hash": "invalidated", "terms": {}}
                for name in invalidated
            }
        )
        refresh_done = threading.Event()
        refresh_seconds = [0.0]

        def full_rebuild():
            started = time.perf_counter()
            refresh = sharded_large.refresh(force=True)
            refresh_seconds[0] = time.perf_counter() - started
            assert refresh.n_derived == len(invalidated)
            refresh_done.set()

        rebuilder = threading.Thread(target=full_rebuild)
        rebuilder.start()
        during = []
        while not refresh_done.is_set():
            for name in queries_large[:5]:
                query = large.by_name(name).schema
                started = time.perf_counter()
                sharded_large.top_candidates(query, limit=TOP_K, exclude=name)
                during.append(time.perf_counter() - started)
        rebuilder.join()
        report.row(
            "max query latency during forced full refresh",
            f"<= {BLOCKED_QUERY_CEILING}s",
            f"{max(during) * 1e3:.1f}ms over {len(during)} queries "
            f"(refresh took {refresh_seconds[0]:.1f}s)",
        )
        assert max(during) <= BLOCKED_QUERY_CEILING

        # ---- zero stale results under interleaved register/query -------
        worker = CorpusRefreshWorker(sharded_large, interval=0.05)
        worker.start()
        try:
            template = schema_to_dict(large.by_name(large.names[0]).schema)
            for i, round_tag in enumerate("abcdefghijkl"):
                payload = dict(template)
                payload["name"] = f"ZSWEEP{i:02d}"
                # A round-unique token makes each copy its own best match
                # (strictly above the template and every earlier copy).
                first = dict(payload["elements"][0])
                first["documentation"] = (
                    f"{first.get('documentation') or ''} zsweep{round_tag}mark"
                ).strip()
                payload["elements"] = [first] + payload["elements"][1:]
                schema = schema_from_dict(payload)
                large_repo.register(schema)
                hits = sharded_large.top_candidates(schema, limit=3)
                # Visibility immediately after register IS the
                # zero-staleness contract.
                assert hits[0].schema_name == f"ZSWEEP{i:02d}"
        finally:
            worker.stop()
        stats = worker.stats()
        assert len(sharded_large) == len(large_repo)
        report.row(
            "interleaved register/query sweep",
            "0 stale results",
            f"0 stale over 12 rounds ({stats.n_refreshes} worker refreshes)",
        )
        shard_sizes = [s.n_indexed for s in sharded_large.shard_stats()]
        report.line(
            f"  shards: {N_SHARDS}, sizes {min(shard_sizes)}..{max(shard_sizes)}"
        )
