"""E22 -- the distributed response-cache tier: shared warmth, zero stale.

E19 gave one server a generation-aware response cache; E20 scaled to a
prefork pool with per-process caches.  This bench holds the *shared*
cache tier (``repro cache-serve`` + ``repro serve --cache-url``) to the
claims that justify running one more process:

* **fleet-wide warmth** -- with private per-replica caches, a request
  warmed on one replica is cold on every other: the aggregate warm hit
  ratio across a 2-replica fleet caps out as each replica pays its own
  misses.  With the shared tier mounted, one replica's computed miss is
  every replica's hit -- the aggregate warm hit ratio must beat the
  private-cache fleet outright;
* **score exactness** -- every correspondence served through either
  topology must match a direct in-process referee to 1e-9;
* **zero stale under interleaved writes** -- a writer process (this
  bench) stores matches straight into the shared store between reads;
  every subsequent answer from every replica must equal a freshly
  computed referee answer.  The DB-backed clocks are the backstop; the
  write nudge (and the shared tier's one-sweep-serves-all eviction) only
  make it cheaper;
* **warm starts** -- replicas record their hottest request hashes into
  the store; a brand-new replica started with ``--warm-cache N`` must
  report warmed entries on ``/metrics`` and answer those requests hot.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
from pathlib import Path

import repro
from repro.match import Correspondence
from repro.repository import AssertionMethod, MetadataRepository
from repro.server import MatchServiceClient
from repro.service import (
    CorpusMatchRequest,
    MatchOptions,
    MatchRequest,
    MatchService,
    NetworkMatchRequest,
)
from repro.synthetic import generate_clustered_corpus

N_REPLICAS = 2
N_DISTINCT_REQUESTS = 12
SCORE_TOLERANCE = 1e-9
SWEEP_ROUNDS = 3
OPTIONS = MatchOptions(threshold=0.15)
_ENV = None


def _env() -> dict:
    global _ENV
    if _ENV is None:
        _ENV = {
            **os.environ,
            "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
        }
    return _ENV


class _Process:
    """One harmonia subprocess; its address parsed from the announce line."""

    def __init__(self, label: str, arguments: list[str], marker: str):
        self.label = label
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", *arguments],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            start_new_session=True,
            env=_env(),
        )
        announce = self.process.stdout.readline()
        assert marker in announce, f"{label}: {announce!r}"
        self.announced = announce.split(marker, 1)[1].split()[0]

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        self.process.communicate(timeout=120)
        return self.process.returncode

    def kill(self) -> None:
        if self.process.poll() is None:
            try:
                os.killpg(os.getpgid(self.process.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            self.process.communicate(timeout=30)


def _replica(db_path: str, label: str, extra: list[str]) -> _Process:
    return _Process(
        label,
        ["serve", "--db", db_path, "--backend", "pooled", "--port", "0", *extra],
        "serving on ",
    )


def _cache_server(label: str = "cache") -> _Process:
    return _Process(label, ["cache-serve", "--port", "0"], "cache-serve on ")


def _fleet_warm_ratio(
    urls: list[str], requests: list[MatchRequest]
) -> tuple[float, int, dict]:
    """Cold-fill through replica 0, then demand warmth from every OTHER
    replica: hits over lookups for the cross-replica pass, counted from
    the X-Harmonia-Cache header -- plus every served score for the referee.
    """
    scores: dict = {}
    first = MatchServiceClient(urls[0])
    for request in requests:
        response = first.match(request)
        scores[(request.source, request.target)] = {
            c.pair: c.score for c in response.correspondences
        }
    hits = 0
    lookups = 0
    for url in urls[1:]:
        client = MatchServiceClient(url)
        for request in requests:
            client.match(request)
            lookups += 1
            hits += client.last_cache_status == "hit"
    return (hits / lookups if lookups else 0.0), lookups, scores


def _same_scores(served: dict, expected: dict) -> float:
    assert set(served) == set(expected)
    return max(
        (abs(score - expected[pair]) for pair, score in served.items()),
        default=0.0,
    )


def _same_correspondences(ours, theirs) -> bool:
    mine = {c.pair: c.score for c in ours}
    reference = {c.pair: c.score for c in theirs}
    return set(mine) == set(reference) and all(
        abs(mine[pair] - reference[pair]) <= SCORE_TOLERANCE for pair in mine
    )


def test_e22_distcache(tmp_path, report_factory):
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=4, seed=2009
    )
    db_path = str(tmp_path / "e22.db")
    with MetadataRepository(path=db_path, backend="pooled") as seeder:
        for generated in corpus.schemata:
            seeder.register(generated.schema)
        names = sorted(seeder.schema_names())
    requests = [
        MatchRequest(source=source, target=target, options=OPTIONS)
        for source, target in itertools.combinations(names, 2)
    ][:N_DISTINCT_REQUESTS]

    exit_status: dict[str, int] = {}
    ratios: dict[str, float] = {}
    scores: dict[str, dict] = {}
    cross_lookups = 0

    # -- topology A: private per-replica caches ------------------------
    replicas = [
        _replica(db_path, f"private-{index}", []) for index in range(N_REPLICAS)
    ]
    try:
        ratios["private"], cross_lookups, scores["private"] = _fleet_warm_ratio(
            [replica.announced for replica in replicas], requests
        )
    finally:
        for replica in replicas:
            try:
                exit_status[replica.label] = replica.stop()
            finally:
                replica.kill()

    # -- topology B: one shared cache tier -----------------------------
    cache = _cache_server()
    replicas = [
        _replica(
            db_path, f"shared-{index}", ["--cache-url", cache.announced]
        )
        for index in range(N_REPLICAS)
    ]
    metrics_block: dict = {}
    n_stale = 0
    n_checked = 0
    try:
        ratios["shared"], _, scores["shared"] = _fleet_warm_ratio(
            [replica.announced for replica in replicas], requests
        )
        follower = MatchServiceClient(replicas[1].announced)
        metrics_block = follower.metrics()["cache"]

        # -- interleaved write/read sweep across the fleet -------------
        clients = [
            MatchServiceClient(replica.announced) for replica in replicas
        ]
        with MetadataRepository(path=db_path, backend="pooled") as repository:
            referee = MatchService(repository=repository)
            referee.persist(
                referee.match_pair(names[0], names[1], options=OPTIONS)
            )
            referee.persist(
                referee.match_pair(names[1], names[2], options=OPTIONS)
            )
            corpus_request = CorpusMatchRequest(
                source=names[0], top_k=3, options=OPTIONS
            )
            network_request = NetworkMatchRequest(
                source=names[0], target=names[2], max_hops=2, options=OPTIONS
            )
            pivot = repository.matches(
                source_schema=names[0], target_schema=names[1]
            )[0]
            for round_number in range(SWEEP_ROUNDS):
                for client in clients:
                    client.corpus_match(corpus_request)
                    client.network_match(network_request)
                repository.store_matches(
                    names[1],
                    names[2],
                    [
                        Correspondence(
                            source_id=pivot.correspondence.target_id,
                            target_id=f"validated_round_{round_number}",
                            score=1.0,
                        )
                    ],
                    asserted_by="validator",
                    method=AssertionMethod.HUMAN_VALIDATED,
                )
                fresh_corpus = referee.corpus_match(corpus_request)
                fresh_network = referee.network_match(network_request)
                for client in clients:
                    served_corpus = client.corpus_match(corpus_request)
                    served_network = client.network_match(network_request)
                    n_checked += 2
                    corpus_fresh = (
                        served_corpus.candidate_names
                        == fresh_corpus.candidate_names
                        and all(
                            _same_correspondences(
                                ours.correspondences, theirs.correspondences
                            )
                            for ours, theirs in zip(
                                served_corpus.candidates, fresh_corpus.candidates
                            )
                        )
                    )
                    network_fresh = (
                        served_network.paths == fresh_network.paths
                        and _same_correspondences(
                            served_network.correspondences,
                            fresh_network.correspondences,
                        )
                    )
                    n_stale += (not corpus_fresh) + (not network_fresh)
    finally:
        for replica in replicas:
            try:
                exit_status[replica.label] = replica.stop()
            finally:
                replica.kill()

    # -- topology C: a warm-started newcomer ---------------------------
    # The stopped replicas flushed their request stats on shutdown; a
    # fresh replica -- with a PRIVATE cache, so nothing is inherited from
    # the shared tier -- must find them and pre-answer the hottest
    # requests before its first client arrives.
    newcomer = _replica(db_path, "warmed", ["--warm-cache", "16"])
    try:
        client = MatchServiceClient(newcomer.announced)
        warm_payload = client.metrics()["cache"]
        warmed_entries = warm_payload["warmed_entries"]
        client.match(requests[0])
        warm_start_hit = client.last_cache_status
    finally:
        try:
            exit_status["warmed"] = newcomer.stop()
        finally:
            newcomer.kill()
    try:
        exit_status["cache-serve"] = cache.stop()
    finally:
        cache.kill()

    # -- referee: direct in-process answers ----------------------------
    with MetadataRepository(path=db_path, backend="pooled") as repository:
        referee = MatchService(repository=repository)
        score_drift = 0.0
        for request in requests:
            expected = {
                c.pair: c.score
                for c in referee.match_pair(
                    request.source, request.target, options=OPTIONS
                ).correspondences
            }
            for topology in ("private", "shared"):
                served = scores[topology][(request.source, request.target)]
                score_drift = max(score_drift, _same_scores(served, expected))

    # -- report and assert ---------------------------------------------
    n_elements = sum(len(g.schema) for g in corpus.schemata)
    report = report_factory(
        "E22", "Distributed response-cache tier (shared cache over N replicas)"
    )
    report.row(
        "registered corpus",
        "(schemata; elements)",
        f"{len(names)} ({n_elements:,} elements, WAL SQLite)",
    )
    report.row(
        "fleet under test",
        "(replicas)",
        f"{N_REPLICAS} serve processes over one store + 1 cache-serve",
    )
    report.row(
        f"cross-replica warm hits, private caches ({cross_lookups} lookups)",
        "(cold fleet)",
        f"{ratios['private']:.0%}",
    )
    report.row(
        f"cross-replica warm hits, shared tier ({cross_lookups} lookups)",
        "> private",
        f"{ratios['shared']:.0%}",
    )
    report.row(
        "/metrics warm_hit_ratio (shared follower)",
        "> 0",
        f"{metrics_block.get('warm_hit_ratio', 0.0):.0%} "
        f"(tier: {metrics_block.get('tier', {}).get('kind')})",
    )
    report.row(
        f"served-vs-direct score drift ({len(requests)} requests x 2 topologies)",
        f"<= {SCORE_TOLERANCE:g}",
        f"{score_drift:.2e}",
    )
    report.row(
        f"interleaved sweep ({SWEEP_ROUNDS} writes, {n_checked} re-reads)",
        "0 stale",
        f"{n_stale} stale",
    )
    report.row(
        "warm-started newcomer (--warm-cache 16)",
        "> 0 warmed, first hit",
        f"{warmed_entries} warmed, first request: {warm_start_hit}",
    )
    report.row(
        "clean SIGTERM shutdown",
        "status 0",
        ", ".join(
            f"{label}: {status}" for label, status in sorted(exit_status.items())
        ),
    )

    # The shared tier must turn the cross-replica pass from cold to hot:
    # strictly better than private caches, and actually hot in absolute
    # terms (every request was just computed by the other replica).
    assert ratios["shared"] > ratios["private"]
    assert ratios["shared"] >= 0.9
    assert metrics_block["tier"]["kind"] == "tiered"
    assert metrics_block["warm_hit_ratio"] > 0.0
    assert score_drift <= SCORE_TOLERANCE
    assert n_stale == 0
    assert warmed_entries > 0
    assert warm_start_hit == "hit"
    assert all(status == 0 for status in exit_status.values())
