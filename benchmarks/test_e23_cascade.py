"""E23 -- budgeted cascade: F1 uplift vs oracle spend on the hard tier.

The cascade's economic claim: when the cheap ensemble is genuinely
ambiguous (hard synthetic tier: near-miss decoy columns + an abbreviation
gradient concentrated on exactly the shared concepts), escalating the
most ambiguous pairs to a Stage-2 oracle buys F1 roughly monotonically in
the oracle budget -- and a zero budget (or no cascade at all) costs
nothing: scores stay within 1e-9 of today's engine.

The oracle is a :class:`~repro.cascade.RecordedOracle` built from the
generator's ground truth at a fixed ~95% fidelity (deterministic
content-hash flips), standing in for a live LLM exactly the way an
offline-first recorded trace would.
"""

from __future__ import annotations

import numpy as np

from repro.cascade import CascadePlan, RecordedOracle, element_view, register_oracle
from repro.match import HarmonyMatchEngine
from repro.service import MatchOptions, MatchService
from repro.synthetic import PairSpec, generate_pair

HARD_SPEC = PairSpec(decoys=30, abbrev_gradient=0.5)
SEED = 2009
# The hard tier floods the band (the cheap ensemble's merged scores all sit
# inside |c| < 0.35 here), so budgets are chosen as real fractions of the
# ~23k-cell grid: most-ambiguous-first ordering spends early budget on the
# zero-signal region and fixes the decisive near-threshold pairs last.
BUDGETS = (0, 1000, 8000, 16000, None)
BAND = 0.35
WEIGHT = 0.8
THRESHOLD = 0.15
TRUE_VERDICT = 0.9
FALSE_VERDICT = -0.7
FLIP_MODULUS = 20  # 1-in-20 deterministic misses ~ 95% oracle recall
ORACLE_NAME = "e23_truth_oracle"
EXACTNESS = 1e-9


def _truth_recording(pair) -> dict[str, float]:
    """Record the ground-truth judge over the full grid at ~95% fidelity."""
    engine = HarmonyMatchEngine()
    source_profile = engine.profile(pair.source.schema)
    target_profile = engine.profile(pair.target.schema)
    source_views = [
        element_view(source_profile, i) for i in range(len(source_profile))
    ]
    target_views = [
        element_view(target_profile, j) for j in range(len(target_profile))
    ]
    truth = pair.truth_pairs
    recording: dict[str, float] = {}
    for i, source_id in enumerate(source_profile.element_ids):
        for j, target_id in enumerate(target_profile.element_ids):
            key = RecordedOracle.pair_key(source_views[i], target_views[j])
            if (source_id, target_id) in truth:
                # The imperfection is one-sided, like a conservative judge:
                # ~5% of true matches are missed, but an ambiguous non-match
                # is never promoted (non-matches outnumber matches by orders
                # of magnitude, so symmetric noise would swamp precision).
                missed = int(key[:8], 16) % FLIP_MODULUS == 0
                verdict = FALSE_VERDICT if missed else TRUE_VERDICT
            else:
                verdict = FALSE_VERDICT
            # Content-identical pairs share a key; truth wins the collision.
            recording[key] = max(recording.get(key, -1.0), verdict)
    return recording


def _f1(correspondences, truth) -> float:
    predicted = {(c.source_id, c.target_id) for c in correspondences}
    if not predicted or not truth:
        return 0.0
    true_positives = len(predicted & truth)
    precision = true_positives / len(predicted)
    recall = true_positives / len(truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def test_e23_cascade_budget_sweep(report_factory):
    report = report_factory("E23", "Budgeted cascade: F1 vs oracle spend")
    pair = generate_pair(HARD_SPEC, seed=SEED)
    source, target = pair.source.schema, pair.target.schema
    recording = _truth_recording(pair)
    register_oracle(ORACLE_NAME, lambda: RecordedOracle(recording, strict=True))

    report.line(
        f"  hard tier: {len(source)} x {len(target)} elements, "
        f"{len(pair.truth_pairs)} truth pairs, "
        f"{len(pair.decoy_target_ids)} decoys, "
        f"abbrev gradient {HARD_SPEC.abbrev_gradient}"
    )
    report.line()

    # Referee: today's engine, no cascade anywhere near it.
    plain = MatchService().match_pair(
        source, target, options=MatchOptions(execution="exact", threshold=THRESHOLD)
    )
    plain_scores = plain.result.matrix.scores
    baseline_f1 = _f1(plain.correspondences, pair.truth_pairs)

    report.line(
        f"  {'budget':>9}  {'escalated':>9}  {'calls':>6}  "
        f"{'truncated':>9}  {'F1':>6}"
    )
    report.line(
        f"  {'(none)':>9}  {0:>9}  {0:>6}  {'-':>9}  {baseline_f1:>6.3f}"
    )

    f1_by_budget = []
    for budget in BUDGETS:
        # A fresh service per level keeps the oracle-cache accounting cold,
        # so the reported calls are the real per-budget spend.
        service = MatchService()
        plan = CascadePlan(
            band=BAND, budget=budget, oracle=ORACLE_NAME, weight=WEIGHT
        )
        response = service.match_pair(
            source,
            target,
            options=MatchOptions(
                execution="exact", threshold=THRESHOLD, cascade=plan
            ),
        )
        cascade = response.cascade
        assert cascade is not None
        if budget is not None:
            assert cascade.oracle_calls <= budget, "oracle calls exceeded budget"
            assert cascade.n_escalated <= budget
        score = _f1(response.correspondences, pair.truth_pairs)
        f1_by_budget.append((budget, score))
        report.line(
            f"  {'inf' if budget is None else budget:>9}  "
            f"{cascade.n_escalated:>9}  {cascade.oracle_calls:>6}  "
            f"{str(cascade.truncated):>9}  {score:>6.3f}"
        )

        if budget == 0:
            # The free tier really is free: zero budget never moves a score.
            zero_scores = response.result.matrix.scores
            drift = float(np.max(np.abs(zero_scores - plain_scores)))
            assert drift <= EXACTNESS

    report.line()
    report.row(
        "zero-budget score drift vs plain engine",
        f"<= {EXACTNESS}",
        f"{drift:.2e}",
    )
    scores = [score for _, score in f1_by_budget]
    # Monotone uplift: spend never hurts (small tolerance for the ~5% of
    # true matches the oracle deliberately misses), and the top budget
    # clearly pays.
    for lean, rich in zip(scores, scores[1:]):
        assert rich >= lean - 0.01, f"F1 fell with a larger budget: {scores}"
    assert scores[0] == baseline_f1  # budget 0 == no cascade, end to end
    uplift = scores[-1] - baseline_f1
    report.row("F1 uplift at unlimited budget", "> 0", f"+{uplift:.3f}")
    report.row(
        "F1 monotone in budget",
        "non-decreasing",
        " -> ".join(f"{score:.3f}" for score in scores),
    )
    assert uplift > 0.0, "the oracle bought no F1 on the hard tier"
