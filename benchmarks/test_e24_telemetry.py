"""E24 -- telemetry: disabled-path overhead, span coverage, fleet exactness.

Observability must be free when off and honest when on.  Three contracts
over the E19-style served workload:

* **disabled-path overhead <= 2%** -- with no active trace, every
  ``span(...)`` site reduces to one contextvar read returning a shared
  null object.  Measured two ways: a direct microbench of the disabled
  ``span()`` call multiplied by the span sites a request crosses, as a
  fraction of the median untraced request latency; and an A/B of the same
  request stream with the service tracer enabled-but-unopted vs fully
  disabled (the same code path -- the delta is run-to-run noise and must
  stay within the 2% envelope).
* **span trees are complete** -- an opt-in traced request must return a
  structurally valid span tree (``validate_trace`` finds nothing) whose
  root duration lies within 10% of the wall-clock latency measured around
  the call, and whose per-stage breakdown accounts for the bulk of the
  root.
* **fleet aggregation is exact** -- hammering a 2-worker prefork pool,
  any worker's ``/metrics`` fleet block must report totals EQUAL to the
  sum of its per-worker regions, with requests and histogram counts both
  adding up to the number of requests actually sent (no lost updates, no
  double counts).
"""

from __future__ import annotations

import os
import signal
import statistics
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.repository import MetadataRepository
from repro.server import MatchServiceClient
from repro.service import MatchOptions, MatchRequest, MatchService
from repro.synthetic import generate_clustered_corpus
from repro.telemetry import Tracer, span, stage_totals, validate_trace

N_WARMUP = 3
N_TIMED = 25
SPAN_MICROBENCH_CALLS = 200_000
#: span sites one /match request crosses when no trace is active
#: (service.match, route.compile, engine.score, envelope.build,
#: cache.get, cache.put -- repository reads resolve before the engine).
SPAN_SITES_PER_REQUEST = 8
OVERHEAD_CEILING = 0.02
ROOT_TOLERANCE = 0.10
THRESHOLD = 0.15


def _median_latency(service, request, n=N_TIMED) -> float:
    samples = []
    for _ in range(n):
        started = time.perf_counter()
        service.match(request)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_e24_telemetry(tmp_path, report_factory):
    report = report_factory(
        "E24", "telemetry: disabled overhead, span coverage, fleet exactness"
    )
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=4, seed=2009
    )
    repository = MetadataRepository()
    for generated in corpus.schemata:
        repository.register(generated.schema)
    names = sorted(repository.schema_names())
    request = MatchRequest(
        source=names[0], target=names[1],
        options=MatchOptions(threshold=THRESHOLD),
    )

    # -- 1. disabled-path overhead -----------------------------------
    # Microbench the no-op span site itself.
    started = time.perf_counter()
    for _ in range(SPAN_MICROBENCH_CALLS):
        with span("engine.score"):
            pass
    per_span_seconds = (time.perf_counter() - started) / SPAN_MICROBENCH_CALLS

    service_enabled = MatchService(repository=repository)
    service_disabled = MatchService(
        repository=repository, tracer=Tracer(enabled=False)
    )
    for _ in range(N_WARMUP):
        service_enabled.match(request)
        service_disabled.match(request)
    median_enabled = _median_latency(service_enabled, request)
    median_disabled = _median_latency(service_disabled, request)

    site_overhead = SPAN_SITES_PER_REQUEST * per_span_seconds / median_disabled
    ab_delta = abs(median_enabled - median_disabled) / median_disabled

    report.row(
        "disabled span() call",
        "~free",
        f"{per_span_seconds * 1e9:.0f} ns",
    )
    report.row(
        "span-site overhead per request",
        "<= 2%",
        f"{site_overhead * 100:.4f}% "
        f"({SPAN_SITES_PER_REQUEST} sites / {median_disabled * 1e3:.2f} ms)",
    )
    report.row(
        "unopted-vs-disabled A/B delta",
        "<= 2% (noise)",
        f"{ab_delta * 100:.2f}%",
    )
    assert site_overhead <= OVERHEAD_CEILING

    # -- 2. traced span-tree completeness ----------------------------
    traced_request = MatchRequest(
        source=names[0], target=names[1],
        options=MatchOptions(threshold=THRESHOLD, trace=True),
    )
    service_enabled.match(traced_request)  # warm the traced cache key
    started = time.perf_counter()
    traced = service_enabled.match(traced_request)
    wall_seconds = time.perf_counter() - started
    assert traced.trace is not None
    problems = validate_trace(traced.trace)
    assert problems == [], problems
    root_seconds = traced.trace["total_seconds"]
    root_error = abs(root_seconds - wall_seconds) / wall_seconds
    totals = stage_totals(traced.trace)
    child_seconds = sum(
        seconds for kind, seconds in totals.items() if kind != "service.match"
    )
    report.row(
        "trace validity problems", "0", str(len(problems))
    )
    report.row(
        "root span vs wall latency",
        f"within {ROOT_TOLERANCE:.0%}",
        f"{root_error * 100:.2f}% "
        f"({root_seconds * 1e3:.2f} vs {wall_seconds * 1e3:.2f} ms)",
    )
    report.row(
        "stage coverage of root",
        "most of it",
        f"{child_seconds / root_seconds * 100:.1f}% across "
        f"{len(totals) - 1} stage kinds",
    )
    assert root_error <= ROOT_TOLERANCE

    # -- 3. prefork fleet exactness ----------------------------------
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only
        pytest.skip("process-pool serving is POSIX-only")
    db_path = str(tmp_path / "e24.db")
    with MetadataRepository(path=db_path, backend="pooled") as seeded:
        for generated in corpus.schemata:
            seeded.register(generated.schema)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--db", db_path, "--workers", "2", "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
        env={
            **os.environ,
            "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
        },
    )
    try:
        line = process.stdout.readline()
        assert "serving on http://" in line, f"unexpected announce: {line!r}"
        url = line.split("serving on ", 1)[1].split()[0]

        def hammer(index: int) -> None:
            client = MatchServiceClient(url, timeout=60.0)
            for step in range(4):
                client.match(
                    MatchRequest(
                        source=names[index % len(names)],
                        target=names[(index + 1) % len(names)],
                        options=MatchOptions(threshold=0.1 + step * 0.01),
                    )
                )

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        n_sent = 16

        metrics = MatchServiceClient(url, timeout=60.0).metrics()
        fleet = metrics["fleet"]
        total = fleet["totals"]["endpoints"]["/match"]
        worker_requests = [
            worker["endpoints"].get("/match", {}).get("requests", 0)
            for worker in fleet["workers"]
        ]
        report.row(
            "fleet workers reporting", "2", str(fleet["n_workers"])
        )
        report.row(
            "fleet /match totals vs sent",
            f"{n_sent} == {n_sent}",
            f"{total['requests']} (workers: "
            + " + ".join(str(count) for count in worker_requests)
            + ")",
        )
        report.row(
            "fleet histogram count vs sent",
            str(n_sent),
            str(total["latency"]["count"]),
        )
        assert total["requests"] == n_sent
        assert total["requests"] == sum(worker_requests)
        assert total["latency"]["count"] == n_sent
        assert sum(total["latency"]["buckets"]) == n_sent
    finally:
        if process.poll() is None:
            try:
                os.killpg(os.getpgid(process.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
        try:
            process.communicate(timeout=30)
        except (ValueError, subprocess.TimeoutExpired):
            pass
