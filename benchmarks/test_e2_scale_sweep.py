"""E2 -- match workload growth with schema size.

Paper (section 3.1, feature 3): "The scale of the entailed schema match,
10^6 potential matches, would be tedious for human users, and exceeds that
of most published schema matching studies."

The bench sweeps the source side from 100 to all 1378 elements against the
full 784-element target and reports candidate-pair counts and engine time,
confirming the quadratic pair growth that motivates summarization and
incremental matching.
"""

from repro.match import HarmonyMatchEngine


SWEEP_SIZES = (100, 300, 600, 1000, 1378)


def test_e2_pair_growth_sweep(benchmark, case_pair, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema
    all_ids = [element.element_id for element in source]

    def sweep():
        engine = HarmonyMatchEngine()
        measurements = []
        for size in SWEEP_SIZES:
            result = engine.match(
                source, target, source_element_ids=all_ids[:size]
            )
            measurements.append((size, result.n_pairs, result.elapsed_seconds))
        return measurements

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = report_factory("E2", "Candidate-pair scale sweep (section 3.1)")
    report.line("  source size   pairs        engine seconds")
    for size, n_pairs, seconds in measurements:
        report.line(f"  {size:>11}   {n_pairs:>10,}   {seconds:>8.2f}")
    report.row("pairs at full scale", "~10^6", f"{measurements[-1][1]:,}")

    # Pair count grows linearly in the source restriction (target fixed)...
    pairs = [n_pairs for _, n_pairs, _ in measurements]
    assert pairs == sorted(pairs)
    assert measurements[-1][1] > 10 ** 6
    # ...and the full grid is ~13.8x the 100-element grid.
    assert pairs[-1] / pairs[0] > 10
