"""E3 -- the concept inventory and the 167-row spreadsheet.

Paper (sections 3.3-3.4): "they identified 140 schema elements
corresponding to useful abstract concepts in SA and 51 in SB ... 24 of
these concept-level matches were thus identified and recorded. ... The
first sheet enumerated the 191 concepts with their 24 concept-level matches
(167 rows)".

The bench reproduces the whole chain: ground-truth summaries play the
engineers' SUMMARIZE step, concept-level matching lifts the element matrix,
and the outer-join concept sheet must obey |A| + |B| - |matches|.
"""

from repro.export import concept_sheet
from repro.summarize import match_concepts
from repro.synthetic import (
    PAPER_SA_CONCEPTS,
    PAPER_SB_CONCEPTS,
    PAPER_SHARED_CONCEPTS,
    PAPER_SPREADSHEET_CONCEPT_ROWS,
)


def test_e3_concept_inventory_and_sheet(
    benchmark, case_pair, case_result, case_summaries, report_factory
):
    source_summary, target_summary = case_summaries

    def lift_and_sheet():
        matches = match_concepts(source_summary, target_summary, case_result)
        sheet = concept_sheet(source_summary, target_summary, matches)
        return matches, sheet

    matches, sheet = benchmark.pedantic(lift_and_sheet, rounds=3, iterations=1)

    report = report_factory("E3", "Concept inventory and spreadsheet sheet 1 (3.3-3.4)")
    report.row("SA concepts", str(PAPER_SA_CONCEPTS), str(len(source_summary)))
    report.row("SB concepts", str(PAPER_SB_CONCEPTS), str(len(target_summary)))
    report.row(
        "total concepts", str(PAPER_SA_CONCEPTS + PAPER_SB_CONCEPTS),
        str(len(source_summary) + len(target_summary)),
    )
    report.row(
        "concept-level matches found", str(PAPER_SHARED_CONCEPTS), str(len(matches))
    )
    report.row(
        "sheet-1 rows (outer join)",
        str(PAPER_SPREADSHEET_CONCEPT_ROWS),
        str(len(sheet)),
    )
    true_found = sum(
        1
        for match in matches
        if match.source_concept_id.split("#")[0]
        == match.target_concept_id.split("#")[0]
    )
    report.row("found matches that are true pairs", "n/a", f"{true_found}/{len(matches)}")

    # Outer-join law always holds.
    assert len(sheet) == len(source_summary) + len(target_summary) - len(matches)
    # Shape: the matcher recovers most of the 24 planted concept matches.
    assert PAPER_SHARED_CONCEPTS - 6 <= len(matches) <= PAPER_SHARED_CONCEPTS + 6
    assert true_found >= len(matches) - 3  # near-perfect precision at this threshold
