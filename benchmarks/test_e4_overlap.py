"""E4 -- the headline overlap result: 34% of SB matched, 517 did not.

Paper (section 3.4): "The result showed that only 34% of SB matched SA and
66% of SB (or 517 elements) did not, indicating that subsuming Sys(SB)
would be a challenging undertaking."

The bench runs the faithful concept-at-a-time overlap computation
(:func:`repro.metrics.workflow_overlap`) over the case-study match and
checks both the recovered fraction and the quality of the recovered pairs
against the generator's ground truth.
"""

from repro.metrics import prf_of_pairs, workflow_overlap
from repro.synthetic import (
    PAPER_SB_ELEMENTS,
    PAPER_SB_MATCHED_ELEMENTS,
    PAPER_SB_UNMATCHED_ELEMENTS,
)


def test_e4_overlap_partition(
    benchmark, case_pair, case_result, case_summaries, report_factory
):
    source_summary, target_summary = case_summaries

    overlap = benchmark.pedantic(
        lambda: workflow_overlap(case_result, source_summary, target_summary),
        rounds=3,
        iterations=1,
    )
    quality = prf_of_pairs(overlap.matched_pairs, case_pair.truth_pairs)

    report = report_factory("E4", "SB overlap partition (section 3.4)")
    report.row(
        "SB elements matched",
        f"{PAPER_SB_MATCHED_ELEMENTS} (34%)",
        f"{len(overlap.intersection_target_ids)} "
        f"({overlap.target_matched_fraction:.1%})",
    )
    report.row(
        "SB elements unmatched",
        f"{PAPER_SB_UNMATCHED_ELEMENTS} (66%)",
        f"{overlap.target_unmatched_count} "
        f"({1 - overlap.target_matched_fraction:.1%})",
    )
    report.row(
        "ground-truth overlap (generator)",
        "n/a",
        f"{len(case_pair.matched_target_ids)} "
        f"({case_pair.overlap_fraction_target():.1%})",
    )
    report.row(
        "element-pair quality vs truth",
        "n/a",
        f"P={quality.precision:.2f} R={quality.recall:.2f} F1={quality.f1:.2f}",
    )

    # Partition totality.
    assert (
        len(overlap.intersection_target_ids) + overlap.target_unmatched_count
        == PAPER_SB_ELEMENTS
    )
    # Shape: recovered fraction within a few points of the paper's 34%.
    assert 0.25 <= overlap.target_matched_fraction <= 0.45
    # The recovered pairs are substantially real, not noise.
    assert quality.precision > 0.6
    assert quality.recall > 0.6
