"""E5 -- concept-at-a-time increments.

Paper (section 3.3): "they used Harmony's sub-tree filter to incrementally
match each concept ... with the entire opposing schema. ... These match
operations were rapid: typically between 10^4 and 10^5 matches were
considered in each increment."

The bench replays all 140 concept increments over the case study and
reports the per-increment pair-count distribution and latency.  (With
~10-element concepts against 784 targets our typical increment is ~10^3.9
pairs; the paper's upper decade corresponds to its largest concept
sub-trees -- the shape claim is that increments are 1-2 orders of magnitude
smaller than the full 10^6 match and individually rapid.)
"""

import math
import statistics

from repro.match import IncrementalMatcher


def test_e5_concept_increments(benchmark, case_pair, engine, report_factory):
    source = case_pair.source.schema
    target = case_pair.target.schema
    roots = [root.element_id for root in source.roots()]

    def run_all_increments():
        matcher = IncrementalMatcher(source, target, engine=engine)
        for root_id in roots:
            matcher.match_subtree(root_id)
        return matcher

    matcher = benchmark.pedantic(run_all_increments, rounds=1, iterations=1)
    pairs = matcher.pairs_per_increment()
    latencies = [increment.elapsed_seconds for increment in matcher.increments]

    report = report_factory("E5", "Concept-at-a-time increments (section 3.3)")
    report.row("number of increments", "140 concepts", str(len(pairs)))
    report.row(
        "pairs per increment",
        "10^4 - 10^5",
        f"min {min(pairs):,} / median {int(statistics.median(pairs)):,} / "
        f"max {max(pairs):,}",
    )
    report.row(
        "increment magnitude (log10)",
        "4 - 5",
        f"{math.log10(min(pairs)):.1f} - {math.log10(max(pairs)):.1f}",
    )
    report.row(
        "increment latency", "rapid / interactive",
        f"median {statistics.median(latencies) * 1000:.0f} ms",
    )
    report.row(
        "total pairs across increments",
        "= full match (~10^6)",
        f"{matcher.total_pairs_considered:,}",
    )

    assert len(pairs) == 140
    # Increments are drastically smaller than the full 10^6-pair match...
    assert max(pairs) < 10 ** 5
    assert min(pairs) > 10 ** 3
    # ...and sum back to exactly the full grid (every SA element once).
    assert matcher.total_pairs_considered == len(source) * len(target)
    # Each increment is interactive.
    assert statistics.median(latencies) < 2.0
