"""E6 -- N-way matching: the comprehensive vocabulary and its 2^N-1 cells.

Paper (sections 3.4 and 4.5): "They gave us four additional large schemata:
SC, SD, SE, and SF, and requested a comprehensive vocabulary ... for any
non-empty subset of {SA, SC, SD, SE, SF}, the customer wanted to know the
terms those schemata (and no others in that group) held in common" and
"given N schemata there are 2^N - 1 such sets partitioning their N-way
match".

The bench builds the vocabulary from pairwise engine matches over the
generated family, verifies the partition laws, and compares the populated
cells against the generator's planted concept memberships.
"""

from repro.nway import nway_match


def test_e6_comprehensive_vocabulary(benchmark, family, report_factory):
    schemata = {name: generated.schema for name, generated in family.family.items()}

    vocabulary, partition = benchmark.pedantic(
        lambda: nway_match(schemata), rounds=1, iterations=1
    )

    # Ground truth: for every planted concept key, which schemata carry it.
    truth_signatures = {}
    for name, generated in family.family.items():
        for key in generated.concept_keys:
            truth_signatures.setdefault(key, set()).add(name)
    truth_counts = {}
    for members in truth_signatures.values():
        signature = frozenset(members)
        truth_counts[signature] = truth_counts.get(signature, 0) + 1

    report = report_factory("E6", "N-way vocabulary over {SA,SC,SD,SE,SF} (3.4, 4.5)")
    report.row("partition cells", "2^5 - 1 = 31", str(partition.n_cells))
    report.row("vocabulary entries", "all terms of the group", f"{len(vocabulary):,}")
    nonempty = partition.nonempty_cells()
    report.row("non-empty cells", "n/a", str(len(nonempty)))
    report.line()
    report.line("  concept-level cells (planted vs matched containers):")
    report.line("  signature                       planted   matched-cells-entries")
    for signature in sorted(truth_counts, key=lambda s: (len(s), sorted(s))):
        cell = partition.cell(*signature)
        container_entries = sum(
            1
            for entry in cell.entries
            if any(
                schemata[schema_name].children(element_id)
                for schema_name, ids in entry.members.items()
                for element_id in ids
            )
        )
        label = "{" + ",".join(sorted(signature)) + "}"
        report.line(
            f"  {label:<30}  {truth_counts[signature]:>7}   {container_entries:>6}"
        )

    partition.check_partition_laws()
    assert partition.n_cells == 31
    # Every element of every schema is accounted for exactly once.
    total_elements = sum(len(schema) for schema in schemata.values())
    assert sum(cell.n_elements for cell in partition.cells) == total_elements
    # The family-core cell {SC,SD,SE,SF} and the per-schema unique cells
    # must be populated -- the knowledge the customer asked for.
    core_cell = partition.cell("SC", "SD", "SE", "SF")
    assert core_cell.cardinality > 0
    for name in schemata:
        assert partition.cell(name).cardinality > 0
