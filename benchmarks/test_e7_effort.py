"""E7 -- human effort: three days by two engineers, and why the workflow wins.

Paper (section 3.3): "The entire matching process required three days of
effort, by two human integration engineers" -- six person-days.

The bench replays the full validation session with a noisy (human-like)
oracle, prices it with the effort model calibrated to the paper's anchor,
and compares against the naive alternative the paper implies is infeasible:
reviewing every thresholded cell of the raw 10^6 match matrix without
summarization.
"""

from repro.match import ThresholdSelection
from repro.workflow import EffortModel, MatchingSession, NoisyOracle, calibrate


def test_e7_effort_model(
    benchmark, case_pair, case_result, case_summaries, engine, report_factory
):
    source_summary, target_summary = case_summaries

    def run_session():
        session = MatchingSession(
            case_pair.source.schema,
            case_pair.target.schema,
            source_summary,
            oracle=NoisyOracle(case_pair.truth_pairs, seed=2009),
            engine=engine,
            candidate_threshold=0.10,
        )
        return session.run_all(target_summary=target_summary)

    session_report = benchmark.pedantic(run_session, rounds=1, iterations=1)

    n_concepts = len(source_summary) + len(target_summary)
    model = calibrate(
        EffortModel(), session_report, n_concepts, anchor_person_days=6.0
    )
    workflow_estimate = model.session_estimate(session_report, n_concepts)

    # The naive alternative: inspect every cell of the full matrix that
    # clears the same confidence filter, in one monolithic queue.
    naive_candidates = len(case_result.candidates(ThresholdSelection(0.10)))
    naive_estimate = model.naive_estimate(naive_candidates)

    report = report_factory("E7", "Human effort: workflow vs naive review (3.3, 4.2)")
    report.row(
        "candidates inspected (workflow)",
        "n/a",
        f"{session_report.total_candidates_inspected:,}",
    )
    report.row(
        "workflow effort",
        "6 person-days (2 eng x 3 days)",
        f"{workflow_estimate.person_days:.1f} person-days (calibrated)",
    )
    report.row(
        "wall-clock with 2 engineers",
        "3 days",
        f"{workflow_estimate.wall_days(2):.1f} days",
    )
    report.row(
        "naive full-matrix candidates", "n/a", f"{naive_candidates:,}"
    )
    report.row(
        "naive full-matrix effort",
        "infeasible at scale",
        f"{naive_estimate.person_days:.1f} person-days",
    )
    report.row(
        "seconds per candidate (calibrated)",
        "n/a",
        f"{model.seconds_per_candidate:.1f} s",
    )

    # Calibration lands on the anchor by construction.
    assert workflow_estimate.person_days == (
        __import__("pytest").approx(6.0, rel=1e-6)
    )
    # The workflow's review queue is organised into per-concept chunks a
    # team can track and divide ("It helped the integration engineers
    # organize and track their progress each day"); no chunk dominates.
    per_increment = [run.n_candidates_inspected for run in session_report.runs]
    assert max(per_increment) < 0.2 * session_report.total_candidates_inspected
    # And the workflow queue is in the same band as the naive queue (it is
    # the *organisation*, not raw queue length, that the paper credits).
    assert (
        session_report.total_candidates_inspected < 1.5 * naive_candidates
    )
    # A calibrated per-candidate price must be humanly plausible (tens of
    # seconds, not milliseconds or hours).
    assert 2.0 < model.seconds_per_candidate < 600.0
