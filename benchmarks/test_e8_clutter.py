"""E8 -- line-drawing clutter and what the filters recover.

Paper (section 4.3 / Lesson #2): "'line-drawing' visualizations of schema
match break down rapidly as schema size grows much larger than the user's
screen.  While this was ameliorated by Harmony's sub-tree filter ..." and
(3.3) the sub-tree workflow "allowed the integration engineers to keep
entirely visible at least one side of the match ... This precluded a large
mass of criss-crossing lines, denoting off-screen matches, from cluttering
the display".

Measurements:

1. clutter growth: total candidate lines and line crossings as the source
   schema grows (the breakdown claim);
2. filter recovery on the full case study: lines, crossings, and the
   *source-side row span* of the drawn lines -- the span must fit a screen
   under the sub-tree filter (one side entirely visible), while the
   unfiltered view spans the whole 1378-row schema.
"""

from repro.match import HarmonyMatchEngine, ThresholdSelection
from repro.filters import ConfidenceFilter, FilterChain, SubtreeFilter
from repro.viz import LineDrawing, count_crossings

SCREEN_ROWS = 40  # a generous 2008-era screen: 40 schema rows per side
THRESHOLD = 0.10


def _view_stats(drawing, candidates):
    positions = drawing.positions(candidates)
    if positions:
        source_rows = [row for row, _ in positions]
        span = max(source_rows) - min(source_rows) + 1
    else:
        span = 0
    return {
        "lines": len(positions),
        "crossings": count_crossings(positions),
        "source_span": span,
    }


def test_e8_clutter_growth_and_filters(
    benchmark, case_pair, case_result, report_factory
):
    source = case_pair.source.schema
    target = case_pair.target.schema
    all_ids = [element.element_id for element in source]
    subtree_root = source.roots()[0].element_id

    def measure():
        engine = HarmonyMatchEngine()
        growth = []
        for size in (100, 400, 1378):
            result = engine.match(source, target, source_element_ids=all_ids[:size])
            drawing = LineDrawing(result.source, result.target)
            candidates = result.candidates(ThresholdSelection(THRESHOLD))
            growth.append((size, _view_stats(drawing, candidates)))

        drawing = LineDrawing(source, target)
        candidates = case_result.candidates(ThresholdSelection(THRESHOLD))
        views = {}
        chains = {
            "unfiltered": FilterChain(),
            "confidence>=0.15": FilterChain(link_filters=[ConfidenceFilter(0.15)]),
            "subtree filter": FilterChain(source_filters=[SubtreeFilter(subtree_root)]),
            "subtree + confidence": FilterChain(
                link_filters=[ConfidenceFilter(0.15)],
                source_filters=[SubtreeFilter(subtree_root)],
            ),
        }
        for name, chain in chains.items():
            views[name] = _view_stats(
                drawing, chain.apply(candidates, source, target)
            )
        return growth, views

    growth, views = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = report_factory("E8", "Line-drawing clutter vs scale and filters (4.3)")
    report.line("  clutter growth (all candidate lines at the confidence filter):")
    report.line("  source size    lines   crossings   source row span")
    for size, stats in growth:
        report.line(
            f"  {size:>11}  {stats['lines']:>7,}  {stats['crossings']:>10,}  "
            f"{stats['source_span']:>8,} rows"
        )
    report.line()
    report.line(f"  filter recovery on the full match (screen = {SCREEN_ROWS} rows):")
    report.line("  view                      lines   crossings   source row span")
    for name, stats in views.items():
        report.line(
            f"  {name:<22}  {stats['lines']:>7,}  {stats['crossings']:>10,}  "
            f"{stats['source_span']:>8,} rows"
        )

    unfiltered = views["unfiltered"]
    subtree = views["subtree filter"]
    both = views["subtree + confidence"]

    # Breakdown: lines and crossings grow with scale, and the unfiltered
    # drawing spans far more rows than any screen shows.
    lines = [stats["lines"] for _, stats in growth]
    assert lines == sorted(lines)
    assert growth[-1][1]["source_span"] > 10 * SCREEN_ROWS
    assert unfiltered.get("crossings") > 100_000  # the criss-crossing mass

    # Amelioration: the sub-tree filter keeps one whole side of the match
    # on screen (the paper's exact working practice) and collapses clutter.
    assert subtree["source_span"] <= SCREEN_ROWS
    assert subtree["lines"] < unfiltered["lines"] * 0.25
    assert both["lines"] <= subtree["lines"]
    assert both["crossings"] < unfiltered["crossings"] * 0.01
