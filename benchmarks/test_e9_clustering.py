"""E9 -- schema clustering recovers communities of interest.

Paper (sections 2 and 5): "a schema repository such as the MDR could
automatically propose new COIs by clustering the schemata into related
groups" using "numeric characterizations of overlap ... as inter-schema
distance metrics".

The bench plants 4 domains x 6 schemata, clusters the registry with both
clusterers over term-vector distances, and scores recovery against the
planted labels; COI proposals must rediscover the planted communities.
"""

from repro.cluster import (
    TermVectorDistance,
    adjusted_rand_index,
    agglomerative,
    cluster_purity,
    k_medoids,
    propose_cois,
    silhouette,
)


def test_e9_cluster_recovery(benchmark, registry_corpus, report_factory):
    schemata = {
        generated.schema.name: generated.schema
        for generated in registry_corpus.schemata
    }
    truth = registry_corpus.domain_of

    def cluster_registry():
        distances = TermVectorDistance().matrix(schemata)
        hierarchical = agglomerative(distances, linkage="average").cut_k(4)
        medoids = k_medoids(distances, k=4, seed=2009).clusters()
        proposals = propose_cois(distances, n_clusters=4, min_cohesion=0.0)
        return distances, hierarchical, medoids, proposals

    distances, hierarchical, medoids, proposals = benchmark.pedantic(
        cluster_registry, rounds=1, iterations=1
    )

    h_purity = cluster_purity(hierarchical, truth)
    h_ari = adjusted_rand_index(hierarchical, truth)
    m_purity = cluster_purity(medoids, truth)
    m_ari = adjusted_rand_index(medoids, truth)
    sil = silhouette(distances, hierarchical)

    report = report_factory("E9", "COI discovery by schema clustering (2, 5)")
    report.row("registry size", "thousands (MDR)", f"{len(schemata)} (4 domains x 6)")
    report.row(
        "hierarchical recovery", "clusters = planted COIs",
        f"purity {h_purity:.2f}, ARI {h_ari:.2f}",
    )
    report.row(
        "k-medoids recovery", "clusters = planted COIs",
        f"purity {m_purity:.2f}, ARI {m_ari:.2f}",
    )
    report.row("silhouette of recovered clustering", "n/a", f"{sil:.2f}")
    report.line()
    report.line("  proposed COIs (most cohesive first):")
    for proposal in proposals:
        report.line("    " + proposal.describe())

    # Shape: the planted communities are substantially recovered.
    assert h_purity > 0.8
    assert h_ari > 0.6
    assert m_purity > 0.7
    assert len(proposals) >= 3
    # Each proposal is dominated by one planted domain.
    assert cluster_purity([set(p.members) for p in proposals], truth) > 0.8
