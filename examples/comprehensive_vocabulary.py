"""The comprehensive vocabulary over {SA, SC, SD, SE, SF}.

Run:  python examples/comprehensive_vocabulary.py

Reproduces the paper's follow-on study (section 3.4): "for any non-empty
subset of {SA, SC, SD, SE, SF}, the customer wanted to know the terms those
schemata (and no others in that group) held in common" -- i.e. the N-way
match's 2^5 - 1 = 31 partition cells (section 4.5).
"""

from repro.export import partition_table_text
from repro.nway import nway_match
from repro.synthetic import extended_study


def main() -> None:
    print("generating the five-schema family (SA plus SC, SD, SE, SF)...")
    study = extended_study(seed=2009)
    schemata = {name: generated.schema for name, generated in study.family.items()}
    for name, schema in schemata.items():
        print(f"  {name}: {len(schema)} elements, {len(schema.roots())} concepts "
              f"({schema.kind})")
    print()

    print("running the 10 pairwise matches and clustering correspondences...")
    vocabulary, partition = nway_match(schemata)
    print(f"  comprehensive vocabulary: {len(vocabulary):,} entries")
    print(f"  partition cells: {partition.n_cells} (2^5 - 1)\n")

    print(partition_table_text(partition))
    print()

    shared_all = partition.cell("SA", "SC", "SD", "SE", "SF")
    print(f"terms shared by ALL five schemata ({shared_all.cardinality}):")
    for entry in shared_all.entries[:10]:
        print(f"  {entry.label}  -- used by {sorted(entry.signature)}")
    print()

    core = partition.cell("SC", "SD", "SE", "SF")
    print(f"the four new systems' private core, absent from SA "
          f"({core.cardinality} concepts):")
    for entry in core.entries[:6]:
        if entry.n_elements > 4:  # show the container-level concepts
            print(f"  {entry.label}")
    print()

    unique_sa = partition.cell("SA")
    print(f"knowledge from UNMATCHED elements (Lesson #3): "
          f"{unique_sa.cardinality:,} terms are unique to SA -- "
          f"anything SA retires is lost to the community.")


if __name__ == "__main__":
    main()
