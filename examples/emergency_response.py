"""Emergency response: distill a minimal mediated schema at the table.

Run:  python examples/emergency_response.py

The section-2 scenario: "in an emergency response scenario, many new data
sharing partners (e.g., state and federal agencies, non-profits,
corporations) may suddenly be thrust together ... to throw their data
models into a giant beaker and to distill out a minimal mediated schema."

Three agencies bring their own models of the same crisis; the N-way match
plus :func:`distill_mediated_schema` produces the exchange schema they can
agree on *while still at the negotiating table*.
"""

from repro import HarmonyMatchEngine, StableMarriageSelection, parse_ddl, parse_xsd
from repro.matchers import (
    DEFAULT_VOTER_WEIGHTS,
    DataTypeVoter,
    DocumentationVoter,
    NameTokenVoter,
    NgramVoter,
    PathVoter,
    StructuralVoter,
    ThesaurusVoter,
)
from repro.nway import distill_mediated_schema, nway_match
from repro.text import SynonymLexicon
from repro.viz import render_tree
from repro.voting import ConvictionLinearMerger

STATE_AGENCY_DDL = """
CREATE TABLE SHELTER (
    SHELTER_ID NUMBER(10) PRIMARY KEY, -- unique shelter identifier
    SHELTER_NM VARCHAR2(80),           -- name of the shelter
    CAPACITY NUMBER(6),                -- capacity of the shelter in persons
    ADDR_TXT VARCHAR2(200),            -- street address of the shelter
    STATUS_CD VARCHAR2(8)              -- operating status of the shelter
);
CREATE TABLE EVACUEE (
    EVACUEE_ID NUMBER(10) PRIMARY KEY, -- unique evacuee identifier
    LAST_NM VARCHAR2(40),              -- family name of the evacuee
    FIRST_NM VARCHAR2(40),             -- given name of the evacuee
    MEDICAL_NEEDS VARCHAR2(200),       -- medical needs of the evacuee
    SHELTER_ID NUMBER(10)              -- shelter where the evacuee stays
);
"""

FEDERAL_AGENCY_XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Facility">
    <xs:sequence>
      <xs:element name="FacilityIdentifier" type="xs:ID">
        <xs:annotation><xs:documentation>unique identifier of the facility</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="FacilityName" type="xs:string">
        <xs:annotation><xs:documentation>name of the shelter facility</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="Capacity" type="xs:integer">
        <xs:annotation><xs:documentation>capacity of the facility in persons</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="OperatingStatus" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="DisplacedPerson">
    <xs:sequence>
      <xs:element name="FamilyName" type="xs:string">
        <xs:annotation><xs:documentation>family name of the displaced person</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="GivenName" type="xs:string">
        <xs:annotation><xs:documentation>given name of the displaced person</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="MedicalCondition" type="xs:string">
        <xs:annotation><xs:documentation>medical needs of the displaced person</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="AssignedFacility" type="xs:ID"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>
"""

NONPROFIT_DDL = """
CREATE TABLE relief_site (
    site_id INT PRIMARY KEY,      -- unique relief site identifier
    site_name VARCHAR(80),        -- name of the relief site
    beds_total INT,               -- capacity of the site in beds
    street VARCHAR(200)           -- street address of the relief site
);
CREATE TABLE volunteer (
    volunteer_id INT PRIMARY KEY, -- unique volunteer identifier
    last_name VARCHAR(40),        -- family name of the volunteer
    first_name VARCHAR(40),       -- given name of the volunteer
    skill VARCHAR(80)             -- primary skill of the volunteer
);
"""


def main() -> None:
    schemata = {
        "StateAgency": parse_ddl(STATE_AGENCY_DDL, name="StateAgency"),
        "FederalAgency": parse_xsd(FEDERAL_AGENCY_XSD, name="FederalAgency"),
        "NonProfit": parse_ddl(NONPROFIT_DDL, name="NonProfit"),
    }
    for name, schema in schemata.items():
        print(f"{name}: {len(schema)} elements "
              f"({', '.join(root.name for root in schema.roots())})")
    print()

    # The agencies' container names share no vocabulary (EVACUEE vs
    # DisplacedPerson vs volunteer), so the first thing the negotiating
    # table produces is a few lines of domain thesaurus.  That is a feature
    # of the workbench, not a workaround: lexicons are extensible inputs.
    lexicon = SynonymLexicon.default().extend(
        [
            ("shelter", "facility", "site"),
            ("evacuee", "displaced", "refugee"),
            ("bed", "capacity"),
        ]
    )
    engine = HarmonyMatchEngine(
        voters=[
            NameTokenVoter(),
            NgramVoter(),
            ThesaurusVoter(lexicon=lexicon),
            DocumentationVoter(),
            DataTypeVoter(),
            PathVoter(),
            StructuralVoter(lexicon=lexicon),
        ],
        merger=ConvictionLinearMerger(voter_weights=DEFAULT_VOTER_WEIGHTS),
    )

    print("matching all pairs and building the comprehensive vocabulary...")
    # Small schemata carry little evidence mass, so correspondences score
    # low on the conviction-linear scale; gate the 1:1 selection at 0.02.
    vocabulary, partition = nway_match(
        schemata,
        engine=engine,
        selection=StableMarriageSelection(threshold=0.02),
    )
    print(f"  {len(vocabulary)} vocabulary entries across "
          f"{partition.n_cells} partition cells\n")

    for cell in partition.nonempty_cells():
        if len(cell.signature) >= 2:
            labels = ", ".join(sorted(entry.label for entry in cell.entries))
            print(f"  shared by {cell.label()}: {labels}")
    print()

    mediated = distill_mediated_schema(
        vocabulary, schemata, min_support=2, name="CrisisExchange"
    )
    print("the distilled minimal mediated schema:")
    print(render_tree(mediated))
    print()
    print("each agency now maps to CrisisExchange instead of to every peer;")
    print("concepts no partner shares (volunteers, evacuee-site links) stay")
    print("out of scope -- the 'minimal' in minimal mediated schema.")


if __name__ == "__main__":
    main()
