"""An enterprise metadata registry: search, clustering, COIs, provenance.

Run:  python examples/enterprise_repository.py

Walks the section-2 registry scenarios on a planted-structure corpus:

* register a 24-schema corpus in the metadata repository (SQLite-capable);
* schema-as-query search ("use one's target schema as the query term");
* cluster the registry and propose communities of interest;
* store validated matches with provenance and query them under different
  trust policies (search vs business intelligence);
* reuse: compose stored matches transitively through a pivot schema;
* corpus-match: the repository-scale top-k MATCH through the service,
  with prior assertions boosting the validated pairs (docs/repository.md).
"""

from repro.cluster import TermVectorDistance, propose_cois
from repro.match import HarmonyMatchEngine, StableMarriageSelection
from repro.repository import AssertionMethod, MetadataRepository, TrustPolicy
from repro.search import KeywordQuery, SchemaIndex, SchemaQuery, SchemaSearchEngine
from repro.service import CorpusMatchRequest, MatchService
from repro.synthetic import generate_clustered_corpus


def main() -> None:
    print("generating a 4-domain x 6-schema registry corpus...")
    corpus = generate_clustered_corpus(n_domains=4, schemata_per_domain=6, seed=2009)
    schemata = {g.schema.name: g.schema for g in corpus.schemata}

    repository = MetadataRepository()  # pass a path for SQLite persistence
    for schema in schemata.values():
        repository.register(schema)
    print(f"  registered {len(repository)} schemata\n")

    # ------------------------------------------------------------------
    print("=== schema search ===")
    index = SchemaIndex()
    for schema in schemata.values():
        index.add(schema)
    searcher = SchemaSearchEngine(index)

    probe_name = corpus.names[0]
    hits = searcher.search(SchemaQuery(schemata[probe_name]), limit=5,
                           exclude=probe_name)
    print(f"schemata most related to {probe_name} "
          f"(planted domain {corpus.domain_of[probe_name]}):")
    for hit in hits:
        print(f"  {hit.schema_name:<8} score {hit.score:7.1f} "
              f"(domain {corpus.domain_of[hit.schema_name]})")

    fragments = searcher.search_fragments(KeywordQuery("medical blood test"), limit=3)
    print("\nfragment search for 'medical blood test':")
    for hit in fragments:
        print(f"  {hit.schema_name}/{hit.root_name} (score {hit.score:.1f})")

    # ------------------------------------------------------------------
    print("\n=== clustering and COI proposal ===")
    distances = TermVectorDistance().matrix(schemata)
    for proposal in propose_cois(distances, n_clusters=4, min_cohesion=0.0):
        print(f"  {proposal.describe()}")

    # ------------------------------------------------------------------
    print("\n=== match knowledge with provenance ===")
    engine = HarmonyMatchEngine()
    left, right = corpus.names[0], corpus.names[1]
    result = engine.match(schemata[left], schemata[right])
    correspondences = result.candidates(StableMarriageSelection(threshold=0.13))
    repository.store_matches(left, right, correspondences, asserted_by="engine")
    # An engineer validates the three strongest.
    for correspondence in correspondences[:3]:
        repository.store_match(
            left, right, correspondence.accept(by="alice"),
            asserted_by="alice", method=AssertionMethod.HUMAN_VALIDATED,
        )
    total = len(repository.matches(source_schema=left, target_schema=right))
    for_search = len(repository.matches(policy=TrustPolicy.for_search()))
    for_bi = len(repository.matches(policy=TrustPolicy.for_business_intelligence()))
    print(f"  stored {total} assertions {left} -> {right}")
    print(f"  trusted for search: {for_search}; "
          f"trusted for business intelligence: {for_bi}")
    print("  ('a match that supports search may not have sufficient precision")
    print("    to support a business intelligence application')")

    # ------------------------------------------------------------------
    print("\n=== transitive reuse ===")
    from repro.repository import compose_matches

    pivot, third = right, corpus.names[2]
    pivot_result = engine.match(schemata[pivot], schemata[third])
    repository.store_matches(
        pivot, third,
        pivot_result.candidates(StableMarriageSelection(threshold=0.13)),
        asserted_by="engine",
    )
    composed = compose_matches(repository, left, third)
    print(f"  composed {len(composed)} candidate matches {left} -> {third} "
          f"through pivot {pivot} -- a head start for the next match effort")
    for candidate in composed[:5]:
        print(f"    {candidate.source_id} <-> {candidate.target_id} "
              f"(score {candidate.score:.2f})")

    # ------------------------------------------------------------------
    print("\n=== corpus-match: the repository-scale MATCH ===")
    service = MatchService(repository=repository)
    response = service.corpus_match(CorpusMatchRequest(source=left, top_k=3))
    print(f"  {left} vs the registry: {response.n_registered} registered, "
          f"{response.n_retrieved} retrieved after index pruning, "
          f"top {len(response)} in {response.elapsed_seconds:.2f}s")
    for rank, candidate in enumerate(response.candidates, start=1):
        print(f"  {rank}. {candidate.target_name} "
              f"(domain {corpus.domain_of[candidate.target_name]}): "
              f"match score {candidate.match_score:.2f}, "
              f"{len(candidate)} correspondences, "
              f"{candidate.n_boosted} boosted by stored assertions")
    boosted = [c for c in response.best.correspondences if "reuse-boosted" in c.note]
    if boosted:
        strongest = boosted[0]
        print(f"  e.g. {strongest.source_id} <-> {strongest.target_id} "
              f"({strongest.score:+.2f}): {strongest.note}")


if __name__ == "__main__":
    main()
