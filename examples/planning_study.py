"""The section-3 planning study, end to end.

Run:  python examples/planning_study.py [output_dir]

Replays the paper's customer engagement on the synthetic stand-ins:

1. generate SA (1378-element relational) and SB (784-element XSD);
2. run the fully automated match (paper: 10.2 s for ~10^6 pairs);
3. SUMMARIZE both schemata (140 + 51 concepts);
4. run the concept-at-a-time validation session with a fallible engineer;
5. lift concept-level matches (paper: 24) and compute the overlap
   partition (paper: 34% of SB matched, 517 elements did not);
6. price the effort (paper: 2 engineers x 3 days) and the subsume-vs-bridge
   decision;
7. export the outer-join spreadsheet the customer received.
"""

import sys

from repro.export import Workbook, concept_match_text, overlap_report_text
from repro.match import HarmonyMatchEngine
from repro.metrics import prf_of_pairs, workflow_overlap
from repro.planning import DecisionModel
from repro.synthetic import case_study
from repro.workflow import EffortModel, MatchingSession, NoisyOracle, calibrate


def main(output_prefix: str = "planning_study") -> None:
    print("generating the case-study schemata (paper counts asserted)...")
    pair = case_study(seed=2009)
    source, target = pair.source.schema, pair.target.schema
    print(f"  SA: {len(source)} elements, {len(source.roots())} tables")
    print(f"  SB: {len(target)} elements, {len(target.roots())} types\n")

    engine = HarmonyMatchEngine()
    result = engine.match(source, target)
    print(f"fully automated match: {result.n_pairs:,} pairs "
          f"in {result.elapsed_seconds:.2f} s (paper: 10.2 s)\n")

    source_summary = pair.source.truth_summary()
    target_summary = pair.target.truth_summary()
    print(f"SUMMARIZE: {len(source_summary)} SA concepts, "
          f"{len(target_summary)} SB concepts (paper: 140 / 51)\n")

    print("running the concept-at-a-time validation session...")
    session = MatchingSession(
        source, target, source_summary,
        oracle=NoisyOracle(pair.truth_pairs, seed=2009),
        engine=engine,
    )
    report = session.run_all(target_summary=target_summary)
    quality = prf_of_pairs(session.accepted_pairs(), pair.truth_pairs)
    print(f"  {len(report.runs)} increments, "
          f"{report.total_candidates_inspected:,} candidates inspected, "
          f"{report.total_accepted:,} accepted "
          f"(P={quality.precision:.2f} R={quality.recall:.2f})\n")

    overlap = workflow_overlap(result, source_summary, target_summary)
    print(overlap_report_text(overlap))
    print()
    print(f"concept-level matches ({len(overlap.concept_matches)}; paper: 24):")
    print(concept_match_text(overlap.concept_matches, limit=8))
    print()

    model = calibrate(EffortModel(), report,
                      len(source_summary) + len(target_summary))
    estimate = model.session_estimate(
        report, len(source_summary) + len(target_summary)
    )
    print(f"effort: {estimate.person_days:.1f} person-days "
          f"= {estimate.wall_days(2):.1f} days for 2 engineers "
          f"(paper: 3 days x 2 engineers)\n")

    decision = DecisionModel().evaluate(overlap)
    print(f"decision: {decision.describe()}")
    print("  (the paper's reading: 'subsuming Sys(SB) would be a "
          "challenging undertaking')\n")

    workbook = Workbook.build(
        source, target, source_summary, target_summary,
        report.validated, overlap.concept_matches,
    )
    concepts_path, elements_path = workbook.write(output_prefix)
    print(f"spreadsheet delivered: {concepts_path} "
          f"({len(workbook.concepts)} concept rows; paper: 167), "
          f"{elements_path} ({len(workbook.elements)} element rows)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "planning_study")
