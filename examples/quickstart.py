"""Quickstart: match a relational schema against an XML schema.

Run:  python examples/quickstart.py

This is the smallest end-to-end use of the library: parse two schemata from
their native formats, run one MATCH through the service facade, and look at
candidate correspondences, a per-voter explanation (via the low-level
engine), and the overlap partition.
"""

from repro import MatchOptions, MatchService, parse_ddl, parse_xsd
from repro.export import overlap_report_text
from repro.metrics import matrix_overlap

DDL = """
CREATE TABLE ALL_EVENT_VITALS (
    EVENT_ID NUMBER(10) PRIMARY KEY,  -- unique identifier for the event
    DATE_BEGIN_156 DATE,              -- date the event began
    DATE_END_157 DATE,                -- date the event ended
    EVENT_TYPE_CD VARCHAR2(8)         -- category code of the event
);
CREATE TABLE PERSON_MASTER (
    PERSON_ID NUMBER(10) PRIMARY KEY, -- unique person identifier
    LAST_NM VARCHAR2(40),             -- family name of the person
    BIRTH_DT DATE,                    -- date of birth of the person
    BLOOD_TYPE_CD CHAR(3)             -- blood type of the person
);
"""

XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Event">
    <xs:sequence>
      <xs:element name="EventIdentifier" type="xs:long">
        <xs:annotation><xs:documentation>unique identifier of this event</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="DATETIME_FIRST_INFO" type="xs:dateTime">
        <xs:annotation><xs:documentation>datetime the event started</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="Category" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="Individual">
    <xs:sequence>
      <xs:element name="FamilyName" type="xs:string">
        <xs:annotation><xs:documentation>family name of the individual</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="DateOfBirth" type="xs:date"/>
      <xs:element name="BloodGroup" type="xs:string">
        <xs:annotation><xs:documentation>ABO blood group of the individual</xs:documentation></xs:annotation>
      </xs:element>
    </xs:sequence>
  </xs:complexType>
</xs:schema>
"""


def main() -> None:
    source = parse_ddl(DDL, name="LegacyDB")
    target = parse_xsd(XSD, name="ExchangeXML")
    print(f"parsed {source.name}: {len(source)} elements; "
          f"{target.name}: {len(target)} elements\n")

    # Small demo schemata carry little evidence, so scores sit low on
    # the conviction-linear scale; 0.03 is a sensible floor here.
    service = MatchService()
    response = service.match_pair(
        source, target, options=MatchOptions(threshold=0.03)
    )
    print(f"matched {response.n_pairs} candidate pairs "
          f"in {response.elapsed_seconds * 1000:.0f} ms "
          f"[route={response.route}]\n")

    print("candidate correspondences (score >= 0.03):")
    for candidate in response.correspondences:
        print(f"  {candidate.score:+.3f}  "
              f"{source.path(candidate.source_id):<40} <-> "
              f"{target.path(candidate.target_id)}")

    # The low-level engine stays available for per-voter explanations --
    # service.engine() shares the service's profile cache.
    print("\nwhy does BIRTH_DT match DateOfBirth?")
    engine = service.engine()
    breakdown = engine.explain(
        source, target, "person_master.birth_dt", "individual.dateofbirth"
    )
    for voter, parts in breakdown.items():
        print(f"  {voter:<15} confidence {parts['confidence']:+.3f}")

    print()
    print(overlap_report_text(matrix_overlap(response.result, threshold=0.03),
                              source.name, target.name))


if __name__ == "__main__":
    main()
