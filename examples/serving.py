"""Match-as-a-service: serve a repository, query it, watch the cache work.

Run:  python examples/serving.py

The paper frames enterprise matching as shared infrastructure — one
repository, many users, continuous traffic. This walkthrough runs the
whole loop in one process:

* register a corpus in a metadata repository and serve it with
  `repro.server.MatchServer` (the same tier `repro serve` runs);
* query `/match` and `/corpus-match` through the typed client — the
  request objects themselves are the wire protocol;
* repeat a query and watch it come back from the generation-aware
  response cache (`X-Harmonia-Cache: hit`);
* store a new human-validated match set and watch the affected cache
  entries invalidate: the re-served answer folds the new knowledge in.
"""

import threading

from repro.match import Correspondence
from repro.repository import AssertionMethod, MetadataRepository
from repro.server import MatchServer, MatchServiceClient
from repro.service import CorpusMatchRequest, MatchRequest, MatchService
from repro.synthetic import generate_clustered_corpus


def main() -> None:
    print("generating and registering a 2-domain x 3-schema corpus...")
    corpus = generate_clustered_corpus(n_domains=2, schemata_per_domain=3, seed=2009)
    repository = MetadataRepository()  # pass a path for SQLite persistence
    for generated in corpus.schemata:
        repository.register(generated.schema)

    service = MatchService(repository=repository)
    server = MatchServer(service, port=0)  # ephemeral port for the example
    worker = threading.Thread(target=server.serve_forever, daemon=True)
    worker.start()
    print(f"  serving {len(repository)} schemata on {server.url}\n")

    try:
        client = MatchServiceClient(server.url)
        health = client.health()
        print("=== /healthz ===")
        print(f"  status={health['status']} version={health['version']} "
              f"registered={health['repository']['n_registered']}\n")

        print("=== POST /match (typed request over the wire) ===")
        request = MatchRequest(source="D0S0", target="D0S1")
        response = client.match(request)
        print(f"  {response.source_name} x {response.target_name}: "
              f"{len(response)} correspondences "
              f"[cache: {client.last_cache_status}]")
        client.match(request)
        print(f"  same request again                 [cache: {client.last_cache_status}]\n")

        print("=== POST /corpus-match (top-k against everything registered) ===")
        corpus_request = CorpusMatchRequest(source="D0S0", top_k=3)
        ranked = client.corpus_match(corpus_request)
        for rank, candidate in enumerate(ranked.candidates, start=1):
            print(f"  {rank}. {candidate.target_name}  "
                  f"match={candidate.match_score:.2f}  "
                  f"boosted={candidate.n_boosted}")
        client.corpus_match(corpus_request)
        print(f"  repeated                           [cache: {client.last_cache_status}]\n")

        print("=== a write invalidates exactly what it could have changed ===")
        best = ranked.candidates[0]
        repository.store_matches(
            "D0S0",
            best.target_name,
            [Correspondence(*best.correspondences[0].pair, score=1.0)],
            asserted_by="integration-engineer",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        reranked = client.corpus_match(corpus_request)
        print(f"  after store_matches                [cache: {client.last_cache_status}]")
        print(f"  top candidate now boosts {reranked.candidates[0].n_boosted} "
              f"pair(s) from the validation")
        stats = server.cache.stats
        print(f"  cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.invalidations} invalidated by writes")
    finally:
        server.shutdown()
        worker.join()
        server.server_close()
    print("\nserver drained and closed cleanly")


if __name__ == "__main__":
    main()
