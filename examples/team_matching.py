"""Integration-team support: splitting a large match across engineers.

Run:  python examples/team_matching.py

The paper's section-5 agenda: "how can we divide very large matching
workflows into modular task queues appropriate to each team member ... to
support a team-based matching effort?"

This example plans the case-study workload for teams of one to four
engineers, shows the per-member queues, then *executes* two members' queues
as independent sessions and merges their validated correspondences -- the
mechanics behind the paper's "three days of effort, by two human
integration engineers."
"""

from repro.match import HarmonyMatchEngine
from repro.metrics import prf_of_pairs
from repro.synthetic import case_study
from repro.workflow import (
    EffortModel,
    GroundTruthOracle,
    MatchingSession,
    plan_team,
)


def main() -> None:
    pair = case_study(seed=2009)
    source, target = pair.source.schema, pair.target.schema
    summary = pair.source.truth_summary()
    model = EffortModel()

    print("planning the 140-concept workload for different team sizes:\n")
    print("  team size   makespan (days)   balance")
    for size in (1, 2, 3, 4):
        members = [f"eng{i}" for i in range(size)]
        plan = plan_team(summary, len(target), members, model=model)
        print(f"  {size:>9}   {plan.makespan_days:>15.1f}   {plan.balance:>7.2f}")
    print()

    members = ["ann", "bob"]
    plan = plan_team(summary, len(target), members, model=model)
    for member in members:
        queue = plan.queue_of(member)
        top = ", ".join(task.concept_label for task in queue.tasks[:4])
        print(f"{member}'s queue: {len(queue.tasks)} concepts, "
              f"{queue.total_pairs:,} estimated pairs (first: {top}, ...)")
    print()

    print("executing both queues as independent validation sessions...")
    engine = HarmonyMatchEngine()
    oracle = GroundTruthOracle(pair.truth_pairs)
    accepted: set[tuple[str, str]] = set()
    for member in members:
        session = MatchingSession(
            source, target, summary, oracle=oracle, engine=engine,
            reviewer=member,
        )
        for task in plan.queue_of(member).tasks:
            task.start()
            session.run_concept(task.concept_id)
            task.finish()
        accepted |= session.accepted_pairs()
        report = session.report
        print(f"  {member}: {len(report.runs)} increments, "
              f"{report.total_candidates_inspected:,} candidates inspected, "
              f"{report.total_accepted:,} accepted")

    quality = prf_of_pairs(accepted, pair.truth_pairs)
    print(f"\nmerged team output: {len(accepted):,} validated correspondences "
          f"(P={quality.precision:.2f}, R={quality.recall:.2f})")
    print("every concept was owned by exactly one engineer, so the merge is")
    print("conflict-free -- the modular task queues the paper asks for.")


if __name__ == "__main__":
    main()
