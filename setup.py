"""Legacy setup shim.

The pinned environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (configured
globally in pip.conf) fall back to ``setup.py develop``, which needs no
wheel support.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
