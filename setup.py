"""Legacy setup shim.

The pinned environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (configured
globally in pip.conf) fall back to ``setup.py develop``, which needs no
wheel support.

The package version is single-sourced from ``repro.__version__`` (read
textually, so building never imports the package or its dependencies);
the same string is what ``repro --version`` prints and what the serving
tier reports on ``/healthz``.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    init_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "src", "repro", "__init__.py"
    )
    with open(init_path, encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"$', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError(f"__version__ not found in {init_path}")
    return match.group(1)


setup(
    name="repro",
    version=_version(),
    package_dir={"": "src"},
    packages=find_packages("src"),
)
