"""Harmonia: an enterprise-scale schema matching workbench.

A faithful, from-scratch reproduction of the system behind *"The Role of
Schema Matching in Large Enterprises"* (Smith, Mork, Seligman, Rosenthal,
Morse, Wolf, Allen & Li -- CIDR Perspectives 2009): a Harmony-class match
engine (evidence-aware voters + conviction-weighted merging + link/node
filters), the SUMMARIZE operator and concept-at-a-time workflow, N-way
comprehensive vocabularies with 2^N-1 partitions, overlap-based schema
clustering, registry search, an enterprise metadata repository with match
provenance, effort/decision models for planners, and the spreadsheet /
match-centric deliverables -- plus a synthetic military-schema workload
generator reproducing the paper's section-3 case study exactly.

Quickstart::

    from repro import quick_match, parse_ddl, parse_xsd

    response = quick_match(parse_ddl(open("a.sql").read()),
                           parse_xsd(open("b.xsd").read()))
    for c in response.correspondences:
        print(c.source_id, "<->", c.target_id, c.score)

All matching flows through one :class:`~repro.service.MatchService` facade
(typed requests, auto-routed exact/batch execution, JSON-serialisable
response envelopes); ``HarmonyMatchEngine`` remains importable as the
low-level exact engine.  The facade itself can be *served*:
:mod:`repro.server` (and the ``repro serve`` CLI) runs a concurrent HTTP
tier with generation-aware response caching over one shared service.
See ``examples/`` for the full case-study walkthroughs.
"""

from repro.batch import BatchMatchRunner, BlockingPolicy
from repro.corpus import CorpusIndex
from repro.match import (
    Correspondence,
    CorrespondenceSet,
    HarmonyMatchEngine,
    HungarianSelection,
    IncrementalMatcher,
    MatchMatrix,
    MatchResult,
    MatchStatus,
    SemanticAnnotation,
    StableMarriageSelection,
    ThresholdSelection,
    TopKSelection,
)
from repro.schema import (
    DataType,
    ElementKind,
    Schema,
    SchemaElement,
    load_ddl_file,
    load_schema,
    load_xsd_file,
    parse_ddl,
    parse_xsd,
)
from repro.network import MappingGraph
from repro.repository import MetadataRepository, ReusePolicy
from repro.service import (
    CorpusCandidate,
    CorpusMatchRequest,
    CorpusMatchResponse,
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MatchService,
    NetworkMatchRequest,
    NetworkMatchResponse,
)
from repro.summarize import Summary, match_concepts, summarize_by_roots

__version__ = "1.1.0"

_default_service: MatchService | None = None


def default_service() -> MatchService:
    """The process-wide shared :class:`MatchService` (lazily created).

    Library users who call :func:`quick_match` repeatedly hit the same
    profile and feature caches this way; construct your own service for
    isolated configuration or repository binding.  The caches hold strong
    references to every schema matched -- long-lived processes cycling
    through unrelated corpora should call
    ``default_service().clear_caches()`` between them.
    """
    global _default_service
    if _default_service is None:
        _default_service = MatchService()
    return _default_service


def quick_match(source, target, threshold: float = 0.15) -> MatchResponse:
    """One-call MATCH through the shared service (auto-routed, cached).

    Returns the :class:`MatchResponse` envelope; its ``correspondences``
    are the pairs at or above ``threshold``.
    """
    return default_service().match_pair(
        source, target, options=MatchOptions(threshold=threshold)
    )


__all__ = [
    "BatchMatchRunner",
    "BlockingPolicy",
    "Correspondence",
    "CorrespondenceSet",
    "CorpusCandidate",
    "CorpusIndex",
    "CorpusMatchRequest",
    "CorpusMatchResponse",
    "DataType",
    "ElementKind",
    "HarmonyMatchEngine",
    "HungarianSelection",
    "IncrementalMatcher",
    "MappingGraph",
    "MatchMatrix",
    "MatchOptions",
    "MatchRequest",
    "MatchResponse",
    "MatchResult",
    "MatchService",
    "MatchStatus",
    "MetadataRepository",
    "NetworkMatchRequest",
    "NetworkMatchResponse",
    "ReusePolicy",
    "Schema",
    "SchemaElement",
    "SemanticAnnotation",
    "StableMarriageSelection",
    "Summary",
    "ThresholdSelection",
    "TopKSelection",
    "__version__",
    "default_service",
    "load_ddl_file",
    "load_schema",
    "load_xsd_file",
    "match_concepts",
    "parse_ddl",
    "parse_xsd",
    "quick_match",
    "summarize_by_roots",
]
