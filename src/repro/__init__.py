"""Harmonia: an enterprise-scale schema matching workbench.

A faithful, from-scratch reproduction of the system behind *"The Role of
Schema Matching in Large Enterprises"* (Smith, Mork, Seligman, Rosenthal,
Morse, Wolf, Allen & Li -- CIDR Perspectives 2009): a Harmony-class match
engine (evidence-aware voters + conviction-weighted merging + link/node
filters), the SUMMARIZE operator and concept-at-a-time workflow, N-way
comprehensive vocabularies with 2^N-1 partitions, overlap-based schema
clustering, registry search, an enterprise metadata repository with match
provenance, effort/decision models for planners, and the spreadsheet /
match-centric deliverables -- plus a synthetic military-schema workload
generator reproducing the paper's section-3 case study exactly.

Quickstart::

    from repro import HarmonyMatchEngine, parse_ddl, parse_xsd

    engine = HarmonyMatchEngine()
    result = engine.match(parse_ddl(open("a.sql").read()),
                          parse_xsd(open("b.xsd").read()))
    for c in result.candidates():
        print(c.source_id, "<->", c.target_id, c.score)

See ``examples/`` for the full case-study walkthroughs.
"""

from repro.batch import BatchMatchRunner, BlockingPolicy
from repro.match import (
    Correspondence,
    CorrespondenceSet,
    HarmonyMatchEngine,
    HungarianSelection,
    IncrementalMatcher,
    MatchMatrix,
    MatchResult,
    MatchStatus,
    SemanticAnnotation,
    StableMarriageSelection,
    ThresholdSelection,
    TopKSelection,
)
from repro.schema import (
    DataType,
    ElementKind,
    Schema,
    SchemaElement,
    load_ddl_file,
    load_schema,
    load_xsd_file,
    parse_ddl,
    parse_xsd,
)
from repro.summarize import Summary, match_concepts, summarize_by_roots

__version__ = "1.0.0"

__all__ = [
    "BatchMatchRunner",
    "BlockingPolicy",
    "Correspondence",
    "CorrespondenceSet",
    "DataType",
    "ElementKind",
    "HarmonyMatchEngine",
    "HungarianSelection",
    "IncrementalMatcher",
    "MatchMatrix",
    "MatchResult",
    "MatchStatus",
    "Schema",
    "SchemaElement",
    "SemanticAnnotation",
    "StableMarriageSelection",
    "Summary",
    "ThresholdSelection",
    "TopKSelection",
    "__version__",
    "load_ddl_file",
    "load_schema",
    "load_xsd_file",
    "match_concepts",
    "parse_ddl",
    "parse_xsd",
    "summarize_by_roots",
]
