"""Baseline matchers: naive, COMA-lite, Cupid-lite, Similarity-Flooding-lite."""

from repro.baselines.engines import (
    baseline_engines,
    coma_lite_engine,
    cupid_lite_engine,
    harmony_engine,
    naive_engine,
)
from repro.baselines.flooding import SimilarityFloodingMatcher

__all__ = [
    "SimilarityFloodingMatcher",
    "baseline_engines",
    "coma_lite_engine",
    "cupid_lite_engine",
    "harmony_engine",
    "naive_engine",
]
