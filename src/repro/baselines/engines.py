"""Baseline matcher configurations: the comparators for E11/E12.

The paper positions Harmony against the conventional architecture of COMA
[7], the learning ensemble of [8] and Cupid [9].  We reproduce the *shape*
of those comparators as engine configurations over the same voter substrate
(plus a real similarity-flooding implementation in
:mod:`repro.baselines.flooding`):

* **naive** -- exact name equality only; the spreadsheet-jockey baseline.
* **coma_lite** -- COMA's composite approach: several independent matchers
  whose similarities are *averaged* (no evidence weighting).
* **cupid_lite** -- Cupid's linguistic + structural split with a fixed
  50/50 linear combination.
* **harmony** -- the full ensemble with the conviction-linear merger and
  calibrated voter weights (this library's default engine).

Keeping every baseline on the same voter substrate isolates exactly the
architectural difference the paper claims matters: how evidence is weighed,
not which string metrics are available.
"""

from __future__ import annotations

from repro.match.engine import HarmonyMatchEngine
from repro.matchers import (
    DataTypeVoter,
    DocumentationVoter,
    ExactNameVoter,
    NameTokenVoter,
    NgramVoter,
    PathVoter,
    StructuralVoter,
    ThesaurusVoter,
    default_voters,
)
from repro.voting.merger import AverageMerger, WeightedLinearMerger

__all__ = [
    "naive_engine",
    "coma_lite_engine",
    "cupid_lite_engine",
    "harmony_engine",
    "baseline_engines",
    "baseline_options",
]


def naive_engine() -> HarmonyMatchEngine:
    """Exact (case-insensitive) name equality only."""
    return HarmonyMatchEngine(voters=[ExactNameVoter()], merger=AverageMerger())


def coma_lite_engine() -> HarmonyMatchEngine:
    """COMA-style composite: independent matchers, plain average aggregation."""
    return HarmonyMatchEngine(
        voters=[
            NameTokenVoter(),
            NgramVoter(),
            DocumentationVoter(),
            DataTypeVoter(),
            PathVoter(),
        ],
        merger=AverageMerger(),
    )


def cupid_lite_engine() -> HarmonyMatchEngine:
    """Cupid-style: linguistic similarity + structural similarity, 50/50."""
    return HarmonyMatchEngine(
        voters=[
            NameTokenVoter(),
            ThesaurusVoter(),
            StructuralVoter(),
        ],
        merger=WeightedLinearMerger([0.25, 0.25, 0.5]),
    )


def harmony_engine() -> HarmonyMatchEngine:
    """The full Harmony-style configuration (library default)."""
    return HarmonyMatchEngine()


def baseline_engines() -> dict[str, HarmonyMatchEngine]:
    """All engine-shaped baselines, keyed for bench tables."""
    return {
        "naive": naive_engine(),
        "coma_lite": coma_lite_engine(),
        "cupid_lite": cupid_lite_engine(),
        "harmony": harmony_engine(),
    }


def baseline_options() -> dict:
    """The same baselines as declarative :class:`~repro.service.MatchOptions`.

    Every comparator is expressible as service configuration, so an E11/E12
    sweep can run through one :class:`~repro.service.MatchService` (shared
    feature cache, routable, serialisable provenance) instead of four ad-hoc
    engines.  Keys match :func:`baseline_engines`.
    """
    from repro.service import MatchOptions

    return {
        "naive": MatchOptions(voters=("exact_name",), merger="average"),
        "coma_lite": MatchOptions(
            voters=("name_token", "name_ngram", "documentation", "datatype", "path"),
            merger="average",
        ),
        "cupid_lite": MatchOptions(
            voters=("name_token", "thesaurus", "structure"),
            merger="weighted_linear",
            merger_weights=(0.25, 0.25, 0.5),
        ),
        "harmony": MatchOptions(),
    }
