"""Similarity Flooding (lite): structural fixpoint propagation baseline.

Melnik et al.'s similarity flooding propagates pair similarity along matched
structural edges until a fixpoint.  This implementation keeps the essential
mechanics on schema trees:

* initial similarity sigma^0 = name-token Jaccard (same substrate as the
  other baselines);
* one propagation step adds, for every pair, a share of its *parent pair's*
  similarity (downward flow) and, for container pairs, the mean of their
  children-pair block (upward flow);
* after each step the matrix is renormalised by its maximum;
* iteration stops at ``n_iterations`` or when the residual drops below
  ``epsilon``.

The result is exposed through the same :class:`~repro.match.engine.MatchResult`
interface as the engines, with scores in [0, 1].
"""

from __future__ import annotations

import time

import numpy as np

from repro.match.engine import MatchResult
from repro.match.matrix import MatchMatrix
from repro.matchers.profile import SchemaProfile, build_profile
from repro.matchers.setsim import jaccard_matrix
from repro.schema.schema import Schema

__all__ = ["SimilarityFloodingMatcher"]


class SimilarityFloodingMatcher:
    """The SF-lite baseline with an engine-compatible ``match`` method."""

    def __init__(
        self,
        n_iterations: int = 8,
        damping: float = 0.6,
        epsilon: float = 1e-4,
    ):
        if n_iterations <= 0:
            raise ValueError(f"n_iterations must be positive, got {n_iterations}")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.n_iterations = n_iterations
        self.damping = damping
        self.epsilon = epsilon

    @staticmethod
    def _padded_parent_gather(
        matrix: np.ndarray,
        source_parents: np.ndarray,
        target_parents: np.ndarray,
    ) -> np.ndarray:
        """matrix[parent(i), parent(j)] with zeros for roots (parent == -1)."""
        padded = np.zeros((matrix.shape[0] + 1, matrix.shape[1] + 1))
        padded[:-1, :-1] = matrix
        # Index -1 selects the zero pad row/column.
        return padded[np.ix_(source_parents, target_parents)]

    def _propagate(
        self,
        sigma: np.ndarray,
        source: SchemaProfile,
        target: SchemaProfile,
    ) -> np.ndarray:
        flow = np.zeros_like(sigma)

        # Downward flow: every pair receives its parent pair's similarity.
        flow += self._padded_parent_gather(
            sigma, source.parent_index, target.parent_index
        )

        # Upward flow: container pairs receive their children block's mean.
        source_containers = [
            position for position, kids in enumerate(source.children_index) if kids
        ]
        target_containers = [
            position for position, kids in enumerate(target.children_index) if kids
        ]
        for row in source_containers:
            source_kids = source.children_index[row]
            for col in target_containers:
                target_kids = target.children_index[col]
                flow[row, col] += sigma[np.ix_(source_kids, target_kids)].mean()

        return flow

    def match(self, source: Schema, target: Schema) -> MatchResult:
        """Run the fixpoint and wrap the final sigma as a MatchResult."""
        started = time.perf_counter()
        source_profile = build_profile(source)
        target_profile = build_profile(target)
        sigma0 = jaccard_matrix(source_profile.name_terms, target_profile.name_terms)
        sigma = sigma0.copy()

        for _ in range(self.n_iterations):
            flow = self._propagate(sigma, source_profile, target_profile)
            updated = sigma0 + self.damping * flow
            maximum = updated.max()
            if maximum > 0:
                updated = updated / maximum
            residual = float(np.abs(updated - sigma).max())
            sigma = updated
            if residual < self.epsilon:
                break

        matrix = MatchMatrix(
            source_profile.element_ids, target_profile.element_ids, sigma
        )
        return MatchResult(
            source,
            target,
            matrix,
            elapsed_seconds=time.perf_counter() - started,
            voter_names=["similarity_flooding"],
        )
