"""Corpus-scale batch matching: blocking + bulk scoring + parallel fan-out.

This package turns the interactive MATCH engine into a corpus-scale one --
the paper's enterprise setting where a repository holds thousands of
schemata and a single MATCH spans 10^4-10^6 candidate pairs (sections 2 and
3.1).  It is a classical two-stage retrieve-then-score architecture:

* :mod:`repro.batch.blocking` retrieves candidate pairs through
  shared-token inverted indexes (cheap, high recall, measured guardrails),
* :class:`repro.batch.runner.BatchMatchRunner` scores only the survivors
  through the voters' bulk ``score_pairs`` API over cached
  :class:`~repro.matchers.profile.FeatureSpace` matrices, fanning pairs out
  over thread/process pools for one-vs-corpus and all-pairs N-way runs.

Candidate scores are *exactly* the engine's scores (the property tests hold
them to 1e-9), so the only approximation is blocking recall -- measured,
not hoped for.  The full dataflow is drawn in ``docs/architecture.md``;
bench E16 (``benchmarks/test_e16_batch_fastpath.py``) demonstrates the
speedup/recall envelope against the exact engine.
"""

from repro.batch.blocking import (
    BlockingPolicy,
    CandidateSet,
    blocking_recall,
    candidate_pairs,
)
from repro.batch.runner import BatchMatchResult, BatchMatchRunner, BatchPairOutcome

__all__ = [
    "BlockingPolicy",
    "CandidateSet",
    "blocking_recall",
    "candidate_pairs",
    "BatchMatchResult",
    "BatchMatchRunner",
    "BatchPairOutcome",
]
