"""Candidate blocking: prune the cross-product before full voting.

The paper's MATCH operations span 10^4-10^6 potential pairs (section 3.1),
but almost all of them are evidence-free: the pair shares no name token, no
ancestor-path token, and no documentation word, so every linguistic voter
scores it at (or near) complete uncertainty.  Blocking exploits that by
retrieving, via shared-token inverted indexes (one sparse product per
blocking key), only the pairs with *some* shared evidence -- the same
cheap-retrieval-then-expensive-scoring architecture that LLM-era matchers
(LLMatch, Schemora) converge on, realised classically.

Keys are feature kinds of :class:`~repro.matchers.profile.FeatureSpace`.
The default policy combines

* ``path``  -- normalised name terms of the element *and its ancestors*,
  which subsumes plain name-token sharing and also captures the structural
  voter's parent-context reinforcement (a leaf pair whose containers agree
  shares the containers' tokens), and
* ``doc``   -- documentation terms, which captures pairs the documentation
  voter scores on prose evidence alone.

Blocking is a *recall* gamble, so it ships with its own guardrail:
:func:`blocking_recall` measures, against an exact match matrix, the
fraction of above-threshold pairs the candidate set retains.  Bench E16 and
the tier-1 regression test hold the default policy to >= 0.98 on the
section-3 case study (measured: 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.match.matrix import MatchMatrix
from repro.matchers.profile import FeatureSpace, SchemaProfile

__all__ = [
    "BlockingPolicy",
    "CandidateSet",
    "candidate_pairs",
    "blocking_recall",
]

#: Feature kinds accepted as blocking keys.
BLOCKING_KINDS = ("path", "doc_sets", "name", "canonical", "gram")

#: Aliases so callers can say "doc" for the documentation key.
_KIND_ALIASES = {"doc": "doc_sets"}


@dataclass(frozen=True)
class BlockingPolicy:
    """Which inverted indexes gate candidacy, and how many shared tokens.

    A pair is a candidate when **any** key yields at least ``min_shared``
    shared tokens (union semantics: keys widen recall, never narrow it).
    """

    keys: tuple[str, ...] = ("path", "doc")
    min_shared: int = 1

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("blocking needs at least one key")
        for key in self.keys:
            kind = _KIND_ALIASES.get(key, key)
            if kind not in BLOCKING_KINDS:
                known = ", ".join(sorted(set(BLOCKING_KINDS) | set(_KIND_ALIASES)))
                raise ValueError(f"unknown blocking key {key!r}; known: {known}")
        if self.min_shared < 1:
            raise ValueError(f"min_shared must be >= 1, got {self.min_shared}")


@dataclass
class CandidateSet:
    """The surviving pairs of one blocked source x target grid."""

    shape: tuple[int, int]
    rows: np.ndarray = field(repr=False)
    cols: np.ndarray = field(repr=False)

    @property
    def n_candidates(self) -> int:
        return self.rows.size

    @property
    def n_pairs(self) -> int:
        """Size of the unblocked cross-product."""
        return self.shape[0] * self.shape[1]

    @property
    def fraction(self) -> float:
        """Survivor fraction of the cross-product (the pruning factor)."""
        if self.n_pairs == 0:
            return 0.0
        return self.n_candidates / self.n_pairs

    def mask(self) -> np.ndarray:
        """Dense boolean candidate mask (for recall measurement / tests)."""
        dense = np.zeros(self.shape, dtype=bool)
        dense[self.rows, self.cols] = True
        return dense

    def restrict_rows(self, keep: np.ndarray) -> "CandidateSet":
        """Drop candidates whose source position is not in ``keep``."""
        keep_mask = np.zeros(self.shape[0], dtype=bool)
        keep_mask[keep] = True
        selected = keep_mask[self.rows]
        return CandidateSet(self.shape, self.rows[selected], self.cols[selected])


def candidate_pairs(
    source: SchemaProfile,
    target: SchemaProfile,
    space: FeatureSpace,
    policy: BlockingPolicy | None = None,
) -> CandidateSet:
    """Retrieve candidate pairs via shared-token inverted indexes.

    One sparse incidence product per blocking key; the union of the
    per-key survivor sets is returned in canonical (row-major) order.
    """
    policy = policy if policy is not None else BlockingPolicy()
    accumulated: sparse.spmatrix | None = None
    for key in policy.keys:
        kind = _KIND_ALIASES.get(key, key)
        # Build both features before materialising either (building the
        # second side may grow the shared vocabulary, and the widths must
        # agree for the product), all under one space lock -- interning by
        # any other thread in between would desynchronise them too.  The
        # product runs on the immutable snapshots, outside the lock.
        with space.lock:
            source_feature = space.feature(source, kind)
            target_feature = space.feature(target, kind)
            source_matrix = source_feature.matrix()
            target_matrix = target_feature.matrix()
        counts = source_matrix @ target_matrix.T
        # Integer counts: "> min_shared - 1" is ">= min_shared" without the
        # inefficient sparse >= comparison.
        survivors = counts > (policy.min_shared - 0.5)
        accumulated = survivors if accumulated is None else accumulated + survivors
    coo = accumulated.tocsr().tocoo()
    return CandidateSet(
        shape=(len(source), len(target)),
        rows=coo.row.astype(np.int64),
        cols=coo.col.astype(np.int64),
    )


def blocking_recall(
    exact: MatchMatrix | np.ndarray,
    candidates: CandidateSet,
    threshold: float = 0.15,
) -> float:
    """Fraction of exact above-threshold pairs retained by the blocking.

    ``exact`` is the match matrix (or raw score array) of an *unblocked*
    engine run over the same grid.  Returns 1.0 when nothing clears the
    threshold (no pair to lose).  This is the measured guardrail the batch
    fast path's correctness argument rests on: candidate scores are exact,
    so end-to-end recall equals blocking recall.
    """
    scores = exact.scores if isinstance(exact, MatchMatrix) else np.asarray(exact)
    if scores.shape != candidates.shape:
        raise ValueError(
            f"exact matrix shape {scores.shape} does not match "
            f"candidate grid {candidates.shape}"
        )
    selected = scores >= threshold
    n_selected = int(selected.sum())
    if n_selected == 0:
        return 1.0
    retained = int(selected[candidates.rows, candidates.cols].sum())
    return retained / n_selected
