"""Corpus-scale batch matching: one schema vs a corpus, or all-pairs N-way.

The interactive engine (:class:`repro.match.engine.HarmonyMatchEngine`)
re-derives voter vocabularies on every MATCH call; fine for one pair, waste
for a repository.  :class:`BatchMatchRunner` is the corpus-scale fast path
(see ``docs/architecture.md``):

1. profiles and :class:`~repro.matchers.profile.FeatureSpace` matrices are
   built **once per schema** and reused across every pair,
2. :func:`~repro.batch.blocking.candidate_pairs` prunes each cross-product
   to the pairs with shared evidence,
3. voters score **only the candidates** through their bulk
   :meth:`~repro.matchers.base.MatchVoter.score_pairs` API (exact same
   confidences as the per-grid path; non-vectorised voters fall back
   transparently),
4. with a cascade attached, candidate scores inside the plan's ambiguity
   band escalate to the Stage-2 oracle (budgeted, most-ambiguous-first;
   see :mod:`repro.cascade` and ``docs/cascade.md``) -- the same staged
   semantics as the exact engine, applied to the candidate list,
5. pairs fan out over a ``concurrent.futures`` thread or process pool.

Non-candidate pairs take ``fill_value`` (default 0.0 -- complete
uncertainty), so selection strategies see them as unmatchable -- and never
escalate: the cascade only judges pairs Stage 1 actually scored.
End-to-end recall versus the exact engine therefore equals the measured
blocking recall (bench E16 holds it >= 0.98 on the case study).
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.batch.blocking import BlockingPolicy, CandidateSet, candidate_pairs
from repro.cascade.executor import CascadeExecutor
from repro.cascade.plan import CascadePlan, CascadeReport
from repro.match.correspondence import Correspondence
from repro.match.engine import MatchResult
from repro.match.matrix import MatchMatrix
from repro.match.selection import SelectionStrategy, ThresholdSelection
from repro.matchers import DEFAULT_VOTER_WEIGHTS, MatchVoter, default_voters
from repro.matchers.profile import FeatureSpace, SchemaProfile, build_profile
from repro.schema.schema import Schema
from repro.telemetry import current_trace, span
from repro.voting.merger import ConvictionLinearMerger, VoteMerger

__all__ = ["BatchMatchResult", "BatchPairOutcome", "BatchMatchRunner"]


class BatchMatchResult(MatchResult):
    """A :class:`~repro.match.engine.MatchResult` plus blocking statistics."""

    def __init__(self, *args, n_candidates: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_candidates = n_candidates

    @property
    def candidate_fraction(self) -> float:
        """Scored fraction of the cross-product (the blocking prune factor)."""
        if self.n_pairs == 0:
            return 0.0
        return self.n_candidates / self.n_pairs


@dataclass
class BatchPairOutcome:
    """One corpus pair's outcome: accepted correspondences plus statistics.

    ``matrix`` is the full (fill-padded) match matrix when the runner keeps
    matrices; corpus-scale and process-pool runs drop it (an N-way sweep
    would otherwise hold C(N,2) dense grids alive) and keep only the
    selected correspondences.
    """

    source_name: str
    target_name: str
    n_source: int
    n_target: int
    n_candidates: int
    elapsed_seconds: float
    correspondences: list[Correspondence]
    matrix: MatchMatrix | None = None
    cascade: CascadeReport | None = None

    @property
    def n_pairs(self) -> int:
        return self.n_source * self.n_target

    @property
    def candidate_fraction(self) -> float:
        if self.n_pairs == 0:
            return 0.0
        return self.n_candidates / self.n_pairs


def _worker_match_chunk(payload: dict) -> list[BatchPairOutcome]:
    """Process-pool entry point: rebuild a serial runner, match a chunk.

    Cascades ship as their declarative plan: each worker compiles its own
    executor (registry-resolved oracle, private judgement cache), so
    custom oracle names must be registered at import time to be visible
    here.
    """
    plan: CascadePlan | None = payload.get("cascade_plan")
    runner = BatchMatchRunner(
        voters=payload["voters"],
        merger=payload["merger"],
        selection=payload["selection"],
        blocking=payload["blocking"],
        fill_value=payload["fill_value"],
        executor="serial",
        keep_matrices=False,
        cascade=CascadeExecutor.from_plan(plan) if plan is not None else None,
    )
    schemata: dict[str, Schema] = payload["schemata"]
    return [
        runner._pair_outcome(
            schemata[source_name],
            schemata[target_name],
            payload["selection"],
            source_name,
            target_name,
        )
        for source_name, target_name in payload["pairs"]
    ]


class BatchMatchRunner:
    """The corpus-scale batch fast path (see module docstring).

    Parameters
    ----------
    voters / merger:
        As for :class:`~repro.match.engine.HarmonyMatchEngine`; defaults to
        the calibrated default ensemble.
    selection:
        Default selection strategy for corpus outcomes
        (:class:`ThresholdSelection` (0.15) unless given).
    blocking:
        The :class:`~repro.batch.blocking.BlockingPolicy`; the default
        path+documentation policy measures recall 1.0 on the case study.
    space:
        A shared :class:`FeatureSpace`; pass one to reuse caches across
        runners, otherwise the runner owns a private space.
    fill_value:
        Score assigned to non-candidate pairs (default 0.0, complete
        uncertainty; must lie in [-1, 1]).
    executor:
        ``"serial"`` (default), ``"thread"``, or ``"process"``.  Threads
        share the feature cache but contend on the GIL (candidate-restricted
        kernels are too fine-grained to release it for long), so they help
        mainly when voters do I/O; processes re-derive features per worker
        chunk and return correspondences without matrices, but scale with
        cores on large registries.
    max_workers:
        Pool width for thread/process executors (None = library default).
    keep_matrices:
        Whether corpus outcomes retain their dense matrices (forced off in
        process mode, where matrices would dominate pickling cost).
    profile_cache:
        An externally owned ``{id(schema): SchemaProfile}`` dict, letting a
        service share one profile cache across engines and batch runners;
        the runner owns a private dict when omitted.
    cascade:
        An optional compiled :class:`~repro.cascade.CascadeExecutor`
        applied to every pair's merged candidate scores (see the module
        docstring).  ``None`` keeps the fast path single-stage and
        bit-identical to the pre-cascade runner.  Process-pool fan-out
        ships the *plan* and recompiles per worker.
    """

    def __init__(
        self,
        voters: list[MatchVoter] | None = None,
        merger: VoteMerger | None = None,
        selection: SelectionStrategy | None = None,
        blocking: BlockingPolicy | None = None,
        space: FeatureSpace | None = None,
        fill_value: float = 0.0,
        executor: str = "serial",
        max_workers: int | None = None,
        keep_matrices: bool = True,
        profile_cache: dict[int, SchemaProfile] | None = None,
        cascade: CascadeExecutor | None = None,
    ):
        self._default_ensemble = voters is None
        if voters is None:
            self.voters = default_voters()
            default_weights: tuple[float, ...] | None = DEFAULT_VOTER_WEIGHTS
        else:
            self.voters = voters
            default_weights = None
        if not self.voters:
            raise ValueError("runner needs at least one voter")
        self._default_merger = merger is None
        self.merger = (
            merger
            if merger is not None
            else ConvictionLinearMerger(voter_weights=default_weights)
        )
        self.selection = (
            selection if selection is not None else ThresholdSelection(0.15)
        )
        self.blocking = blocking if blocking is not None else BlockingPolicy()
        self.space = space if space is not None else FeatureSpace()
        if not -1.0 <= fill_value <= 1.0:
            raise ValueError(f"fill_value must be in [-1, 1], got {fill_value}")
        self.fill_value = fill_value
        if executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"executor must be serial, thread, or process, got {executor!r}"
            )
        self.executor = executor
        self.max_workers = max_workers
        self.keep_matrices = keep_matrices
        self._profiles: dict[int, SchemaProfile] = (
            profile_cache if profile_cache is not None else {}
        )
        self.cascade = cascade

    # -- caches ---------------------------------------------------------
    def profile(self, schema: Schema) -> SchemaProfile:
        """Profile a schema once; later calls reuse the cache."""
        key = id(schema)
        cached = self._profiles.get(key)
        if cached is None or cached.schema is not schema or len(cached) != len(schema):
            cached = build_profile(schema)
            self._profiles[key] = cached
        return cached

    def warm(self, schemata: Iterable[Schema]) -> None:
        """Pre-build profiles and every feature the ensemble will touch.

        Called automatically before fan-out so pool workers only *read* the
        shared caches; also useful to move one-time costs out of a timed
        region (bench E16 separates warm-up from steady-state matching).
        """
        kinds = ("name", "gram", "path", "doc", "text", "doc_sets")
        for schema in schemata:
            profile = self.profile(schema)
            for kind in kinds:
                self.space.feature(profile, kind)
            self.space.raw_name_ids(profile)
            self.space.doc_lengths(profile)
            self.space.text_lengths(profile)
            self.space.type_ids(profile)
            self.space.type_known(profile)
            for voter in self.voters:
                lexicon = getattr(voter, "lexicon", None)
                if lexicon is not None:
                    self.space.feature(profile, "canonical", lexicon=lexicon)

    # -- single pair ----------------------------------------------------
    def match_pair(
        self,
        source: Schema,
        target: Schema,
        source_element_ids: list[str] | None = None,
    ) -> BatchMatchResult:
        """Fast-path MATCH(source, target) over the blocked candidate grid.

        ``source_element_ids`` optionally restricts the rows (the E2 scale
        sweep's restriction).  Unrestricted candidate scores are exact;
        under restriction two voters deliberately deviate from the exact
        engine's restricted grid: the documentation voters fit IDF over
        the *full* pair corpus, and the structural voter keeps full-schema
        parent/children context -- both of which keep scores stable as the
        restriction changes.
        """
        with span("runner.batch"):
            return self._match_pair(source, target, source_element_ids)

    def _match_pair(
        self,
        source: Schema,
        target: Schema,
        source_element_ids: list[str] | None = None,
    ) -> BatchMatchResult:
        started = time.perf_counter()
        source_profile = self.profile(source)
        target_profile = self.profile(target)
        candidates = candidate_pairs(
            source_profile, target_profile, self.space, self.blocking
        )

        if source_element_ids is not None:
            positions = source_profile.positions_of(list(source_element_ids))
            candidates = candidates.restrict_rows(positions)
            row_of = np.full(len(source_profile), -1, dtype=int)
            row_of[positions] = np.arange(positions.size)
            matrix_rows = row_of[candidates.rows]
            source_ids = list(source_element_ids)
            n_rows = positions.size
        else:
            matrix_rows = candidates.rows
            source_ids = source_profile.element_ids
            n_rows = len(source_profile)

        merged = self._merge_candidates(source_profile, target_profile, candidates)
        cascade_report: CascadeReport | None = None
        if self.cascade is not None:
            merged, cascade_report = self.cascade.escalate_pairs(
                source_profile,
                target_profile,
                candidates.rows,
                candidates.cols,
                merged,
                stage1_seconds=time.perf_counter() - started,
            )
        scores = np.full((n_rows, len(target_profile)), self.fill_value)
        scores[matrix_rows, candidates.cols] = merged
        matrix = MatchMatrix(source_ids, target_profile.element_ids, scores)
        return BatchMatchResult(
            source,
            target,
            matrix,
            elapsed_seconds=time.perf_counter() - started,
            voter_names=[voter.name for voter in self.voters],
            n_candidates=candidates.n_candidates,
            cascade=cascade_report,
        )

    def _merge_candidates(
        self,
        source_profile: SchemaProfile,
        target_profile: SchemaProfile,
        candidates: CandidateSet,
    ) -> np.ndarray:
        """Merged scores for the candidate list (1-D, aligned with it)."""
        if candidates.n_candidates == 0:
            return np.zeros(0)
        stacked = np.stack(
            [
                voter.score_pairs(
                    source_profile,
                    target_profile,
                    candidates.rows,
                    candidates.cols,
                    self.space,
                )
                for voter in self.voters
            ]
        )
        # Mergers speak (n_voters, n_source, n_target); a candidate list is
        # a grid with one column.
        return self.merger.merge(stacked[:, :, None])[:, 0]

    # -- corpus / N-way fan-out -----------------------------------------
    def _pair_outcome(
        self,
        source: Schema,
        target: Schema,
        selection: SelectionStrategy,
        source_name: str | None = None,
        target_name: str | None = None,
    ) -> BatchPairOutcome:
        result = self.match_pair(source, target)
        return BatchPairOutcome(
            source_name=source_name if source_name is not None else source.name,
            target_name=target_name if target_name is not None else target.name,
            n_source=len(source),
            n_target=len(target),
            n_candidates=result.n_candidates,
            elapsed_seconds=result.elapsed_seconds,
            correspondences=result.candidates(selection),
            matrix=result.matrix if self.keep_matrices else None,
            cascade=result.cascade,
        )

    def _run_pairs(
        self,
        schemata: dict[str, Schema],
        pairs: Sequence[tuple[str, str]],
        selection: SelectionStrategy | None,
    ) -> list[BatchPairOutcome]:
        selection = selection if selection is not None else self.selection
        if self.executor == "process":
            return self._run_pairs_processes(schemata, pairs, selection)
        self.warm(schemata.values())
        if self.executor == "serial" or len(pairs) <= 1:
            return [
                self._pair_outcome(schemata[a], schemata[b], selection, a, b)
                for a, b in pairs
            ]
        if current_trace() is not None:
            # Context variables don't follow work into pool threads by
            # themselves: copy the caller's context once per task (a single
            # Context object cannot run concurrently) so every fanned-out
            # pair records its spans into the caller's trace, correctly
            # parented.
            contexts = [contextvars.copy_context() for _ in pairs]
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(
                    pool.map(
                        lambda task: task[0].run(
                            self._pair_outcome,
                            schemata[task[1][0]],
                            schemata[task[1][1]],
                            selection,
                            *task[1],
                        ),
                        zip(contexts, pairs),
                    )
                )
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(
                    lambda pair: self._pair_outcome(
                        schemata[pair[0]], schemata[pair[1]], selection, *pair
                    ),
                    pairs,
                )
            )

    def _run_pairs_processes(
        self,
        schemata: dict[str, Schema],
        pairs: Sequence[tuple[str, str]],
        selection: SelectionStrategy,
    ) -> list[BatchPairOutcome]:
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            n_workers = pool._max_workers
            chunks = [list(pairs[start::n_workers]) for start in range(n_workers)]
            payloads = []
            for chunk in chunks:
                needed = {name for pair in chunk for name in pair}
                payloads.append(
                    {
                        "pairs": chunk,
                        "schemata": {name: schemata[name] for name in needed},
                        "voters": None if self._default_ensemble else self.voters,
                        "merger": None if self._default_merger else self.merger,
                        "selection": selection,
                        "blocking": self.blocking,
                        "fill_value": self.fill_value,
                        "cascade_plan": (
                            self.cascade.plan if self.cascade is not None else None
                        ),
                    }
                )
            outcome_lists = list(pool.map(_worker_match_chunk, payloads))
        # Chunk k holds pairs k, k+n, k+2n, ... -- re-interleave to pair order.
        ordered: list[BatchPairOutcome | None] = [None] * len(pairs)
        for chunk_index, outcomes in enumerate(outcome_lists):
            for position, outcome in enumerate(outcomes):
                ordered[chunk_index + position * n_workers] = outcome
        return [outcome for outcome in ordered if outcome is not None]

    def match_corpus(
        self,
        source: Schema,
        corpus: dict[str, Schema],
        selection: SelectionStrategy | None = None,
    ) -> list[BatchPairOutcome]:
        """Match one schema against every schema of a corpus.

        Outcomes come back in sorted-corpus-name order (deterministic
        regardless of dict insertion order or pool scheduling).
        """
        names = sorted(corpus)
        registry = dict(corpus)
        source_key = source.name
        while source_key in registry:
            source_key = f"{source_key}*"
        registry[source_key] = source
        outcomes = self._run_pairs(
            registry, [(source_key, name) for name in names], selection
        )
        # The registry key is collision-proofed internally; outcomes report
        # the schema's real name.
        for outcome in outcomes:
            outcome.source_name = source.name
        return outcomes

    def match_all_pairs(
        self,
        schemata: dict[str, Schema],
        selection: SelectionStrategy | None = None,
    ) -> list[BatchPairOutcome]:
        """All C(N,2) pairwise matches of a registry (the N-way front end)."""
        return self._run_pairs(
            schemata, list(combinations(sorted(schemata), 2)), selection
        )
