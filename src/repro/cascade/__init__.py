"""Staged cheap->oracle cascade execution (see ``docs/cascade.md``).

Voter execution used to be single-stage: every voter over every pair, one
merge.  This package refactors that into a *cascade*: Stage 1 is the cheap
ensemble exactly as before, and pairs whose merged confidence lands inside
an ambiguity band escalate -- most ambiguous first, under a per-request
budget -- to a pluggable Stage-2 :class:`OracleVoter`, with judgements
cached under the server's canonical-hash key discipline.

* :class:`CascadePlan` -- the declarative configuration (band, budget,
  oracle name, blend weight); embeds in
  :class:`~repro.service.options.MatchOptions` and travels over the wire;
* :class:`CascadeStage` / :class:`CascadeReport` -- per-stage timing and
  oracle spend accounting, serialised inside response envelopes;
* :class:`OracleVoter` -- the pluggable judgement protocol, with
  :class:`ThesaurusOracle` (offline reference) and
  :class:`RecordedOracle` (deterministic record/replay for tests, benches
  and offline-first LLM traces);
* :class:`CascadeExecutor` -- the shared escalation semantics both the
  exact engine and the batch runner call into;
* :class:`CascadeCounters` -- service-level spend totals for ``/healthz``
  and ``/metrics``.
"""

from repro.cascade.executor import (
    ORACLE_CACHE_CLOCKS,
    CascadeCounters,
    CascadeExecutor,
)
from repro.cascade.oracle import (
    OracleVoter,
    RecordedOracle,
    ThesaurusOracle,
    build_oracle,
    element_view,
    oracle_names,
    oracle_request_key,
    register_oracle,
)
from repro.cascade.plan import CascadePlan, CascadeReport, CascadeStage

__all__ = [
    "CascadePlan",
    "CascadeStage",
    "CascadeReport",
    "OracleVoter",
    "RecordedOracle",
    "ThesaurusOracle",
    "CascadeExecutor",
    "CascadeCounters",
    "ORACLE_CACHE_CLOCKS",
    "element_view",
    "oracle_request_key",
    "register_oracle",
    "build_oracle",
    "oracle_names",
]
