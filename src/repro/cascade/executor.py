"""Budgeted Stage-2 escalation over Stage-1 merged confidences.

The :class:`CascadeExecutor` is the piece both execution paths share: the
exact engine hands it a merged confidence *grid*, the batch runner a merged
candidate *list*, and it applies the same semantics to either:

1. **band** -- pairs with ``|c| < band`` are ambiguous;
2. **order** -- most ambiguous first (ascending ``|c|``), with pair
   position as the deterministic tie-break, so the escalation set is a
   pure function of the inputs;
3. **budget** -- at most ``plan.budget`` pairs are judged per request
   (cache hits count against the budget too -- budgets bound *escalations*,
   so warm caches change cost, never which pairs escalate);
4. **cache** -- judgements are looked up / stored under
   :func:`~repro.cascade.oracle.oracle_request_key` with clock-free
   watermarks (a judgement depends only on element content, so it can
   never go stale) through any
   :class:`~repro.server.distcache.CacheBackend`;
5. **blend** -- escalated scores become
   ``(1 - weight) * cheap + weight * oracle``, clipped to [-1, 1].

With no executor attached the engine and runner never enter this module --
the zero-cascade paths stay bit-identical to the pre-cascade pipeline.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from repro.cascade.oracle import (
    OracleVoter,
    build_oracle,
    element_view,
    oracle_request_key,
)
from repro.cascade.plan import CascadePlan, CascadeReport, CascadeStage
from repro.matchers.profile import SchemaProfile
from repro.telemetry import span

__all__ = ["CascadeExecutor", "CascadeCounters", "ORACLE_CACHE_CLOCKS"]

#: Oracle-cache entries are content-addressed: ``None`` clock components
#: mean "no dependency on that clock" (see ``repro.server.cache``), so a
#: judgement stored once validates forever and survives repository writes.
ORACLE_CACHE_CLOCKS: tuple = (None, None)


class CascadeCounters:
    """Thread-safe oracle spend accounting, aggregated across requests.

    One instance per :class:`~repro.service.MatchService`; every cascaded
    invocation folds its :class:`~repro.cascade.plan.CascadeReport` in, and
    the server surfaces the totals on ``/healthz`` and ``/metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.ambiguous = 0
        self.escalated = 0
        self.oracle_calls = 0
        self.oracle_cache_hits = 0
        self.truncated = 0

    def record(self, report: CascadeReport) -> None:
        with self._lock:
            self.requests += 1
            self.ambiguous += report.n_ambiguous
            self.escalated += report.n_escalated
            self.oracle_calls += report.oracle_calls
            self.oracle_cache_hits += report.oracle_cache_hits
            self.truncated += 1 if report.truncated else 0

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests,
                "ambiguous": self.ambiguous,
                "escalated": self.escalated,
                "oracle_calls": self.oracle_calls,
                "oracle_cache_hits": self.oracle_cache_hits,
                "truncated": self.truncated,
            }


class CascadeExecutor:
    """One compiled cascade: a plan bound to a live oracle, cache, counters.

    Parameters
    ----------
    plan:
        The declarative :class:`CascadePlan`.
    oracle:
        A live :class:`OracleVoter`; resolved from the plan's registry
        name when omitted.
    cache:
        Any ``get``/``put`` cache backend (the in-process
        :class:`~repro.server.cache.ResponseCache`, a
        :class:`~repro.server.distcache.RemoteCache`, or a
        :class:`~repro.server.distcache.TieredCache`); ``None`` disables
        judgement caching.
    counters:
        A shared :class:`CascadeCounters` to fold reports into (the
        service passes its own; standalone executors may omit).
    """

    def __init__(
        self,
        plan: CascadePlan,
        oracle: OracleVoter | None = None,
        cache: Any | None = None,
        counters: CascadeCounters | None = None,
    ):
        self.plan = plan
        self.oracle = oracle if oracle is not None else build_oracle(plan.oracle)
        self.cache = cache
        self.counters = counters

    @classmethod
    def from_plan(
        cls,
        plan: CascadePlan,
        cache: Any | None = None,
        counters: CascadeCounters | None = None,
    ) -> "CascadeExecutor":
        """Compile a plan with a registry-resolved oracle and a default
        in-process judgement cache (pass ``cache`` explicitly -- e.g. a
        distcache tier -- to share judgements across replicas)."""
        if cache is None:
            from repro.server.cache import ResponseCache

            cache = ResponseCache(max_entries=4096)
        return cls(plan, cache=cache, counters=counters)

    # ------------------------------------------------------------------
    def escalate_pairs(
        self,
        source_profile: SchemaProfile,
        target_profile: SchemaProfile,
        rows: np.ndarray,
        cols: np.ndarray,
        scores: np.ndarray,
        stage1_seconds: float,
    ) -> tuple[np.ndarray, CascadeReport]:
        """Escalate a candidate list (the batch path).

        ``rows`` / ``cols`` are profile positions aligned with the 1-D
        ``scores``; returns the blended scores (a copy when anything
        escalates) and the report.  (``escalate_grid`` funnels through
        here too, so this is the single traced escalation site.)
        """
        with span("cascade.escalate") as escalate_span:
            blended, report = self._escalate_pairs(
                source_profile, target_profile, rows, cols, scores,
                stage1_seconds,
            )
            escalate_span.annotate(
                escalated=report.n_escalated, oracle_calls=report.oracle_calls
            )
            return blended, report

    def _escalate_pairs(
        self,
        source_profile: SchemaProfile,
        target_profile: SchemaProfile,
        rows: np.ndarray,
        cols: np.ndarray,
        scores: np.ndarray,
        stage1_seconds: float,
    ) -> tuple[np.ndarray, CascadeReport]:
        started = time.perf_counter()
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        ambiguous = np.nonzero(np.abs(scores) < self.plan.band)[0]
        # Most ambiguous first; (row, col) position breaks |c| ties
        # deterministically.  lexsort keys are least-significant first.
        order = np.lexsort(
            (cols[ambiguous], rows[ambiguous], np.abs(scores[ambiguous]))
        )
        selected = ambiguous[order]
        truncated = False
        budget = self.plan.budget
        if budget is not None and selected.size > budget:
            selected = selected[:budget]
            truncated = True

        blended = scores
        oracle_calls = cache_hits = 0
        escalated_pairs: list[tuple[str, str]] = []
        if selected.size:
            blended = scores.copy()
            views = [
                (
                    element_view(source_profile, int(rows[index])),
                    element_view(target_profile, int(cols[index])),
                )
                for index in selected
            ]
            keys = [
                oracle_request_key(self.oracle.name, source, target)
                for source, target in views
            ]
            verdicts: list[float | None] = [None] * selected.size
            misses: list[int] = []
            for position, key in enumerate(keys):
                cached = (
                    self.cache.get(key, ORACLE_CACHE_CLOCKS)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    verdicts[position] = float(cached)
                    cache_hits += 1
                else:
                    misses.append(position)
            if misses:
                answers = self.oracle.judge([views[position] for position in misses])
                oracle_calls = len(misses)
                for position, answer in zip(misses, answers):
                    verdict = float(np.clip(answer, -1.0, 1.0))
                    verdicts[position] = verdict
                    if self.cache is not None:
                        self.cache.put(keys[position], verdict, ORACLE_CACHE_CLOCKS)
            weight = self.plan.weight
            for position, index in enumerate(selected):
                blended[index] = float(
                    np.clip(
                        (1.0 - weight) * scores[index] + weight * verdicts[position],
                        -1.0,
                        1.0,
                    )
                )
                escalated_pairs.append(
                    (
                        source_profile.element_ids[int(rows[index])],
                        target_profile.element_ids[int(cols[index])],
                    )
                )

        report = CascadeReport(
            plan=self.plan,
            n_ambiguous=int(ambiguous.size),
            n_escalated=int(selected.size),
            oracle_calls=oracle_calls,
            oracle_cache_hits=cache_hits,
            truncated=truncated,
            stages=(
                CascadeStage("cheap", int(scores.size), stage1_seconds),
                CascadeStage(
                    "oracle",
                    int(selected.size),
                    time.perf_counter() - started,
                    oracle_calls=oracle_calls,
                ),
            ),
            escalated_pairs=tuple(escalated_pairs),
        )
        if self.counters is not None:
            self.counters.record(report)
        return blended, report

    def escalate_grid(
        self,
        source_profile: SchemaProfile,
        target_profile: SchemaProfile,
        row_positions: np.ndarray | None,
        col_positions: np.ndarray | None,
        merged: np.ndarray,
        stage1_seconds: float,
    ) -> tuple[np.ndarray, CascadeReport]:
        """Escalate a merged grid (the exact path).

        ``row_positions`` / ``col_positions`` are the profile positions the
        grid axes correspond to (``None`` = the full profile).
        """
        row_positions = (
            np.asarray(row_positions, dtype=int)
            if row_positions is not None
            else np.arange(len(source_profile))
        )
        col_positions = (
            np.asarray(col_positions, dtype=int)
            if col_positions is not None
            else np.arange(len(target_profile))
        )
        n_rows, n_cols = merged.shape
        grid_rows, grid_cols = np.meshgrid(
            np.arange(n_rows), np.arange(n_cols), indexing="ij"
        )
        flat, report = self.escalate_pairs(
            source_profile,
            target_profile,
            row_positions[grid_rows.ravel()],
            col_positions[grid_cols.ravel()],
            merged.ravel(),
            stage1_seconds,
        )
        return flat.reshape(merged.shape), report
