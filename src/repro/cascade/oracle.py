"""The Stage-2 oracle protocol: expensive judgement behind a pluggable seam.

An :class:`OracleVoter` answers the question the cheap ensemble could not:
given two schema elements whose merged confidence fell inside the ambiguity
band, how confident are we -- in the same (-1, +1) dialect every voter
speaks -- that they correspond?  The protocol is deliberately minimal and
*content-addressed*:

* an oracle sees :func:`element_view` dicts (raw name, stemmed name and
  documentation terms, data type, depth) -- a JSON-ready projection of the
  pair, never live schema objects, so any judgement source (a synonym
  lexicon, a recorded trace, a remote LLM) plugs in behind the same seam;
* :func:`oracle_request_key` hashes a query exactly like the server's
  response cache hashes a request (SHA-256 over canonical JSON), so oracle
  judgements cache under the same key discipline -- and through the same
  :class:`~repro.server.distcache.CacheBackend` tiers -- as responses;
* oracles register by name (:func:`register_oracle` / :func:`build_oracle`)
  so a :class:`~repro.cascade.plan.CascadePlan` stays declarative data.

Two implementations ship: :class:`ThesaurusOracle`, the offline reference
judge (abbreviation-expanded, synonym-canonicalised token evidence over
names *and* documentation plus a data-type gate -- strictly more context
than any single cheap voter spends per pair), and :class:`RecordedOracle`,
the deterministic record/replay oracle tests and benches use in place of a
live LLM (see ``docs/cascade.md`` for wrapping a real one offline-first).
"""

from __future__ import annotations

import hashlib
import json
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping, Sequence

from repro.matchers.profile import SchemaProfile
from repro.schema.datatypes import DataType
from repro.text.abbrev import AbbreviationTable
from repro.text.thesaurus import SynonymLexicon
from repro.voting.confidence import saturation

__all__ = [
    "OracleVoter",
    "RecordedOracle",
    "ThesaurusOracle",
    "element_view",
    "oracle_request_key",
    "register_oracle",
    "build_oracle",
    "oracle_names",
]


def element_view(profile: SchemaProfile, position: int) -> dict[str, Any]:
    """The content-addressed projection of one element an oracle judges.

    Deliberately contains no element ids or schema names: two elements with
    identical content hash identically, so oracle-cache entries are
    shareable across schema copies and replicas.
    """
    return {
        "name": profile.raw_names[position],
        "name_terms": list(profile.name_terms[position]),
        "doc_terms": list(profile.doc_terms[position]),
        "data_type": profile.data_types[position].value,
        "depth": int(profile.depths[position]),
    }


def oracle_request_key(oracle: str, source: Mapping, target: Mapping) -> str:
    """The oracle-cache key for one judgement: SHA-256 over canonical JSON.

    Same recipe as :func:`repro.server.cache.canonical_request_key`
    (canonical separators, sorted keys), with the oracle name standing in
    for the endpoint -- two oracles never share judgements.
    """
    canonical = json.dumps(
        {"oracle": oracle, "source": dict(source), "target": dict(target)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class OracleVoter(ABC):
    """Base class for Stage-2 oracles (see module docstring).

    Subclasses implement :meth:`judge`, mapping a batch of
    ``(source_view, target_view)`` pairs to confidences in [-1, 1].
    Batching is the unit of cost: a wrapped LLM sends one prompt per batch,
    the reference oracles loop.
    """

    #: Short stable identifier (registry key, cache-key component).
    name: str = "oracle"
    #: Oracles sit above every cheap voter in the cascade's cost model.
    cost_tier: str = "oracle"

    @abstractmethod
    def judge(
        self, pairs: Sequence[tuple[Mapping, Mapping]]
    ) -> list[float]:
        """Confidences in [-1, 1], aligned with ``pairs``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class ThesaurusOracle(OracleVoter):
    """The offline reference oracle: spend more per pair, not more pairs.

    Where the cheap thesaurus voter canonicalises *name* terms only, this
    judge expands every name term through the abbreviation table, folds
    both expansions and documentation terms through the synonym lexicon,
    and gates the verdict on data-type agreement -- exactly the extra
    evidence that separates a near-miss decoy (same-looking name, wrong
    container and wrong documentation) from a true correspondence.
    """

    name = "thesaurus"

    def __init__(
        self,
        lexicon: SynonymLexicon | None = None,
        abbreviations: AbbreviationTable | None = None,
        neutral: float = 0.3,
        tau: float = 4.0,
    ):
        self.lexicon = lexicon if lexicon is not None else SynonymLexicon.default()
        self.abbreviations = (
            abbreviations if abbreviations is not None else AbbreviationTable.default()
        )
        if not 0.0 < neutral < 1.0:
            raise ValueError(f"neutral must be in (0, 1), got {neutral}")
        self.neutral = neutral
        self.tau = tau

    def _expand(self, terms: Sequence[str]) -> frozenset[str]:
        expanded: set[str] = set()
        for term in terms:
            expanded.add(self.lexicon.canonical(term))
            for word in self.abbreviations.expand(term):
                expanded.add(self.lexicon.canonical(word))
        return frozenset(expanded)

    @staticmethod
    def _jaccard(left: frozenset[str], right: frozenset[str]) -> float:
        if not left or not right:
            return 0.0
        union = len(left | right)
        return len(left & right) / union if union else 0.0

    def judge(
        self, pairs: Sequence[tuple[Mapping, Mapping]]
    ) -> list[float]:
        verdicts: list[float] = []
        for source, target in pairs:
            source_names = self._expand(source.get("name_terms", ()))
            target_names = self._expand(target.get("name_terms", ()))
            source_docs = self._expand(source.get("doc_terms", ()))
            target_docs = self._expand(target.get("doc_terms", ()))
            name_sim = self._jaccard(source_names, target_names)
            doc_sim = self._jaccard(source_docs, target_docs)
            if source_docs and target_docs:
                similarity = 0.65 * name_sim + 0.35 * doc_sim
            else:
                similarity = name_sim
            # Data-type gate: agreeing concrete types corroborate, clashing
            # ones contradict, unknown/complex stays neutral.
            left = source.get("data_type", DataType.UNKNOWN.value)
            right = target.get("data_type", DataType.UNKNOWN.value)
            vague = (DataType.UNKNOWN.value, DataType.COMPLEX.value)
            if left not in vague and right not in vague:
                similarity = min(1.0, similarity + 0.1) if left == right else similarity * 0.6
            # Calibrate around ``neutral`` (the voters' piecewise-linear
            # mapping), damped by the evidence mass actually compared.
            if similarity >= self.neutral:
                raw = (similarity - self.neutral) / (1.0 - self.neutral)
            else:
                raw = (similarity - self.neutral) / self.neutral
            evidence = float(
                len(source_names) + len(target_names)
                + 0.5 * (len(source_docs) + len(target_docs))
            )
            verdicts.append(float(raw) * saturation(evidence, self.tau))
        return verdicts


class RecordedOracle(OracleVoter):
    """Deterministic record/replay oracle for tests and benches.

    Keys recordings by the content hash of each ``(source, target)`` view
    pair, so a recording made in one process replays bit-identically in
    another.  Three modes:

    * **replay** -- ``RecordedOracle(recording)`` answers from the
      recording; unknown pairs return ``default`` (or raise when
      ``strict=True``);
    * **record** -- ``RecordedOracle(inner=live_oracle)`` delegates misses
      to ``inner`` and captures the answers (``.recording`` serialises via
      :meth:`to_dict` -- the offline-first trace of a real LLM run);
    * **synthetic** -- construct the recording dict directly (benches
      recording a ground-truth-derived judge at a chosen fidelity).
    """

    name = "recorded"

    def __init__(
        self,
        recording: Mapping[str, float] | None = None,
        inner: OracleVoter | None = None,
        default: float = 0.0,
        strict: bool = False,
    ):
        self.recording: dict[str, float] = dict(recording) if recording else {}
        self.inner = inner
        if not -1.0 <= default <= 1.0:
            raise ValueError(f"default must be in [-1, 1], got {default}")
        self.default = default
        self.strict = strict

    @staticmethod
    def pair_key(source: Mapping, target: Mapping) -> str:
        """The recording key for one pair (oracle-name-independent)."""
        return oracle_request_key("recorded", source, target)

    def judge(
        self, pairs: Sequence[tuple[Mapping, Mapping]]
    ) -> list[float]:
        verdicts: list[float] = []
        missing: list[int] = []
        for index, (source, target) in enumerate(pairs):
            key = self.pair_key(source, target)
            if key in self.recording:
                verdicts.append(self.recording[key])
            else:
                verdicts.append(self.default)
                missing.append(index)
        if missing and self.inner is not None:
            answers = self.inner.judge([pairs[index] for index in missing])
            for index, answer in zip(missing, answers):
                key = self.pair_key(*pairs[index])
                self.recording[key] = float(answer)
                verdicts[index] = float(answer)
        elif missing and self.strict:
            raise KeyError(
                f"RecordedOracle has no recording for {len(missing)} pair(s) "
                "and no inner oracle to delegate to"
            )
        return verdicts

    def to_dict(self) -> dict[str, Any]:
        """The recording as a JSON-compatible trace."""
        return {"default": self.default, "recording": dict(self.recording)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RecordedOracle":
        return cls(
            recording=payload.get("recording", {}),
            default=payload.get("default", 0.0),
        )


# ---------------------------------------------------------------------------
# The oracle registry: CascadePlan.oracle names resolve here.
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], OracleVoter]] = {}
_REGISTRY_LOCK = threading.Lock()


def register_oracle(name: str, factory: Callable[[], OracleVoter]) -> None:
    """Register (or replace) an oracle factory under ``name``.

    Tests and benches use this to mount :class:`RecordedOracle` traces
    behind a plan-addressable name.  Registration is per-process: a
    process-pool worker resolves names against *its* registry, so custom
    oracles used with ``executor="process"`` must register at import time.
    """
    if not name:
        raise ValueError("oracle name must be non-empty")
    with _REGISTRY_LOCK:
        _REGISTRY[name] = factory


def build_oracle(name: str) -> OracleVoter:
    """Instantiate the oracle registered under ``name``."""
    with _REGISTRY_LOCK:
        factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ValueError(f"unknown oracle {name!r}; registered: {known}")
    return factory()


def oracle_names() -> tuple[str, ...]:
    """The currently registered oracle names, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


register_oracle("thesaurus", ThesaurusOracle)
