"""The cascade plan: staged cheap->oracle matching as declarative data.

A :class:`CascadePlan` describes *when* and *how far* a match invocation may
escalate beyond the cheap voter ensemble: pairs whose Stage-1 merged
confidence lands inside the ambiguity band ``|c| < band`` are candidates for
a Stage-2 :class:`~repro.cascade.oracle.OracleVoter`, most-ambiguous first,
up to a per-request ``budget`` of escalations.  Like
:class:`~repro.service.options.MatchOptions` (which embeds a plan), it is a
frozen, hashable, JSON-round-trippable value -- the plan travels over the
wire inside every request, keys compiled engines and runners, and
differentiates response-cache keys so cascaded and plain responses never
collide.

:class:`CascadeStage` and :class:`CascadeReport` are the *result* half: what
one cascaded invocation actually did (per-stage pair counts and timing,
oracle calls vs cache hits, whether the budget truncated the band).  They
serialise inside :class:`~repro.service.response.MatchResponse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["CascadePlan", "CascadeStage", "CascadeReport"]


@dataclass(frozen=True)
class CascadePlan:
    """One cascade configuration, as a value.

    Parameters
    ----------
    band:
        The ambiguity band: Stage-1 merged confidences with ``|c| < band``
        are escalation candidates.  Must lie in (0, 1].
    budget:
        Per-request cap on *escalated pairs* (oracle judgements, whether
        served by the oracle cache or a live call); ``None`` means
        unlimited.  Escalation order is deterministic -- most ambiguous
        (smallest ``|c|``) first, pair position breaking ties -- so the
        same inputs always escalate the same set.
    oracle:
        Oracle name, resolved through the registry in
        :mod:`repro.cascade.oracle` (``"thesaurus"`` is the built-in
        reference implementation; tests and benches register
        :class:`~repro.cascade.oracle.RecordedOracle` factories).
    weight:
        Blend weight of the oracle's confidence for escalated pairs:
        ``final = (1 - weight) * cheap + weight * oracle``, clipped to
        [-1, 1].  Must lie in (0, 1].
    """

    band: float = 0.25
    budget: int | None = 64
    oracle: str = "thesaurus"
    weight: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.band <= 1.0:
            raise ValueError(f"band must be in (0, 1], got {self.band}")
        if self.budget is not None:
            if int(self.budget) != self.budget or self.budget < 0:
                raise ValueError(
                    f"budget must be None or a non-negative integer, got {self.budget}"
                )
            object.__setattr__(self, "budget", int(self.budget))
        if not isinstance(self.oracle, str) or not self.oracle:
            raise ValueError(f"oracle must be a non-empty name, got {self.oracle!r}")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {self.weight}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "band": self.band,
            "budget": self.budget,
            "oracle": self.oracle,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CascadePlan":
        """Rebuild a plan from :meth:`to_dict` output (defaults fill gaps)."""
        return cls(
            band=payload.get("band", 0.25),
            budget=payload.get("budget", 64),
            oracle=payload.get("oracle", "thesaurus"),
            weight=payload.get("weight", 0.6),
        )


@dataclass(frozen=True)
class CascadeStage:
    """What one stage of a cascaded invocation did.

    ``name`` is ``"cheap"`` (the Stage-1 voter ensemble over every scored
    pair) or ``"oracle"`` (the Stage-2 escalation); ``n_pairs`` is the
    number of pairs that stage scored; ``oracle_calls`` counts live oracle
    invocations (0 for the cheap stage, and <= ``n_pairs`` for the oracle
    stage -- the rest were oracle-cache hits).
    """

    name: str
    n_pairs: int
    elapsed_seconds: float
    oracle_calls: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "n_pairs": self.n_pairs,
            "elapsed_seconds": self.elapsed_seconds,
            "oracle_calls": self.oracle_calls,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CascadeStage":
        return cls(
            name=payload["name"],
            n_pairs=payload["n_pairs"],
            elapsed_seconds=payload["elapsed_seconds"],
            oracle_calls=payload.get("oracle_calls", 0),
        )


@dataclass(frozen=True)
class CascadeReport:
    """One cascaded invocation's spend accounting (see module docstring).

    ``escalated_pairs`` (the exact ``(source_id, target_id)`` escalation
    set, in escalation order) is carried for in-process consumers and
    determinism tests but -- like ``MatchResponse.result`` -- is not part
    of the serialised form or of equality: the wire carries the counts.
    """

    plan: CascadePlan
    n_ambiguous: int               # Stage-1 pairs inside the band
    n_escalated: int               # of which: actually judged (<= budget)
    oracle_calls: int              # of which: live oracle invocations
    oracle_cache_hits: int         # of which: served by the oracle cache
    truncated: bool                # did the budget cut the band?
    stages: tuple[CascadeStage, ...]
    escalated_pairs: tuple[tuple[str, str], ...] = field(
        default=(), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "escalated_pairs", tuple(self.escalated_pairs))

    @property
    def elapsed_seconds(self) -> float:
        return sum(stage.elapsed_seconds for stage in self.stages)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "plan": self.plan.to_dict(),
            "n_ambiguous": self.n_ambiguous,
            "n_escalated": self.n_escalated,
            "oracle_calls": self.oracle_calls,
            "oracle_cache_hits": self.oracle_cache_hits,
            "truncated": self.truncated,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CascadeReport":
        return cls(
            plan=CascadePlan.from_dict(payload["plan"]),
            n_ambiguous=payload["n_ambiguous"],
            n_escalated=payload["n_escalated"],
            oracle_calls=payload["oracle_calls"],
            oracle_cache_hits=payload["oracle_cache_hits"],
            truncated=payload["truncated"],
            stages=tuple(
                CascadeStage.from_dict(entry) for entry in payload["stages"]
            ),
        )
