"""Command-line interface: ``harmonia`` / ``python -m repro``.

Subcommands mirror the library's main operations:

* ``match A.sql B.xsd``      -- run the engine, print top candidates
* ``batch A.sql B.xsd ...``  -- corpus fast path: one source vs a corpus,
  or ``--all-pairs`` over the whole registry
* ``overlap A.sql B.xsd``    -- the Lesson-#3 partition report
* ``summarize A.sql``        -- SUMMARIZE(S) by root containers
* ``tree A.sql``             -- ASCII schema tree
* ``vocab A.sql B.xsd C.sql``-- N-way comprehensive vocabulary + partition
  (``--batch`` routes the pairwise stage through the fast path)
* ``cluster A.sql B.xsd ...``-- cluster a registry, propose COIs
* ``search QUERY A.sql ...`` -- keyword search over a registry
* ``casestudy``              -- regenerate the paper's section-3 study

Schema files are loaded by extension: ``.sql`` via the DDL importer,
``.xsd`` via the XSD importer, ``.json`` via the serialiser.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.export.report import concept_match_text, overlap_report_text
from repro.match.engine import HarmonyMatchEngine
from repro.match.selection import ThresholdSelection
from repro.metrics.overlap import matrix_overlap
from repro.schema.relational import load_ddl_file
from repro.schema.schema import Schema
from repro.schema.serialize import load_schema
from repro.schema.xmlschema import load_xsd_file
from repro.summarize.manual import summarize_by_roots
from repro.viz.ascii import render_tree

__all__ = ["main"]


def _load(path: str) -> Schema:
    if path.endswith(".sql"):
        return load_ddl_file(path)
    if path.endswith(".xsd"):
        return load_xsd_file(path)
    if path.endswith(".json"):
        return load_schema(path)
    raise SystemExit(f"cannot infer schema format of {path!r} (.sql/.xsd/.json)")


def _cmd_match(args: argparse.Namespace) -> int:
    source = _load(args.source)
    target = _load(args.target)
    engine = HarmonyMatchEngine()
    result = engine.match(source, target)
    print(
        f"matched {source.name} ({len(source)}) x {target.name} ({len(target)}): "
        f"{result.n_pairs} pairs in {result.elapsed_seconds:.2f}s"
    )
    candidates = result.candidates(ThresholdSelection(args.threshold))
    for candidate in candidates[: args.limit]:
        print(
            f"  {candidate.score:+.3f}  {source.path(candidate.source_id)}"
            f"  <->  {target.path(candidate.target_id)}"
        )
    if len(candidates) > args.limit:
        print(f"  ... ({len(candidates) - args.limit} more above {args.threshold})")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchMatchRunner

    runner = BatchMatchRunner(
        selection=ThresholdSelection(args.threshold),
        executor=args.executor,
        max_workers=args.workers,
        keep_matrices=False,
    )
    started = time.perf_counter()
    if args.all_pairs:
        registry = _load_registry(args.schemata)
        if len(registry) < 2:
            raise SystemExit("batch --all-pairs needs at least two schemata")
        outcomes = runner.match_all_pairs(registry)
    else:
        if len(args.schemata) < 2:
            raise SystemExit("batch needs a source and at least one target")
        source = _load(args.schemata[0])
        corpus = _load_registry(args.schemata[1:])
        outcomes = runner.match_corpus(source, corpus)
    elapsed = time.perf_counter() - started

    total_pairs = sum(outcome.n_pairs for outcome in outcomes)
    total_candidates = sum(outcome.n_candidates for outcome in outcomes)
    for outcome in outcomes:
        print(
            f"{outcome.source_name} x {outcome.target_name}: "
            f"{outcome.n_pairs:,} pairs, {outcome.n_candidates:,} candidates "
            f"({outcome.candidate_fraction:.1%}), "
            f"{len(outcome.correspondences)} correspondences "
            f"in {outcome.elapsed_seconds:.2f}s"
        )
        for correspondence in outcome.correspondences[: args.limit]:
            print(
                f"  {correspondence.score:+.3f}  {correspondence.source_id}"
                f"  <->  {correspondence.target_id}"
            )
    print(
        f"batch total: {len(outcomes)} match operations, {total_pairs:,} pairs "
        f"({total_candidates:,} scored after blocking) in {elapsed:.2f}s "
        f"[{args.executor}]"
    )
    return 0


def _cmd_overlap(args: argparse.Namespace) -> int:
    source = _load(args.source)
    target = _load(args.target)
    result = HarmonyMatchEngine().match(source, target)
    report = matrix_overlap(result, args.threshold)
    print(overlap_report_text(report, source.name, target.name))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    schema = _load(args.schema)
    summary = summarize_by_roots(schema)
    sizes = summary.concept_sizes()
    print(f"{len(summary)} concepts over {len(schema)} elements "
          f"(coverage {summary.coverage():.0%})")
    for concept in summary.concepts:
        print(f"  {concept.label}  ({sizes[concept.concept_id]} elements)")
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    print(render_tree(_load(args.schema), max_elements=args.limit))
    return 0


def _load_registry(paths: list[str]) -> dict[str, Schema]:
    registry: dict[str, Schema] = {}
    for path in paths:
        schema = _load(path)
        name = schema.name
        suffix = 2
        while name in registry:
            name = f"{schema.name}_{suffix}"
            suffix += 1
        registry[name] = schema
    return registry


def _cmd_vocab(args: argparse.Namespace) -> int:
    from repro.export.report import partition_table_text
    from repro.nway import nway_match

    registry = _load_registry(args.schemata)
    if len(registry) < 2:
        raise SystemExit("vocab needs at least two schemata")
    runner = None
    if args.batch:
        from repro.batch import BatchMatchRunner

        runner = BatchMatchRunner(keep_matrices=False)
    vocabulary, partition = nway_match(registry, runner=runner)
    print(
        f"comprehensive vocabulary over {len(registry)} schemata: "
        f"{len(vocabulary)} entries"
    )
    print(partition_table_text(partition))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import TermVectorDistance, propose_cois

    registry = _load_registry(args.schemata)
    if len(registry) < 2:
        raise SystemExit("cluster needs at least two schemata")
    distances = TermVectorDistance().matrix(registry)
    proposals = propose_cois(
        distances, n_clusters=args.clusters, min_cohesion=args.min_cohesion
    )
    if not proposals:
        print("no communities of interest found at this cohesion level")
        return 0
    for proposal in proposals:
        print(proposal.describe())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search import KeywordQuery, SchemaIndex, SchemaSearchEngine

    registry = _load_registry(args.schemata)
    index = SchemaIndex()
    for schema in registry.values():
        index.add(schema)
    searcher = SchemaSearchEngine(index)
    hits = searcher.search(KeywordQuery(args.query), limit=args.limit)
    if not hits:
        print(f"no schemata match {args.query!r}")
        return 0
    for hit in hits:
        print(f"  {hit.score:8.2f}  {hit.schema_name}")
    if args.fragments:
        print("fragments:")
        for hit in searcher.search_fragments(KeywordQuery(args.query), limit=args.limit):
            print(f"  {hit.score:8.2f}  {hit.schema_name}/{hit.root_name}")
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.metrics.overlap import workflow_overlap
    from repro.synthetic.casestudy import case_study

    pair = case_study(seed=args.seed)
    engine = HarmonyMatchEngine()
    result = engine.match(pair.source.schema, pair.target.schema)
    print(
        f"SA: {len(pair.source.schema)} elements / "
        f"{len(pair.source.schema.roots())} concepts; "
        f"SB: {len(pair.target.schema)} elements / "
        f"{len(pair.target.schema.roots())} concepts"
    )
    print(f"full automated match: {result.n_pairs} pairs in "
          f"{result.elapsed_seconds:.2f}s (paper: 10.2s)")
    report = workflow_overlap(
        result, pair.source.truth_summary(), pair.target.truth_summary()
    )
    print()
    print(overlap_report_text(report))
    print()
    print(f"concept-level matches ({len(report.concept_matches)}; paper: 24):")
    print(concept_match_text(report.concept_matches, limit=10))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="harmonia",
        description="Enterprise schema matching workbench (CIDR 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    match_parser = subparsers.add_parser("match", help="match two schemata")
    match_parser.add_argument("source")
    match_parser.add_argument("target")
    match_parser.add_argument("--threshold", type=float, default=0.10)
    match_parser.add_argument("--limit", type=int, default=30)
    match_parser.set_defaults(handler=_cmd_match)

    batch_parser = subparsers.add_parser(
        "batch", help="corpus-scale fast-path matching (source vs corpus)"
    )
    batch_parser.add_argument(
        "schemata", nargs="+", help="source schema followed by the corpus"
    )
    batch_parser.add_argument(
        "--all-pairs",
        action="store_true",
        help="match every pair of the given schemata (N-way) instead of source-vs-corpus",
    )
    batch_parser.add_argument("--threshold", type=float, default=0.15)
    batch_parser.add_argument("--limit", type=int, default=10)
    batch_parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    batch_parser.add_argument("--workers", type=int, default=None)
    batch_parser.set_defaults(handler=_cmd_batch)

    overlap_parser = subparsers.add_parser("overlap", help="overlap partition report")
    overlap_parser.add_argument("source")
    overlap_parser.add_argument("target")
    overlap_parser.add_argument("--threshold", type=float, default=0.15)
    overlap_parser.set_defaults(handler=_cmd_overlap)

    summarize_parser = subparsers.add_parser("summarize", help="SUMMARIZE(S) by roots")
    summarize_parser.add_argument("schema")
    summarize_parser.set_defaults(handler=_cmd_summarize)

    tree_parser = subparsers.add_parser("tree", help="print a schema tree")
    tree_parser.add_argument("schema")
    tree_parser.add_argument("--limit", type=int, default=60)
    tree_parser.set_defaults(handler=_cmd_tree)

    vocab_parser = subparsers.add_parser(
        "vocab", help="N-way comprehensive vocabulary and partition"
    )
    vocab_parser.add_argument("schemata", nargs="+")
    vocab_parser.add_argument(
        "--batch",
        action="store_true",
        help="route the pairwise stage through the batch fast path",
    )
    vocab_parser.set_defaults(handler=_cmd_vocab)

    cluster_parser = subparsers.add_parser(
        "cluster", help="cluster a registry and propose COIs"
    )
    cluster_parser.add_argument("schemata", nargs="+")
    cluster_parser.add_argument("--clusters", type=int, default=None)
    cluster_parser.add_argument("--min-cohesion", type=float, default=0.0)
    cluster_parser.set_defaults(handler=_cmd_cluster)

    search_parser = subparsers.add_parser(
        "search", help="keyword search over a registry of schema files"
    )
    search_parser.add_argument("query")
    search_parser.add_argument("schemata", nargs="+")
    search_parser.add_argument("--limit", type=int, default=10)
    search_parser.add_argument("--fragments", action="store_true")
    search_parser.set_defaults(handler=_cmd_search)

    case_parser = subparsers.add_parser(
        "casestudy", help="regenerate the paper's section-3 study"
    )
    case_parser.add_argument("--seed", type=int, default=2009)
    case_parser.set_defaults(handler=_cmd_casestudy)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
