"""Command-line interface: ``harmonia`` / ``python -m repro``.

Subcommands mirror the library's main operations:

* ``match A.sql B.xsd``      -- run a MATCH through the service (auto-routed
  exact/batch; ``--json`` emits the response envelope; ``--cascade``
  escalates ambiguous pairs to a Stage-2 oracle under ``--band`` /
  ``--oracle-budget``)
* ``batch A.sql B.xsd ...``  -- corpus fast path: one source vs a corpus,
  or ``--all-pairs`` over the whole registry
* ``corpus-match A.sql B.xsd C.sql ...`` -- repository-scale top-k match:
  register a corpus (or open a SQLite repository with ``--db``), prune it
  through the corpus index, match the survivors on the fast path, rank
  (``--json`` emits the CorpusMatchResponse envelope)
* ``network-match A C --db repo.db`` -- answer A -> C by composing stored
  mappings along pivot paths (``--max-hops``; ``--verify`` seeds a fast-path
  run with the composition; ``--json`` emits the NetworkMatchResponse)
* ``overlap A.sql B.xsd``    -- the Lesson-#3 partition report
* ``summarize A.sql``        -- SUMMARIZE(S) by root containers
* ``tree A.sql``             -- ASCII schema tree
* ``vocab A.sql B.xsd C.sql``-- N-way comprehensive vocabulary + partition
  (``--batch`` routes the pairwise stage through the fast path)
* ``cluster A.sql B.xsd ...``-- cluster a registry, propose COIs
* ``search QUERY A.sql ...`` -- keyword search over a registry
* ``casestudy``              -- regenerate the paper's section-3 study
* ``serve --db repo.db``     -- run the match server (``repro.server``):
  a threaded JSON API over one shared service with generation-aware
  response caching; SIGINT/SIGTERM shut down gracefully (in-flight
  requests drain), bad config or a port in use exits with status 2

Every matching subcommand goes through one :class:`repro.service.MatchService`
instance, so profiles and features are derived once per schema regardless of
how many match operations a command runs.

Schema files are loaded by extension: ``.sql`` via the DDL importer,
``.xsd`` via the XSD importer, ``.json`` via the serialiser.  A file that
cannot be read or parsed exits with status 2 and a one-line diagnostic.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import __version__
from repro.cascade import CascadePlan
from repro.export.report import concept_match_text, overlap_report_text
from repro.metrics.overlap import matrix_overlap
from repro.schema.errors import ParseError
from repro.schema.relational import load_ddl_file
from repro.schema.schema import Schema
from repro.schema.serialize import load_schema
from repro.schema.xmlschema import load_xsd_file
from repro.service import MatchOptions, MatchService
from repro.summarize.manual import summarize_by_roots
from repro.viz.ascii import render_tree

__all__ = ["main"]

_LOADERS = {
    ".sql": load_ddl_file,
    ".xsd": load_xsd_file,
    ".json": load_schema,
}


def _fail(message: str) -> "SystemExit":
    """Uniform load-failure exit: diagnostic on stderr, status 2."""
    print(f"harmonia: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load(path: str) -> Schema:
    """Load one schema file by extension, with consistent error handling."""
    for suffix, loader in _LOADERS.items():
        if path.endswith(suffix):
            try:
                return loader(path)
            except OSError as exc:
                raise _fail(f"cannot read {path!r}: {exc.strerror or exc}") from exc
            # ValueError covers json.JSONDecodeError and bad enum payloads;
            # KeyError/TypeError cover structurally invalid serialised JSON.
            except (ParseError, KeyError, TypeError, ValueError) as exc:
                raise _fail(f"cannot parse {path!r}: {exc}") from exc
    raise _fail(f"cannot infer schema format of {path!r} (.sql/.xsd/.json)")


def _load_registry(paths: list[str]) -> dict[str, Schema]:
    """Load many schema files; duplicate schema names get _2/_3 suffixes."""
    registry: dict[str, Schema] = {}
    for path in paths:
        schema = _load(path)
        name = schema.name
        suffix = 2
        while name in registry:
            name = f"{schema.name}_{suffix}"
            suffix += 1
        registry[name] = schema
    return registry


def _cascade_plan(args: argparse.Namespace) -> CascadePlan | None:
    """Build the Stage-2 escalation plan from ``--cascade``/``--band``/
    ``--oracle-budget`` (None when ``--cascade`` was not given)."""
    if args.cascade is None:
        return None
    return CascadePlan(
        band=args.band, budget=args.oracle_budget, oracle=args.cascade
    )


def _add_cascade_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cascade",
        nargs="?",
        const="thesaurus",
        default=None,
        metavar="ORACLE",
        help="escalate ambiguous pairs to a Stage-2 oracle "
        "(optionally named; default oracle: thesaurus)",
    )
    parser.add_argument(
        "--band",
        type=float,
        default=0.25,
        help="ambiguity band: pairs with |confidence| below this escalate "
        "(default: 0.25; only with --cascade)",
    )
    parser.add_argument(
        "--oracle-budget",
        type=int,
        default=None,
        help="max escalated pairs per match (default: unlimited; "
        "only with --cascade)",
    )


def _cmd_match(args: argparse.Namespace) -> int:
    source = _load(args.source)
    target = _load(args.target)
    service = MatchService()
    options = MatchOptions(
        threshold=args.threshold, execution=args.route,
        cascade=_cascade_plan(args),
    )
    response = service.match_pair(source, target, options=options)
    if args.json:
        print(response.to_json(indent=2))
        return 0
    print(
        f"matched {source.name} ({len(source)}) x {target.name} ({len(target)}): "
        f"{response.n_pairs} pairs in {response.elapsed_seconds:.2f}s "
        f"[route={response.route}]"
    )
    if response.cascade is not None:
        report = response.cascade
        print(
            f"  cascade: {report.n_escalated}/{report.n_ambiguous} ambiguous "
            f"pairs escalated, {report.oracle_calls} oracle calls "
            f"({report.oracle_cache_hits} cached)"
            + (" [budget exhausted]" if report.truncated else "")
        )
    candidates = response.correspondences
    for candidate in candidates[: args.limit]:
        print(
            f"  {candidate.score:+.3f}  {source.path(candidate.source_id)}"
            f"  <->  {target.path(candidate.target_id)}"
        )
    if len(candidates) > args.limit:
        print(f"  ... ({len(candidates) - args.limit} more above {args.threshold})")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    service = MatchService()
    options = MatchOptions(threshold=args.threshold, execution="batch")
    started = time.perf_counter()
    if args.all_pairs:
        registry = _load_registry(args.schemata)
        if len(registry) < 2:
            raise SystemExit("batch --all-pairs needs at least two schemata")
        responses = service.match_all_pairs(
            registry, options=options, executor=args.executor,
            max_workers=args.workers,
        )
    else:
        if len(args.schemata) < 2:
            raise SystemExit("batch needs a source and at least one target")
        source = _load(args.schemata[0])
        corpus = _load_registry(args.schemata[1:])
        responses = service.match_corpus(
            source, corpus, options=options, executor=args.executor,
            max_workers=args.workers,
        )
    elapsed = time.perf_counter() - started

    total_pairs = sum(response.n_pairs for response in responses)
    total_candidates = sum(response.n_candidates for response in responses)
    for response in responses:
        print(
            f"{response.source_name} x {response.target_name}: "
            f"{response.n_pairs:,} pairs, {response.n_candidates:,} candidates "
            f"({response.candidate_fraction:.1%}), "
            f"{len(response.correspondences)} correspondences "
            f"in {response.elapsed_seconds:.2f}s"
        )
        for correspondence in response.correspondences[: args.limit]:
            print(
                f"  {correspondence.score:+.3f}  {correspondence.source_id}"
                f"  <->  {correspondence.target_id}"
            )
    print(
        f"batch total: {len(responses)} match operations, {total_pairs:,} pairs "
        f"({total_candidates:,} scored after blocking) in {elapsed:.2f}s "
        f"[{args.executor}]"
    )
    return 0


def _cmd_corpus_match(args: argparse.Namespace) -> int:
    from repro.repository import MetadataRepository, ReusePolicy
    from repro.service import CorpusMatchRequest

    if args.db is None and not args.corpus:
        raise _fail(
            "corpus-match needs corpus schema files (or --db with a "
            "populated repository)"
        )
    repository = MetadataRepository(path=args.db)
    try:
        for name, schema in _load_registry(args.corpus).items():
            repository.register(schema, name=name)
        # The source is a schema file when it looks like one, else the name
        # of a schema already registered in the repository.
        if any(args.source.endswith(suffix) for suffix in _LOADERS):
            source = _load(args.source)
        else:
            if args.source not in repository:
                raise _fail(
                    f"{args.source!r} is neither a schema file (.sql/.xsd/.json) "
                    "nor a registered schema name"
                )
            source = args.source
        service = MatchService(repository=repository)
        request = CorpusMatchRequest(
            source=source,
            top_k=args.top_k,
            options=MatchOptions(
                threshold=args.threshold, cascade=_cascade_plan(args)
            ),
            retrieval_limit=args.retrieval_limit,
            reuse=None if args.no_reuse else ReusePolicy(),
            executor=args.executor,
            max_workers=args.workers,
        )
        response = service.corpus_match(request)
    finally:
        repository.close()
    if args.json:
        print(response.to_json(indent=2))
        return 0
    print(
        f"corpus-match {response.source_name}: {response.n_registered} registered, "
        f"{response.n_retrieved} retrieved, top {len(response.candidates)} ranked "
        f"in {response.elapsed_seconds:.2f}s "
        f"(retrieval {response.retrieval_seconds:.2f}s, "
        f"reuse {'on' if response.reuse_applied else 'off'})"
    )
    totals = response.cascade_totals()
    if totals is not None:
        print(
            f"  cascade: {totals['n_escalated']}/{totals['n_ambiguous']} "
            f"ambiguous pairs escalated, {totals['oracle_calls']} oracle calls "
            f"({totals['oracle_cache_hits']} cached)"
        )
    for rank, candidate in enumerate(response.candidates, start=1):
        print(
            f"{rank}. {candidate.target_name}: match score "
            f"{candidate.match_score:.2f} (bm25 {candidate.retrieval_score:.1f}), "
            f"{len(candidate)} correspondences"
            + (
                f", {candidate.n_boosted} boosted / {candidate.n_seeded} seeded"
                if response.reuse_applied
                else ""
            )
        )
        for correspondence in candidate.correspondences[: args.limit]:
            print(
                f"     {correspondence.score:+.3f}  {correspondence.source_id}"
                f"  <->  {correspondence.target_id}"
            )
        remaining = len(candidate.correspondences) - args.limit
        if remaining > 0:
            print(f"     ... ({remaining} more)")
    return 0


def _cmd_network_match(args: argparse.Namespace) -> int:
    from repro.repository import MetadataRepository
    from repro.service import NetworkMatchRequest

    repository = MetadataRepository(path=args.db)
    try:
        for name, schema in _load_registry(args.corpus).items():
            repository.register(schema, name=name)

        def endpoint(argument: str) -> str:
            """A schema file registers and contributes its name; otherwise
            the argument must already be a registered name."""
            if any(argument.endswith(suffix) for suffix in _LOADERS):
                schema = _load(argument)
                return repository.register(schema)
            if argument not in repository:
                raise _fail(
                    f"{argument!r} is neither a schema file (.sql/.xsd/.json) "
                    "nor a registered schema name"
                )
            return argument

        source = endpoint(args.source)
        target = endpoint(args.target)
        if source == target:
            raise _fail(
                f"source and target resolve to the same schema {source!r}; "
                "network routing needs two distinct endpoints"
            )
        service = MatchService(repository=repository)
        request = NetworkMatchRequest(
            source=source,
            target=target,
            max_hops=args.max_hops,
            hop_decay=args.decay,
            options=MatchOptions(threshold=args.threshold),
            min_score=args.min_score,
            verify=args.verify,
        )
        response = service.network_match(request)
    finally:
        repository.close()
    if args.json:
        print(response.to_json(indent=2))
        return 0
    print(
        f"network-match {response.source_name} -> {response.target_name}: "
        f"{response.n_paths} pivot path(s) over {response.n_edges} mapped "
        f"pair(s) / {response.n_nodes} schemata (max {response.max_hops} hops) "
        f"in {response.elapsed_seconds:.2f}s"
        + (
            f"; verified on the fast path ({response.n_boosted} boosted, "
            f"{response.n_seeded} seeded)"
            if response.verified
            else ""
        )
    )
    for path in response.paths:
        print(f"  via {' > '.join(path.nodes[1:-1])}: {path.n_pairs} pairs composed")
    for correspondence in response.correspondences[: args.limit]:
        line = (
            f"  {correspondence.score:+.3f}  {correspondence.source_id}"
            f"  <->  {correspondence.target_id}"
        )
        if correspondence.note:
            line += f"  [{correspondence.note}]"
        print(line)
    remaining = len(response.correspondences) - args.limit
    if remaining > 0:
        print(f"  ... ({remaining} more)")
    return 0


def _cmd_overlap(args: argparse.Namespace) -> int:
    source = _load(args.source)
    target = _load(args.target)
    response = MatchService().match_pair(source, target)
    report = matrix_overlap(response.result, args.threshold)
    print(overlap_report_text(report, source.name, target.name))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    schema = _load(args.schema)
    summary = summarize_by_roots(schema)
    sizes = summary.concept_sizes()
    print(f"{len(summary)} concepts over {len(schema)} elements "
          f"(coverage {summary.coverage():.0%})")
    for concept in summary.concepts:
        print(f"  {concept.label}  ({sizes[concept.concept_id]} elements)")
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    print(render_tree(_load(args.schema), max_elements=args.limit))
    return 0


def _cmd_vocab(args: argparse.Namespace) -> int:
    from repro.export.report import partition_table_text
    from repro.nway import nway_match

    registry = _load_registry(args.schemata)
    if len(registry) < 2:
        raise SystemExit("vocab needs at least two schemata")
    execution = "batch" if args.batch else "auto"
    service = MatchService(options=MatchOptions(execution=execution))
    vocabulary, partition = nway_match(registry, service=service)
    print(
        f"comprehensive vocabulary over {len(registry)} schemata: "
        f"{len(vocabulary)} entries"
    )
    print(partition_table_text(partition))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import TermVectorDistance, propose_cois

    registry = _load_registry(args.schemata)
    if len(registry) < 2:
        raise SystemExit("cluster needs at least two schemata")
    distances = TermVectorDistance().matrix(registry)
    proposals = propose_cois(
        distances, n_clusters=args.clusters, min_cohesion=args.min_cohesion
    )
    if not proposals:
        print("no communities of interest found at this cohesion level")
        return 0
    for proposal in proposals:
        print(proposal.describe())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search import KeywordQuery, SchemaIndex, SchemaSearchEngine

    registry = _load_registry(args.schemata)
    index = SchemaIndex()
    for schema in registry.values():
        index.add(schema)
    searcher = SchemaSearchEngine(index)
    hits = searcher.search(KeywordQuery(args.query), limit=args.limit)
    if not hits:
        print(f"no schemata match {args.query!r}")
        return 0
    for hit in hits:
        print(f"  {hit.score:8.2f}  {hit.schema_name}")
    if args.fragments:
        print("fragments:")
        for hit in searcher.search_fragments(KeywordQuery(args.query), limit=args.limit):
            print(f"  {hit.score:8.2f}  {hit.schema_name}/{hit.root_name}")
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.metrics.overlap import workflow_overlap
    from repro.synthetic.casestudy import case_study

    pair = case_study(seed=args.seed)
    # The paper reproduction pins its published numbers to the exact grid.
    response = MatchService().match_pair(
        pair.source.schema,
        pair.target.schema,
        options=MatchOptions(execution="exact"),
    )
    result = response.result
    print(
        f"SA: {len(pair.source.schema)} elements / "
        f"{len(pair.source.schema.roots())} concepts; "
        f"SB: {len(pair.target.schema)} elements / "
        f"{len(pair.target.schema.roots())} concepts"
    )
    print(f"full automated match: {response.n_pairs} pairs in "
          f"{response.elapsed_seconds:.2f}s (paper: 10.2s)")
    report = workflow_overlap(
        result, pair.source.truth_summary(), pair.target.truth_summary()
    )
    print()
    print(overlap_report_text(report))
    print()
    print(f"concept-level matches ({len(report.concept_matches)}; paper: 24):")
    print(concept_match_text(report.concept_matches, limit=10))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import sqlite3

    from repro.repository import MetadataRepository
    from repro.server import MatchServer, build_cache, serve_until_shutdown

    if args.cache_size <= 0:
        raise _fail(f"--cache-size must be positive, got {args.cache_size}")
    if args.cache_tier in ("shared", "tiered") and args.cache_url is None:
        raise _fail(f"--cache-tier {args.cache_tier} needs --cache-url")
    if args.cache_timeout <= 0:
        raise _fail(f"--cache-timeout must be positive, got {args.cache_timeout}")
    if args.warm_cache < 0:
        raise _fail(f"--warm-cache must be >= 0, got {args.warm_cache}")
    if args.workers < 1:
        raise _fail(f"--workers must be >= 1, got {args.workers}")
    if args.pool_size < 1:
        raise _fail(f"--pool-size must be >= 1, got {args.pool_size}")
    if args.refresh_interval is not None and args.refresh_interval <= 0:
        raise _fail(
            f"--refresh-interval must be positive, got {args.refresh_interval}"
        )
    if args.corpus_shards is not None and args.corpus_shards < 1:
        raise _fail(f"--corpus-shards must be >= 1, got {args.corpus_shards}")
    if args.slow_ms < 0:
        raise _fail(f"--slow-ms must be >= 0, got {args.slow_ms}")
    if args.trace_sample is not None and not 0.0 <= args.trace_sample <= 1.0:
        raise _fail(f"--trace-sample must be in [0, 1], got {args.trace_sample}")
    backend = None if args.backend == "auto" else args.backend
    if backend in ("sqlite", "pooled") and args.db is None:
        raise _fail(f"--backend {backend} needs --db (a repository file)")
    if args.workers > 1:
        if args.db is None:
            raise _fail(
                "--workers > 1 needs --db: the worker processes share one "
                "WAL repository file, not one address space"
            )
        if backend == "sqlite":
            raise _fail(
                "--workers > 1 requires the pooled backend "
                "(drop --backend sqlite or use --backend pooled)"
            )
        if not hasattr(os, "fork"):
            raise _fail("--workers > 1 needs os.fork (POSIX only)")
        return _serve_process_pool(args)
    try:
        repository = MetadataRepository(
            path=args.db, backend=backend, pool_size=args.pool_size
        )
    except sqlite3.Error as exc:
        raise _fail(f"cannot open repository {args.db!r}: {exc}") from exc
    try:
        for name, schema in _load_registry(args.corpus).items():
            repository.register(schema, name=name)
        service = MatchService(
            repository=repository,
            options=MatchOptions(threshold=args.threshold),
            corpus_shards=args.corpus_shards,
        )
        if args.refresh_interval is not None:
            service.start_corpus_refresh(args.refresh_interval)
        try:
            server = MatchServer(
                service,
                host=args.host,
                port=args.port,
                cache_size=args.cache_size,
                quiet=not args.access_log,
                cache=build_cache(
                    cache_size=args.cache_size,
                    cache_url=args.cache_url,
                    tier=args.cache_tier,
                    timeout=args.cache_timeout,
                ),
                warm_limit=args.warm_cache,
                trace_log=args.trace_log,
                slow_ms=args.slow_ms,
                trace_sample=args.trace_sample,
            )
        except OSError as exc:
            raise _fail(
                f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}"
            ) from exc

        def announce(started: MatchServer) -> None:
            print(
                f"harmonia {__version__} serving on {started.url} "
                f"({len(repository)} schemata registered, "
                f"cache {args.cache_size} entries); Ctrl-C to stop",
                flush=True,
            )

        serve_until_shutdown(server, announce=announce)
        service.stop_corpus_refresh()
        print("harmonia: server stopped cleanly", flush=True)
        return 0
    finally:
        repository.close()


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as json_module
    import sqlite3

    from repro.corpus import bulk_ingest, iter_schema_payloads
    from repro.repository import MetadataRepository

    if args.chunk_size < 1:
        raise _fail(f"--chunk-size must be >= 1, got {args.chunk_size}")
    if args.workers is not None and args.workers < 1:
        raise _fail(f"--workers must be >= 1, got {args.workers}")
    backend = None if args.backend == "auto" else args.backend
    try:
        repository = MetadataRepository(
            path=args.db, backend=backend, pool_size=args.pool_size
        )
    except sqlite3.Error as exc:
        raise _fail(f"cannot open repository {args.db!r}: {exc}") from exc
    try:
        try:
            report = bulk_ingest(
                repository,
                iter_schema_payloads(args.source),
                chunk_size=args.chunk_size,
                executor=args.executor,
                max_workers=args.workers,
                fingerprint=not args.no_fingerprints,
            )
        except FileNotFoundError as exc:
            raise _fail(str(exc)) from exc
        except (ValueError, json_module.JSONDecodeError) as exc:
            raise _fail(f"cannot ingest {args.source}: {exc}") from exc
        if args.json:
            print(json_module.dumps(report.to_dict(), indent=2))
        else:
            print(
                f"ingested {report.n_read} schemata into {args.db} "
                f"({report.n_written} written, {report.n_skipped} identical "
                f"skipped, {report.n_fingerprinted} fingerprints)"
            )
            print(
                f"  {report.schemata_per_second:,.0f} schemata/s "
                f"({report.elapsed_seconds:.2f}s total: "
                f"{report.fingerprint_seconds:.2f}s fingerprinting, "
                f"{report.register_seconds:.2f}s registering)"
            )
        return 0
    finally:
        repository.close()


def _serve_process_pool(args: argparse.Namespace) -> int:
    import sqlite3

    from repro.repository import MetadataRepository
    from repro.server import serve_process_pool

    # Seed the corpus BEFORE forking, through a short-lived repository that
    # is fully closed again: SQLite connections must never cross a fork, so
    # the parent holds none while the workers start.
    try:
        repository = MetadataRepository(
            path=args.db, backend="pooled", pool_size=args.pool_size
        )
    except sqlite3.Error as exc:
        raise _fail(f"cannot open repository {args.db!r}: {exc}") from exc
    try:
        for name, schema in _load_registry(args.corpus).items():
            repository.register(schema, name=name)
        n_schemata = len(repository)
    finally:
        repository.close()

    def announce(url: str, n_workers: int) -> None:
        print(
            f"harmonia {__version__} serving on {url} with {n_workers} "
            f"worker processes ({n_schemata} schemata registered, pooled "
            f"WAL store, {args.pool_size} connections/worker); "
            f"Ctrl-C to stop",
            flush=True,
        )

    try:
        status = serve_process_pool(
            args.db,
            args.workers,
            host=args.host,
            port=args.port,
            options=MatchOptions(threshold=args.threshold),
            cache_size=args.cache_size,
            pool_size=args.pool_size,
            quiet=not args.access_log,
            announce=announce,
            refresh_interval=args.refresh_interval,
            corpus_shards=args.corpus_shards,
            cache_url=args.cache_url,
            cache_tier=args.cache_tier,
            cache_timeout=args.cache_timeout,
            warm_limit=args.warm_cache,
            trace_log=args.trace_log,
            slow_ms=args.slow_ms,
            trace_sample=args.trace_sample,
        )
    except OSError as exc:
        raise _fail(
            f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}"
        ) from exc
    if status == 0:
        print("harmonia: worker pool stopped cleanly", flush=True)
    else:
        print("harmonia: worker pool stopped after a worker failure", flush=True)
    return status


def _cmd_cache_serve(args: argparse.Namespace) -> int:
    from repro.server import CacheServer, serve_until_shutdown

    if args.cache_size <= 0:
        raise _fail(f"--cache-size must be positive, got {args.cache_size}")
    try:
        server = CacheServer(
            host=args.host, port=args.port, cache_size=args.cache_size
        )
    except OSError as exc:
        raise _fail(
            f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}"
        ) from exc

    def announce(started: CacheServer) -> None:
        print(
            f"harmonia {__version__} cache-serve on {started.address} "
            f"({args.cache_size} entries); Ctrl-C to stop",
            flush=True,
        )

    serve_until_shutdown(server, announce=announce)
    print("harmonia: cache server stopped cleanly", flush=True)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.telemetry import (
        format_trace_summary,
        read_trace_log,
        summarize_trace_log,
    )

    try:
        summary = summarize_trace_log(read_trace_log(args.path))
    except OSError as exc:
        raise _fail(f"cannot read trace log {args.path!r}: {exc}") from exc
    except ValueError as exc:
        raise _fail(str(exc)) from exc
    if args.json:
        print(json_module.dumps(summary, indent=2))
        return 0
    if not summary["n_traces"]:
        print(f"no traces in {args.path}")
        return 0
    print(format_trace_summary(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="harmonia",
        description="Enterprise schema matching workbench (CIDR 2009 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"harmonia {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    match_parser = subparsers.add_parser("match", help="match two schemata")
    match_parser.add_argument("source")
    match_parser.add_argument("target")
    match_parser.add_argument("--threshold", type=float, default=0.10)
    match_parser.add_argument("--limit", type=int, default=30)
    match_parser.add_argument(
        "--route",
        choices=("auto", "exact", "batch"),
        default="auto",
        help="execution hint for the service router (default: auto)",
    )
    match_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the MatchResponse envelope as JSON",
    )
    _add_cascade_arguments(match_parser)
    match_parser.set_defaults(handler=_cmd_match)

    batch_parser = subparsers.add_parser(
        "batch", help="corpus-scale fast-path matching (source vs corpus)"
    )
    batch_parser.add_argument(
        "schemata", nargs="+", help="source schema followed by the corpus"
    )
    batch_parser.add_argument(
        "--all-pairs",
        action="store_true",
        help="match every pair of the given schemata (N-way) instead of source-vs-corpus",
    )
    batch_parser.add_argument("--threshold", type=float, default=0.15)
    batch_parser.add_argument("--limit", type=int, default=10)
    batch_parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    batch_parser.add_argument("--workers", type=int, default=None)
    batch_parser.set_defaults(handler=_cmd_batch)

    corpus_parser = subparsers.add_parser(
        "corpus-match",
        help="repository-scale top-k match: one schema vs everything registered",
    )
    corpus_parser.add_argument(
        "source", help="query schema file, or a registered name with --db"
    )
    corpus_parser.add_argument(
        "corpus", nargs="*",
        help="schema files to register before matching (optional with --db)",
    )
    corpus_parser.add_argument(
        "--db", default=None,
        help="SQLite repository path (default: ephemeral in-memory registry)",
    )
    corpus_parser.add_argument("--top-k", type=int, default=5)
    corpus_parser.add_argument("--threshold", type=float, default=0.15)
    corpus_parser.add_argument(
        "--retrieval-limit", type=int, default=None,
        help="candidates to match after index pruning (default: max(3*top_k, 10))",
    )
    corpus_parser.add_argument(
        "--limit", type=int, default=5,
        help="correspondences printed per candidate (text output)",
    )
    corpus_parser.add_argument(
        "--no-reuse", action="store_true",
        help="skip boosting/seeding from previously stored matches",
    )
    corpus_parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    corpus_parser.add_argument("--workers", type=int, default=None)
    corpus_parser.add_argument(
        "--json", action="store_true",
        help="emit the CorpusMatchResponse envelope as JSON",
    )
    _add_cascade_arguments(corpus_parser)
    corpus_parser.set_defaults(handler=_cmd_corpus_match)

    network_parser = subparsers.add_parser(
        "network-match",
        help="compose a match through the mapping network of stored mappings",
    )
    network_parser.add_argument(
        "source", help="query schema file, or a registered name (with --db)"
    )
    network_parser.add_argument(
        "target", help="target schema file, or a registered name (with --db)"
    )
    network_parser.add_argument(
        "corpus", nargs="*",
        help="additional schema files to register before routing",
    )
    network_parser.add_argument(
        "--db", default=None,
        help="SQLite repository path holding the stored mappings to route through",
    )
    network_parser.add_argument(
        "--max-hops", type=int, default=2,
        help="maximum pivot schemata per composition path (default: 2)",
    )
    network_parser.add_argument(
        "--decay", type=float, default=0.9,
        help="confidence decay per pivot beyond the first (default: 0.9)",
    )
    network_parser.add_argument(
        "--min-score", type=float, default=0.0,
        help="drop composed candidates below this score",
    )
    network_parser.add_argument(
        "--verify", action="store_true",
        help="run the blocked fast path over the pair, seeded by the composition",
    )
    network_parser.add_argument("--threshold", type=float, default=0.15)
    network_parser.add_argument(
        "--limit", type=int, default=10,
        help="correspondences printed (text output)",
    )
    network_parser.add_argument(
        "--json", action="store_true",
        help="emit the NetworkMatchResponse envelope as JSON",
    )
    network_parser.set_defaults(handler=_cmd_network_match)

    overlap_parser = subparsers.add_parser("overlap", help="overlap partition report")
    overlap_parser.add_argument("source")
    overlap_parser.add_argument("target")
    overlap_parser.add_argument("--threshold", type=float, default=0.15)
    overlap_parser.set_defaults(handler=_cmd_overlap)

    summarize_parser = subparsers.add_parser("summarize", help="SUMMARIZE(S) by roots")
    summarize_parser.add_argument("schema")
    summarize_parser.set_defaults(handler=_cmd_summarize)

    tree_parser = subparsers.add_parser("tree", help="print a schema tree")
    tree_parser.add_argument("schema")
    tree_parser.add_argument("--limit", type=int, default=60)
    tree_parser.set_defaults(handler=_cmd_tree)

    vocab_parser = subparsers.add_parser(
        "vocab", help="N-way comprehensive vocabulary and partition"
    )
    vocab_parser.add_argument("schemata", nargs="+")
    vocab_parser.add_argument(
        "--batch",
        action="store_true",
        help="route the pairwise stage through the batch fast path",
    )
    vocab_parser.set_defaults(handler=_cmd_vocab)

    cluster_parser = subparsers.add_parser(
        "cluster", help="cluster a registry and propose COIs"
    )
    cluster_parser.add_argument("schemata", nargs="+")
    cluster_parser.add_argument("--clusters", type=int, default=None)
    cluster_parser.add_argument("--min-cohesion", type=float, default=0.0)
    cluster_parser.set_defaults(handler=_cmd_cluster)

    search_parser = subparsers.add_parser(
        "search", help="keyword search over a registry of schema files"
    )
    search_parser.add_argument("query")
    search_parser.add_argument("schemata", nargs="+")
    search_parser.add_argument("--limit", type=int, default=10)
    search_parser.add_argument("--fragments", action="store_true")
    search_parser.set_defaults(handler=_cmd_search)

    case_parser = subparsers.add_parser(
        "casestudy", help="regenerate the paper's section-3 study"
    )
    case_parser.add_argument("--seed", type=int, default=2009)
    case_parser.set_defaults(handler=_cmd_casestudy)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the match server (threaded JSON API with response caching)",
    )
    serve_parser.add_argument(
        "corpus", nargs="*",
        help="schema files to register before serving (optional with --db)",
    )
    serve_parser.add_argument(
        "--db", default=None,
        help="SQLite repository path (default: ephemeral in-memory registry)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; > 1 preforks a pool sharing one socket and "
             "one pooled-WAL store (needs --db)",
    )
    serve_parser.add_argument(
        "--backend", choices=("auto", "sqlite", "pooled"), default="auto",
        help="storage backend for --db (auto: legacy sqlite single-worker, "
             "pooled WAL when --workers > 1)",
    )
    serve_parser.add_argument(
        "--pool-size", type=int, default=4,
        help="SQLite connections per pooled backend (per worker process)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks an ephemeral one; in use exits with status 2)",
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="response-cache LRU bound (entries)",
    )
    serve_parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="default selection threshold for served requests",
    )
    serve_parser.add_argument(
        "--access-log", action="store_true",
        help="log one line per request to stderr (off by default)",
    )
    serve_parser.add_argument(
        "--refresh-interval", type=float, default=None,
        help="seconds between background corpus-index refresh checks "
             "(default: refresh synchronously on the query path)",
    )
    serve_parser.add_argument(
        "--corpus-shards", type=int, default=None,
        help="partition the corpus index into N hash-range shards "
             "(default: one unsharded index; retrieval is exact either way)",
    )
    serve_parser.add_argument(
        "--cache-url", default=None, metavar="HOST:PORT",
        help="shared cache server to mount (see `harmonia cache-serve`); "
             "default: per-process cache only",
    )
    serve_parser.add_argument(
        "--cache-tier", choices=("auto", "local", "shared", "tiered"),
        default="auto",
        help="cache topology: local LRU, shared remote, or tiered "
             "local-over-shared (auto: tiered when --cache-url is given)",
    )
    serve_parser.add_argument(
        "--cache-timeout", type=float, default=1.0,
        help="seconds before a shared-cache call degrades to a miss",
    )
    serve_parser.add_argument(
        "--warm-cache", type=int, default=0, metavar="N",
        help="pre-answer the repository's N hottest recorded requests "
             "at startup (0 disables warming)",
    )
    serve_parser.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append slow-request traces (one JSON span tree per line) to "
             "this file; summarise with `harmonia trace PATH`",
    )
    serve_parser.add_argument(
        "--slow-ms", type=float, default=250.0, metavar="MS",
        help="requests slower than this land in --trace-log (0 logs every "
             "sampled request)",
    )
    serve_parser.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="fraction of requests to trace server-side, in [0, 1] "
             "(default: trace all; client opt-in via options.trace is "
             "always honoured)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    trace_parser = subparsers.add_parser(
        "trace",
        help="summarise a --trace-log file: per-stage time breakdown",
    )
    trace_parser.add_argument("path", help="trace JSONL file to summarise")
    trace_parser.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of the table",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    cache_serve_parser = subparsers.add_parser(
        "cache-serve",
        help="run the shared response-cache server replicas mount via "
             "--cache-url",
    )
    cache_serve_parser.add_argument("--host", default="127.0.0.1")
    cache_serve_parser.add_argument(
        "--port", type=int, default=8901,
        help="bind port (0 picks an ephemeral one; in use exits with "
             "status 2)",
    )
    cache_serve_parser.add_argument(
        "--cache-size", type=int, default=65536,
        help="shared-cache LRU bound (entries)",
    )
    cache_serve_parser.set_defaults(handler=_cmd_cache_serve)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="bulk-register a directory or JSONL of schemata into a repository",
    )
    ingest_parser.add_argument(
        "source",
        help="directory of schema *.json files, or a JSONL file "
             "(one serialised schema -- or {name, schema} wrapper -- per line)",
    )
    ingest_parser.add_argument(
        "--db", required=True,
        help="SQLite repository path (created if missing)",
    )
    ingest_parser.add_argument(
        "--backend", choices=("auto", "sqlite", "pooled"), default="auto",
        help="storage backend for --db (auto picks the legacy single-"
             "connection store)",
    )
    ingest_parser.add_argument(
        "--pool-size", type=int, default=4,
        help="SQLite connections for --backend pooled",
    )
    ingest_parser.add_argument(
        "--chunk-size", type=int, default=256,
        help="schemata per backend transaction",
    )
    ingest_parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial",
        help="how to fan out fingerprint precomputation",
    )
    ingest_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for --executor thread/process",
    )
    ingest_parser.add_argument(
        "--no-fingerprints", action="store_true",
        help="skip fingerprint precomputation (the first corpus refresh "
             "will derive them on the query path instead)",
    )
    ingest_parser.add_argument(
        "--json", action="store_true",
        help="print the ingest report as JSON",
    )
    ingest_parser.set_defaults(handler=_cmd_ingest)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
