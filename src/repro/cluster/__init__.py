"""Schema clustering: overlap distances, clusterers, quality, COI proposal."""

from repro.cluster.coi import CoiProposal, propose_cois
from repro.cluster.distance import (
    DistanceMatrix,
    MatchOverlapDistance,
    TermVectorDistance,
)
from repro.cluster.hierarchical import Dendrogram, Merge, agglomerative
from repro.cluster.kmedoids import KMedoidsResult, k_medoids
from repro.cluster.quality import adjusted_rand_index, cluster_purity, silhouette

__all__ = [
    "CoiProposal",
    "Dendrogram",
    "DistanceMatrix",
    "KMedoidsResult",
    "MatchOverlapDistance",
    "Merge",
    "TermVectorDistance",
    "adjusted_rand_index",
    "agglomerative",
    "cluster_purity",
    "k_medoids",
    "propose_cois",
    "silhouette",
]
