"""COI (community of interest) proposal from schema clusters.

Section 2: "a schema repository such as the MDR could automatically propose
new COIs by clustering the schemata into related groups"; section 5 adds
that tight clusters reveal "the most promising ... candidates for
integration".

A cluster becomes a COI proposal when it is big enough to be worth convening
and cohesive enough that a community vocabulary is feasible.  Cohesion is
the mean intra-cluster similarity (1 - distance); the returned proposals are
ranked most-cohesive first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import DistanceMatrix
from repro.cluster.hierarchical import agglomerative

__all__ = ["CoiProposal", "propose_cois"]


@dataclass(frozen=True)
class CoiProposal:
    """One proposed community of interest."""

    members: frozenset[str]
    cohesion: float

    @property
    def size(self) -> int:
        return len(self.members)

    def describe(self) -> str:
        names = ", ".join(sorted(self.members))
        return f"COI({self.size} systems, cohesion {self.cohesion:.2f}): {names}"


def _cohesion(distances: DistanceMatrix, members: set[str]) -> float:
    indices = [distances.names.index(name) for name in members]
    if len(indices) < 2:
        return 0.0
    block = distances.values[np.ix_(indices, indices)]
    upper = block[np.triu_indices(len(indices), k=1)]
    return float(1.0 - upper.mean())


def propose_cois(
    distances: DistanceMatrix,
    n_clusters: int | None = None,
    min_size: int = 2,
    min_cohesion: float = 0.3,
    linkage: str = "average",
) -> list[CoiProposal]:
    """Cluster the registry and keep clusters worth convening.

    ``n_clusters`` defaults to a heuristic sqrt(n); proposals below
    ``min_size`` members or ``min_cohesion`` mean similarity are dropped.
    """
    n = len(distances)
    if n == 0:
        return []
    k = n_clusters if n_clusters is not None else max(1, round(n ** 0.5))
    dendrogram = agglomerative(distances, linkage=linkage)
    clusters = dendrogram.cut_k(min(k, n))
    proposals = [
        CoiProposal(members=frozenset(cluster), cohesion=_cohesion(distances, cluster))
        for cluster in clusters
        if len(cluster) >= min_size
    ]
    proposals = [p for p in proposals if p.cohesion >= min_cohesion]
    return sorted(proposals, key=lambda p: (-p.cohesion, sorted(p.members)[0]))
