"""Inter-schema distances from overlap: the clustering substrate.

Section 5: "Numeric characterizations of overlap could also be used as
inter-schema distance metrics by a clustering algorithm."

Two distance families are provided:

* :class:`TermVectorDistance` -- cheap: cosine distance between schema-level
  TF-IDF vectors (each schema's names + documentation as one document).
  This is what scales to "thousands of schemata" in a registry.
* :class:`MatchOverlapDistance` -- faithful: run the match engine on each
  pair and use ``1 - harmonic mean of matched fractions``.  Quadratic in
  engine runs; intended for shortlists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.matchers.profile import build_profile
from repro.schema.schema import Schema
from repro.text.tfidf import TfidfModel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.match.engine import HarmonyMatchEngine
    from repro.service import MatchService

__all__ = ["DistanceMatrix", "TermVectorDistance", "MatchOverlapDistance"]


class DistanceMatrix:
    """A labelled symmetric distance matrix with zero diagonal."""

    def __init__(self, names: list[str], distances: np.ndarray):
        distances = np.asarray(distances, dtype=float)
        if distances.shape != (len(names), len(names)):
            raise ValueError(
                f"distance shape {distances.shape} does not match {len(names)} names"
            )
        if not np.allclose(distances, distances.T, atol=1e-9):
            raise ValueError("distance matrix must be symmetric")
        if not np.allclose(np.diag(distances), 0.0, atol=1e-9):
            raise ValueError("distance matrix must have a zero diagonal")
        if distances.size and distances.min() < -1e-9:
            raise ValueError("distances must be non-negative")
        self.names = list(names)
        self.values = distances
        self._index = {name: i for i, name in enumerate(self.names)}

    def distance(self, left: str, right: str) -> float:
        return float(self.values[self._index[left], self._index[right]])

    def __len__(self) -> int:
        return len(self.names)


class TermVectorDistance:
    """Cosine distance between whole-schema TF-IDF term vectors."""

    def __init__(self, include_documentation: bool = True):
        self.include_documentation = include_documentation

    def _document(self, schema: Schema) -> list[str]:
        profile = build_profile(schema)
        terms: list[str] = []
        for name_terms in profile.name_terms:
            terms.extend(name_terms)
        if self.include_documentation:
            for doc_terms in profile.doc_terms:
                terms.extend(doc_terms)
        return terms

    def matrix(self, schemata: dict[str, Schema]) -> DistanceMatrix:
        names = sorted(schemata)
        documents = [self._document(schemata[name]) for name in names]
        model = TfidfModel(documents)
        vectors = model.matrix(documents)
        similarity = np.asarray((vectors @ vectors.T).todense(), dtype=float)
        np.clip(similarity, 0.0, 1.0, out=similarity)
        distances = 1.0 - similarity
        np.fill_diagonal(distances, 0.0)
        # Numerical symmetry guard.
        distances = 0.5 * (distances + distances.T)
        return DistanceMatrix(names, distances)


class MatchOverlapDistance:
    """1 - harmonic mean of the two matched-element fractions per pair.

    Pairs run through the (given or fresh) service's auto-routed MATCH --
    large shortlist members take the blocked fast path -- unless an
    explicit ``engine`` pins the exact grid.
    """

    def __init__(
        self,
        engine: "HarmonyMatchEngine | None" = None,
        threshold: float = 0.13,
        service: "MatchService | None" = None,
    ):
        if engine is None:
            from repro.service import MatchService

            self._service = service if service is not None else MatchService()
            self.engine = self._service.engine()
        else:
            self._service = None
            self.engine = engine
        self.threshold = threshold

    def pair_distance(self, left: Schema, right: Schema) -> float:
        if self._service is not None:
            result = self._service.match_pair(left, right).result
        else:
            result = self.engine.match(left, right)
        source_fraction = len(result.matched_source_ids(self.threshold)) / max(
            len(left), 1
        )
        target_fraction = len(result.matched_target_ids(self.threshold)) / max(
            len(right), 1
        )
        if source_fraction + target_fraction == 0:
            return 1.0
        harmonic = (
            2 * source_fraction * target_fraction / (source_fraction + target_fraction)
        )
        return 1.0 - harmonic

    def matrix(self, schemata: dict[str, Schema]) -> DistanceMatrix:
        names = sorted(schemata)
        size = len(names)
        distances = np.zeros((size, size))
        for i in range(size):
            for j in range(i + 1, size):
                value = self.pair_distance(schemata[names[i]], schemata[names[j]])
                distances[i, j] = value
                distances[j, i] = value
        return DistanceMatrix(names, distances)
