"""Agglomerative hierarchical clustering, from scratch.

Written against :class:`~repro.cluster.distance.DistanceMatrix` with
single / complete / average linkage.  The full merge history (a dendrogram)
is kept so callers can cut at any cluster count or height -- which is how a
CIO explores "the big picture view of enterprise data sources" at several
granularities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import DistanceMatrix

__all__ = ["Merge", "Dendrogram", "agglomerative"]

_LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters ``left`` and ``right`` at ``height``."""

    left: int
    right: int
    height: float
    new_id: int


class Dendrogram:
    """The merge tree; supports cutting into flat clusterings."""

    def __init__(self, names: list[str], merges: list[Merge]):
        self.names = list(names)
        self.merges = list(merges)

    def cut_k(self, k: int) -> list[set[str]]:
        """Flat clustering with exactly ``k`` clusters (1 <= k <= n)."""
        n = len(self.names)
        if not 1 <= k <= n:
            raise ValueError(f"k must be in [1, {n}], got {k}")
        members: dict[int, set[str]] = {
            i: {name} for i, name in enumerate(self.names)
        }
        for merge in self.merges[: n - k]:
            members[merge.new_id] = members.pop(merge.left) | members.pop(merge.right)
        return sorted(members.values(), key=lambda cluster: sorted(cluster)[0])

    def cut_height(self, height: float) -> list[set[str]]:
        """Flat clustering keeping merges at or below ``height``."""
        members: dict[int, set[str]] = {
            i: {name} for i, name in enumerate(self.names)
        }
        for merge in self.merges:
            if merge.height > height:
                break
            members[merge.new_id] = members.pop(merge.left) | members.pop(merge.right)
        return sorted(members.values(), key=lambda cluster: sorted(cluster)[0])

    def heights(self) -> list[float]:
        return [merge.height for merge in self.merges]


def agglomerative(
    distances: DistanceMatrix, linkage: str = "average"
) -> Dendrogram:
    """Cluster a distance matrix agglomeratively.

    O(n^3) in the naive formulation used here -- entirely adequate for
    registry-shortlist scale (hundreds), and dependency-free.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; options: {_LINKAGES}")
    n = len(distances)
    if n == 0:
        return Dendrogram([], [])

    # Active clusters: id -> member leaf indices; ids >= n are merged nodes.
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    base = distances.values
    merges: list[Merge] = []
    next_id = n

    def cluster_distance(left_id: int, right_id: int) -> float:
        block = base[np.ix_(members[left_id], members[right_id])]
        if linkage == "single":
            return float(block.min())
        if linkage == "complete":
            return float(block.max())
        return float(block.mean())

    while len(members) > 1:
        best: tuple[float, int, int] | None = None
        active = sorted(members)
        for i, left_id in enumerate(active):
            for right_id in active[i + 1 :]:
                candidate = cluster_distance(left_id, right_id)
                if best is None or candidate < best[0]:
                    best = (candidate, left_id, right_id)
        assert best is not None
        height, left_id, right_id = best
        members[next_id] = members.pop(left_id) + members.pop(right_id)
        merges.append(
            Merge(left=left_id, right=right_id, height=height, new_id=next_id)
        )
        next_id += 1

    return Dendrogram(distances.names, merges)
