"""k-medoids clustering (PAM-style) over a distance matrix.

An alternative flat clusterer for registry analysis: medoids are actual
schemata, so each cluster comes with a natural exemplar ("this community
looks like schema X") -- handy for CIO-facing reports.
"""

from __future__ import annotations

import random

import numpy as np

from repro.cluster.distance import DistanceMatrix

__all__ = ["KMedoidsResult", "k_medoids"]


class KMedoidsResult:
    """Flat clustering with exemplar medoids."""

    def __init__(
        self, names: list[str], medoid_indices: list[int], assignment: list[int],
        cost: float,
    ):
        self.names = list(names)
        self.medoid_indices = list(medoid_indices)
        self.assignment = list(assignment)
        self.cost = cost

    @property
    def medoids(self) -> list[str]:
        return [self.names[index] for index in self.medoid_indices]

    def clusters(self) -> list[set[str]]:
        grouped: dict[int, set[str]] = {m: set() for m in range(len(self.medoid_indices))}
        for index, cluster in enumerate(self.assignment):
            grouped[cluster].add(self.names[index])
        return sorted(grouped.values(), key=lambda cluster: sorted(cluster)[0])


def _total_cost(values: np.ndarray, medoids: list[int]) -> tuple[float, list[int]]:
    block = values[:, medoids]
    assignment = block.argmin(axis=1)
    cost = float(block[np.arange(values.shape[0]), assignment].sum())
    return cost, assignment.tolist()


def k_medoids(
    distances: DistanceMatrix,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
) -> KMedoidsResult:
    """PAM with greedy swap improvement; deterministic given the seed."""
    n = len(distances)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = random.Random(seed)
    values = distances.values
    medoids = sorted(rng.sample(range(n), k))
    cost, assignment = _total_cost(values, medoids)

    for _ in range(max_iterations):
        improved = False
        for position in range(k):
            for candidate in range(n):
                if candidate in medoids:
                    continue
                trial = list(medoids)
                trial[position] = candidate
                trial_cost, trial_assignment = _total_cost(values, trial)
                if trial_cost + 1e-12 < cost:
                    medoids, cost, assignment = trial, trial_cost, trial_assignment
                    improved = True
        if not improved:
            break

    return KMedoidsResult(distances.names, medoids, assignment, cost)
