"""Clustering quality: silhouette, purity, and agreement with planted labels."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.cluster.distance import DistanceMatrix

__all__ = ["silhouette", "cluster_purity", "adjusted_rand_index"]


def _assignment_of(clusters: list[set[str]], names: list[str]) -> list[int]:
    of: dict[str, int] = {}
    for index, cluster in enumerate(clusters):
        for name in cluster:
            of[name] = index
    missing = [name for name in names if name not in of]
    if missing:
        raise ValueError(f"clustering does not cover: {missing[:5]}")
    return [of[name] for name in names]


def silhouette(distances: DistanceMatrix, clusters: list[set[str]]) -> float:
    """Mean silhouette coefficient in [-1, 1]; higher is better separated.

    Singleton clusters contribute 0 (the standard convention).
    """
    names = distances.names
    assignment = np.array(_assignment_of(clusters, names))
    values = distances.values
    scores: list[float] = []
    for i in range(len(names)):
        own = assignment == assignment[i]
        own[i] = False
        if not own.any():
            scores.append(0.0)
            continue
        a = values[i, own].mean()
        b = np.inf
        for other in set(assignment) - {assignment[i]}:
            mask = assignment == other
            b = min(b, values[i, mask].mean())
        if not np.isfinite(b):
            scores.append(0.0)
            continue
        denominator = max(a, b)
        scores.append(0.0 if denominator == 0 else (b - a) / denominator)
    if not scores:
        return 0.0
    return float(np.mean(scores))


def cluster_purity(
    clusters: list[set[str]], truth_label_of: dict[str, int]
) -> float:
    """Weighted majority-label purity against planted labels."""
    total = 0
    agreeing = 0
    for cluster in clusters:
        labels = Counter(truth_label_of[name] for name in cluster)
        if not labels:
            continue
        agreeing += labels.most_common(1)[0][1]
        total += sum(labels.values())
    if total == 0:
        return 0.0
    return agreeing / total


def adjusted_rand_index(
    clusters: list[set[str]], truth_label_of: dict[str, int]
) -> float:
    """ARI between a clustering and planted labels (1 = identical)."""
    names = sorted(truth_label_of)
    predicted = _assignment_of(clusters, names)
    actual = [truth_label_of[name] for name in names]

    def comb2(value: int) -> float:
        return value * (value - 1) / 2.0

    contingency: Counter[tuple[int, int]] = Counter(zip(predicted, actual))
    sum_cells = sum(comb2(count) for count in contingency.values())
    predicted_counts = Counter(predicted)
    actual_counts = Counter(actual)
    sum_predicted = sum(comb2(count) for count in predicted_counts.values())
    sum_actual = sum(comb2(count) for count in actual_counts.values())
    n_pairs = comb2(len(names))
    if n_pairs == 0:
        return 1.0
    expected = sum_predicted * sum_actual / n_pairs
    maximum = 0.5 * (sum_predicted + sum_actual)
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)
