"""Corpus matching: persistent indexing and top-k retrieval over a registry.

The glue between the metadata repository (schemata + match knowledge) and
the match service: :class:`CorpusIndex` keeps a lazily refreshed,
fingerprint-persisted inverted index over every registered schema and
serves the top-k retrieval stage of ``MatchService.corpus_match``.  See
``docs/repository.md``.
"""

from repro.corpus.index import (
    FINGERPRINT_FORMAT_VERSION,
    CorpusIndex,
    CorpusRefresh,
)

__all__ = ["FINGERPRINT_FORMAT_VERSION", "CorpusIndex", "CorpusRefresh"]
