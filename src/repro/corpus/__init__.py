"""Corpus matching: persistent indexing and top-k retrieval over a registry.

The glue between the metadata repository (schemata + match knowledge) and
the match service: :class:`CorpusIndex` keeps a lazily refreshed,
fingerprint-persisted inverted index over every registered schema and
serves the top-k retrieval stage of ``MatchService.corpus_match``.
:class:`ShardedCorpusIndex` is the partitioned variant (exact merged
retrieval, per-shard refresh, optional :class:`CorpusRefreshWorker`
keeping shards warm off the request path), and :func:`bulk_ingest` is
the batched registration pipeline behind ``repro ingest``.  See
``docs/repository.md`` and ``docs/serving.md``.
"""

from repro.corpus.index import (
    FINGERPRINT_FORMAT_VERSION,
    CorpusIndex,
    CorpusRefresh,
    build_fingerprint,
)
from repro.corpus.ingest import IngestReport, bulk_ingest, iter_schema_payloads
from repro.corpus.sharding import (
    CorpusRefreshWorker,
    RefreshWorkerStats,
    ShardedCorpusIndex,
    ShardStats,
    shard_of_name,
)

__all__ = [
    "FINGERPRINT_FORMAT_VERSION",
    "CorpusIndex",
    "CorpusRefresh",
    "CorpusRefreshWorker",
    "IngestReport",
    "RefreshWorkerStats",
    "ShardStats",
    "ShardedCorpusIndex",
    "build_fingerprint",
    "bulk_ingest",
    "iter_schema_payloads",
    "shard_of_name",
]
