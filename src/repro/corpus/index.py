"""The persistent corpus index: top-k schema retrieval over a repository.

The paper's section-5 registry scenario -- hundreds to thousands of
registered schemata, matched against routinely rather than one pair at a
time -- needs a retrieval stage in front of matching: "complementary search
tools ... to locate potential match candidates from a larger pool of
schemata".  :class:`CorpusIndex` is that stage, bound to a
:class:`~repro.repository.store.MetadataRepository`:

* each registered schema is profiled ONCE into a term *fingerprint*
  (the pipeline-normalised term bag of :func:`repro.search.index.schema_terms`
  plus a content hash), persisted through the repository backend -- on the
  SQLite backend fingerprints survive process restarts, so reopening a
  500-schema repository rebuilds the index from stored term bags without
  re-deserialising or re-profiling a single schema;
* the in-memory inverted index (:class:`~repro.search.index.SchemaIndex`)
  is rebuilt *lazily*: every query first compares the repository's
  :attr:`~repro.repository.store.MetadataRepository.generation` clock
  against the generation the index was built at, and refreshes
  incrementally (only added/removed/re-registered names are touched);
* :meth:`CorpusIndex.top_candidates` runs schema-as-query BM25 retrieval
  ("simply use one's target schema as the 'query term'", section 2) and
  returns the ranked candidate schemata that
  ``MatchService.corpus_match`` then actually matches.

The lifecycle (build -> persist -> stale -> incremental refresh) is
documented with a worked example in ``docs/repository.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import Counter
from dataclasses import dataclass

from repro.repository.store import MetadataRepository
from repro.schema.schema import Schema
from repro.schema.serialize import schema_from_dict
from repro.search.index import SchemaIndex, schema_terms
from repro.search.query import SchemaQuery
from repro.search.rank import SchemaSearchEngine, SearchHit

__all__ = [
    "FINGERPRINT_FORMAT_VERSION",
    "CorpusRefresh",
    "CorpusIndex",
    "payload_hash",
]

#: Bumped whenever the term derivation changes incompatibly; fingerprints
#: written under another version are re-derived, not trusted.
FINGERPRINT_FORMAT_VERSION = 1


def payload_hash(payload: dict) -> str:
    """Content hash of a serialised schema (order-independent).

    The identity the whole subsystem keys on: fingerprints persist it,
    refresh compares it, and the service's inline-source self-exclusion
    reuses it (imported there as ``corpus_payload_hash``).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CorpusRefresh:
    """What one :meth:`CorpusIndex.refresh` actually did."""

    n_indexed: int            # index size after the refresh
    n_added: int              # entries (re)built this refresh
    n_removed: int            # entries dropped (unregistered schemata)
    n_from_fingerprints: int  # of n_added: reloaded from persisted term bags
    n_derived: int            # of n_added: profiled from the live schema
    elapsed_seconds: float

    @property
    def was_noop(self) -> bool:
        return self.n_added == 0 and self.n_removed == 0


class CorpusIndex:
    """A lazily maintained inverted index over every registered schema.

    Parameters
    ----------
    repository:
        The :class:`MetadataRepository` to index.  The index never mutates
        the registry; it only reads schemata and reads/writes fingerprints.

    One index may be shared across threads (the serving tier does): the
    refresh/migration path and every read that consults the inverted index
    are serialised by an internal lock, so a registration landing mid-query
    can never expose half-rebuilt postings.
    """

    def __init__(self, repository: MetadataRepository):
        self.repository = repository
        self._index = SchemaIndex()
        self._built_generation: int | None = None
        #: Content hash each indexed entry was built from (the per-entry
        #: staleness signal; see :meth:`refresh`).
        self._hashes: dict[str, str] = {}
        self.last_refresh: CorpusRefresh | None = None
        #: Guards the inverted index, the hash map, and the generation
        #: watermark.  Reentrant: readers refresh first, under one lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the registry changed since the index was last built."""
        return self._built_generation != self.repository.generation

    def refresh(self, force: bool = False) -> CorpusRefresh:
        """Bring the index in sync with the repository (incrementally).

        A fresh index returns a no-op refresh immediately; a stale one
        diffs indexed names against registered names and touches only the
        difference.  Unchanged entries -- the common case after one
        register into a large corpus -- are not re-read at all.
        """
        with self._lock:
            return self._refresh_locked(force)

    def _refresh_locked(self, force: bool) -> CorpusRefresh:
        started = time.perf_counter()
        # Capture the clock ONCE, BEFORE reading the registry (on a
        # file-backed store each clock read is a real query, and this
        # runs per retrieval): a register landing mid-refresh then leaves
        # the index stamped at the older generation, so the next query
        # refreshes again (over-refresh is safe; stamping the
        # post-refresh clock would mark unseen registrations as indexed
        # forever).  MappingGraph.refresh orders its clocks the same way.
        generation = self.repository.generation
        if not force and self._built_generation == generation:
            refresh = CorpusRefresh(
                n_indexed=len(self._index),
                n_added=0,
                n_removed=0,
                n_from_fingerprints=0,
                n_derived=0,
                elapsed_seconds=time.perf_counter() - started,
            )
            self.last_refresh = refresh
            return refresh

        registered = set(self.repository.schema_names())
        indexed = set(self._index.names)
        removed = indexed - registered
        for name in removed:
            self._index.remove(name)
            self._hashes.pop(name, None)
        # An indexed entry is stale when the persisted fingerprint hash no
        # longer matches the hash this index built from: re-registering
        # changed content drops the fingerprint (hash becomes absent), and
        # a *sibling* index over the same repository may already have
        # re-derived and re-persisted it (hash becomes different) -- both
        # must rebuild here, unchanged entries are not touched at all.
        persisted = self.repository.fingerprint_hashes()
        stale = {
            name
            for name in indexed & registered
            if persisted.get(name) != self._hashes.get(name)
        }
        from_fingerprints = 0
        to_persist: dict[str, dict] = {}
        for name in sorted((registered - indexed) | stale):
            if self._load_fingerprint(name):
                from_fingerprints += 1
            else:
                to_persist[name] = self._derive(name)
        if to_persist:
            # One transaction for the whole rebuild, not one commit per
            # schema (a cold build over N schemata is N fingerprints).
            self.repository.put_fingerprints(to_persist)
        derived = len(to_persist)
        self._built_generation = generation
        refresh = CorpusRefresh(
            n_indexed=len(self._index),
            n_added=from_fingerprints + derived,
            n_removed=len(removed),
            n_from_fingerprints=from_fingerprints,
            n_derived=derived,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.last_refresh = refresh
        return refresh

    def _load_fingerprint(self, name: str) -> bool:
        """Index one schema from its persisted fingerprint, if trustworthy.

        A fingerprint is trusted only when its format version matches and
        its content hash equals the hash of the stored schema payload --
        externally edited stores fall back to re-derivation, never to
        silently stale postings.
        """
        fingerprint = self.repository.get_fingerprint(name)
        if (
            fingerprint is None
            or fingerprint.get("format_version") != FINGERPRINT_FORMAT_VERSION
        ):
            return False
        payload = self.repository.schema_payload(name)
        if fingerprint.get("hash") != payload_hash(payload):
            return False
        self._index.add_entry(name, Counter(fingerprint["terms"]))
        self._hashes[name] = fingerprint["hash"]
        return True

    def _derive(self, name: str) -> dict:
        """Profile one schema into the index; returns its fingerprint payload."""
        payload = self.repository.schema_payload(name)
        schema = schema_from_dict(payload)
        terms, _root_terms = schema_terms(schema)
        content_hash = payload_hash(payload)
        self._index.add_entry(name, terms)
        self._hashes[name] = content_hash
        return {
            "format_version": FINGERPRINT_FORMAT_VERSION,
            "hash": content_hash,
            "n_terms": sum(terms.values()),
            "terms": dict(terms),
        }

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def top_candidates(
        self,
        query: Schema,
        limit: int = 10,
        exclude: str | None = None,
    ) -> list[SearchHit]:
        """The ``limit`` registered schemata most likely to match ``query``.

        Schema-as-query BM25 over the (freshly refreshed) inverted index;
        ``exclude`` drops a registered copy of the query schema itself.
        This is the candidate-pruning stage of ``corpus_match``: everything
        outside the returned list is never matched at all.
        """
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        with self._lock:
            self._refresh_locked(force=False)
            engine = SchemaSearchEngine(self._index)
            return engine.search(SchemaQuery(query), limit=limit, exclude=exclude)

    def __len__(self) -> int:
        with self._lock:
            self._refresh_locked(force=False)
            return len(self._index)

    @property
    def names(self) -> list[str]:
        with self._lock:
            self._refresh_locked(force=False)
            return self._index.names
