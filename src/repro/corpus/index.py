"""The persistent corpus index: top-k schema retrieval over a repository.

The paper's section-5 registry scenario -- hundreds to thousands of
registered schemata, matched against routinely rather than one pair at a
time -- needs a retrieval stage in front of matching: "complementary search
tools ... to locate potential match candidates from a larger pool of
schemata".  :class:`CorpusIndex` is that stage, bound to a
:class:`~repro.repository.store.MetadataRepository`:

* each registered schema is profiled ONCE into a term *fingerprint*
  (the pipeline-normalised term bag of :func:`repro.search.index.schema_terms`
  plus a content hash), persisted through the repository backend -- on the
  SQLite backend fingerprints survive process restarts, so reopening a
  500-schema repository rebuilds the index from stored term bags without
  re-deserialising or re-profiling a single schema;
* the in-memory inverted index (:class:`~repro.search.index.SchemaIndex`)
  is rebuilt *lazily*: every query first compares the repository's
  :attr:`~repro.repository.store.MetadataRepository.generation` clock
  against the generation the index was built at, and refreshes
  incrementally (only added/removed/re-registered names are touched);
* :meth:`CorpusIndex.top_candidates` runs schema-as-query BM25 retrieval
  ("simply use one's target schema as the 'query term'", section 2) and
  returns the ranked candidate schemata that
  ``MatchService.corpus_match`` then actually matches.

**Concurrency: refresh publishes atomically.**  The index state (inverted
index, content-hash map, generation stamp) is one immutable snapshot
swapped by a single reference assignment, the same pattern as
:class:`~repro.network.graph.MappingGraph`'s adjacency cache.  Readers
with a fresh snapshot never take a lock at all; a stale reader enters the
refresh lock, where the refresher rebuilds *aside* (cloning the published
index, touching only the changed entries) and swaps.  A full forced
rebuild therefore never stalls concurrent ``top_candidates`` calls: they
keep searching the previous snapshot until the new one is published.

The lifecycle (build -> persist -> stale -> incremental refresh) is
documented with a worked example in ``docs/repository.md``; the sharded
variant that splits this index into independently refreshable partitions
lives in :mod:`repro.corpus.sharding`.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import Counter
from dataclasses import dataclass

from repro.repository.store import MetadataRepository
from repro.schema.schema import Schema
from repro.schema.serialize import schema_from_dict
from repro.search.index import SchemaIndex, schema_terms
from repro.search.query import SchemaQuery
from repro.search.rank import SchemaSearchEngine, SearchHit

__all__ = [
    "FINGERPRINT_FORMAT_VERSION",
    "CorpusRefresh",
    "CorpusIndex",
    "payload_hash",
    "build_fingerprint",
]

#: Bumped whenever the term derivation changes incompatibly; fingerprints
#: written under another version are re-derived, not trusted.
FINGERPRINT_FORMAT_VERSION = 1

#: Fingerprints persisted per backend transaction during a refresh or a
#: bulk ingest: bounds transaction size (and write-lock hold time on the
#: pooled backend) while keeping a cold build to a handful of commits.
PERSIST_CHUNK = 512


def payload_hash(payload: dict) -> str:
    """Content hash of a serialised schema (order-independent).

    The identity the whole subsystem keys on: fingerprints persist it,
    refresh compares it, and the service's inline-source self-exclusion
    reuses it (imported there as ``corpus_payload_hash``).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_fingerprint(payload: dict, content_hash: str | None = None) -> dict:
    """Derive the persistable fingerprint for one serialised schema.

    One linguistic-pipeline pass (deserialise, profile, count terms) --
    the per-schema work the index pays exactly once.  Shared by the
    refresh path here and by the bulk-ingestion pipeline
    (:mod:`repro.corpus.ingest`), which precomputes fingerprints so the
    first query over a freshly ingested corpus derives nothing.
    """
    schema = schema_from_dict(payload)
    terms, _root_terms = schema_terms(schema)
    return {
        "format_version": FINGERPRINT_FORMAT_VERSION,
        "hash": content_hash if content_hash is not None else payload_hash(payload),
        "n_terms": sum(terms.values()),
        "terms": dict(terms),
    }


@dataclass(frozen=True)
class CorpusRefresh:
    """What one :meth:`CorpusIndex.refresh` actually did."""

    n_indexed: int            # index size after the refresh
    n_added: int              # entries (re)built this refresh
    n_removed: int            # entries dropped (unregistered schemata)
    n_from_fingerprints: int  # of n_added: reloaded from persisted term bags
    n_derived: int            # of n_added: profiled from the live schema
    elapsed_seconds: float

    @property
    def was_noop(self) -> bool:
        return self.n_added == 0 and self.n_removed == 0


class _IndexState:
    """One published snapshot: index + hashes + the generation stamp.

    Treated as immutable after publication (the refresh path mutates only
    private clones); readers may use a captured state without locking.
    """

    __slots__ = ("index", "hashes", "generation")

    def __init__(
        self,
        index: SchemaIndex,
        hashes: dict[str, str],
        generation: int | None,
    ):
        self.index = index
        #: Content hash each indexed entry was built from (the per-entry
        #: staleness signal; see :meth:`CorpusIndex.refresh`).
        self.hashes = hashes
        self.generation = generation


class CorpusIndex:
    """A lazily maintained inverted index over every registered schema.

    Parameters
    ----------
    repository:
        The :class:`MetadataRepository` to index.  The index never mutates
        the registry; it only reads schemata and reads/writes fingerprints.

    One index may be shared across threads (the serving tier does):
    refreshers serialise on an internal lock and publish finished
    snapshots atomically, so a registration landing mid-query can never
    expose half-rebuilt postings -- and a reader whose snapshot is fresh
    proceeds without any locking at all.
    """

    def __init__(self, repository: MetadataRepository):
        self.repository = repository
        self._state = _IndexState(SchemaIndex(), {}, None)
        self.last_refresh: CorpusRefresh | None = None
        #: Serialises refreshers (never readers): one rebuild at a time,
        #: published by swapping :attr:`_state`.
        self._refresh_lock = threading.Lock()

    @property
    def _index(self) -> SchemaIndex:
        """The published inverted index (compat accessor for tests)."""
        return self._state.index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the registry changed since the index was last built."""
        return self._state.generation != self.repository.generation

    @property
    def built_generation(self) -> int | None:
        """The generation stamp of the published snapshot (None = never built)."""
        return self._state.generation

    def n_indexed(self) -> int:
        """Entries in the published snapshot, WITHOUT refreshing first.

        The monitoring read (``/healthz``): cheap and lock-free, possibly
        one refresh behind -- unlike ``len(index)``, which refreshes.
        """
        return len(self._state.index)

    def refresh(self, force: bool = False) -> CorpusRefresh:
        """Bring the index in sync with the repository (incrementally).

        A fresh index returns a no-op refresh immediately; a stale one
        diffs indexed names against registered names and touches only the
        difference.  Unchanged entries -- the common case after one
        register into a large corpus -- are not re-read at all.
        """
        with self._refresh_lock:
            return self._refresh_locked(force)

    def _refresh_locked(self, force: bool) -> CorpusRefresh:
        started = time.perf_counter()
        # Capture the clock ONCE, BEFORE reading the registry (on a
        # file-backed store each clock read is a real query, and this
        # runs per retrieval): a register landing mid-refresh then leaves
        # the index stamped at the older generation, so the next query
        # refreshes again (over-refresh is safe; stamping the
        # post-refresh clock would mark unseen registrations as indexed
        # forever).  MappingGraph.refresh orders its clocks the same way.
        generation = self.repository.generation
        state = self._state
        if not force and state.generation == generation:
            refresh = CorpusRefresh(
                n_indexed=len(state.index),
                n_added=0,
                n_removed=0,
                n_from_fingerprints=0,
                n_derived=0,
                elapsed_seconds=time.perf_counter() - started,
            )
            self.last_refresh = refresh
            return refresh

        registered = set(self.repository.schema_names())
        indexed = set(state.index.names)
        removed = indexed - registered
        # An indexed entry is stale when the persisted fingerprint hash no
        # longer matches the hash this index built from: re-registering
        # changed content drops the fingerprint (hash becomes absent), and
        # a *sibling* index over the same repository may already have
        # re-derived and re-persisted it (hash becomes different) -- both
        # must rebuild here, unchanged entries are not touched at all.
        persisted = self.repository.fingerprint_hashes()
        stale = {
            name
            for name in indexed & registered
            if persisted.get(name) != state.hashes.get(name)
        }
        to_build = sorted((registered - indexed) | stale)
        if not removed and not to_build:
            # Membership and content unchanged (a no-op generation bump,
            # or force over a fresh index): re-stamp without cloning.
            self._state = _IndexState(state.index, state.hashes, generation)
            refresh = CorpusRefresh(
                n_indexed=len(state.index),
                n_added=0,
                n_removed=0,
                n_from_fingerprints=0,
                n_derived=0,
                elapsed_seconds=time.perf_counter() - started,
            )
            self.last_refresh = refresh
            return refresh

        # Rebuild ASIDE: clone the published index (entries shared,
        # postings copied), touch only the difference, then publish the
        # finished snapshot in one reference swap.  Readers keep
        # searching the old snapshot the whole time.
        index = state.index.clone()
        hashes = dict(state.hashes)
        for name in removed:
            index.remove(name)
            hashes.pop(name, None)
        # Batched backend reads: one bulk fetch for the fingerprints and
        # one for the payloads, instead of two round-trips per name.
        fingerprints = self.repository.get_fingerprints(to_build)
        payloads = self.repository.schema_payloads(to_build)
        from_fingerprints = 0
        to_persist: dict[str, dict] = {}
        for name in to_build:
            payload = payloads.get(name)
            if payload is None:
                # Unregistered between the name scan and the bulk fetch;
                # the generation stamp predates that write, so the next
                # refresh accounts for it properly.
                index.remove(name)
                hashes.pop(name, None)
                continue
            content_hash = payload_hash(payload)
            fingerprint = fingerprints.get(name)
            # A fingerprint is trusted only when its format version
            # matches and its content hash equals the hash of the stored
            # payload -- externally edited stores fall back to
            # re-derivation, never to silently stale postings.
            if (
                fingerprint is None
                or fingerprint.get("format_version") != FINGERPRINT_FORMAT_VERSION
                or fingerprint.get("hash") != content_hash
            ):
                fingerprint = build_fingerprint(payload, content_hash)
                to_persist[name] = fingerprint
            else:
                from_fingerprints += 1
            index.add_entry(name, Counter(fingerprint["terms"]))
            hashes[name] = content_hash
        if to_persist:
            # Chunked bulk persistence: one backend transaction per
            # PERSIST_CHUNK fingerprints, never one commit per schema.
            names = list(to_persist)
            for start in range(0, len(names), PERSIST_CHUNK):
                self.repository.put_fingerprints(
                    {n: to_persist[n] for n in names[start : start + PERSIST_CHUNK]}
                )
        derived = len(to_persist)
        self._state = _IndexState(index, hashes, generation)  # atomic publish
        refresh = CorpusRefresh(
            n_indexed=len(index),
            n_added=from_fingerprints + derived,
            n_removed=len(removed),
            n_from_fingerprints=from_fingerprints,
            n_derived=derived,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.last_refresh = refresh
        return refresh

    def _fresh_state(self) -> _IndexState:
        """The published snapshot, refreshed first if the registry moved.

        The reader fast path: a fresh snapshot is returned without taking
        any lock (one clock read); only stale readers serialise on the
        refresh lock.
        """
        state = self._state
        if state.generation == self.repository.generation:
            return state
        with self._refresh_lock:
            self._refresh_locked(force=False)
            return self._state

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def top_candidates(
        self,
        query: Schema,
        limit: int = 10,
        exclude: str | None = None,
    ) -> list[SearchHit]:
        """The ``limit`` registered schemata most likely to match ``query``.

        Schema-as-query BM25 over the (freshly refreshed) inverted index;
        ``exclude`` drops a registered copy of the query schema itself.
        This is the candidate-pruning stage of ``corpus_match``: everything
        outside the returned list is never matched at all.
        """
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        state = self._fresh_state()
        engine = SchemaSearchEngine(state.index)
        return engine.search(SchemaQuery(query), limit=limit, exclude=exclude)

    def __len__(self) -> int:
        return len(self._fresh_state().index)

    @property
    def names(self) -> list[str]:
        return self._fresh_state().index.names
