"""Bulk corpus ingestion: many schemata into a repository, fast.

The paper's repository is fed by harvest jobs, not by analysts clicking
"register" -- an enterprise onboarding drops hundreds to thousands of
schemata at once.  Registering them one :meth:`MetadataRepository.register`
call at a time pays two write transactions per schema (payload + clock,
fingerprint drop) and then a third when the corpus index derives the
fingerprint lazily.  This module is the batched path:

1. :func:`iter_schema_payloads` streams ``(name, payload)`` pairs from a
   directory of schema JSON files or a JSONL file (one schema per line);
2. fingerprints are precomputed with
   :func:`~repro.corpus.index.build_fingerprint` -- serially or fanned out
   across a worker pool, the :class:`~repro.pipeline.batch.BatchMatchRunner`
   executor convention (``serial`` / ``thread`` / ``process``);
3. :meth:`MetadataRepository.bulk_register_schemas` lands each chunk of
   payloads *and* their fingerprints in ONE backend transaction (one
   ``BEGIN IMMEDIATE`` per chunk on SQLite, the sequence-block style of
   ``store_matches``), bumping the generation once per payload so corpus
   staleness semantics are unchanged.

The result is a corpus that is registered AND index-warm: the first
refresh after an ingest reloads every fingerprint instead of deriving
them on the query path.  ``repro ingest`` is the CLI face; bench E21
holds the bulk path to >=5x the loop-registration rate at 10k schemata.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.corpus.index import build_fingerprint
from repro.repository.store import MetadataRepository
from repro.schema.schema import Schema
from repro.schema.serialize import schema_to_dict

__all__ = ["IngestReport", "bulk_ingest", "iter_schema_payloads"]

_EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class IngestReport:
    """What one :func:`bulk_ingest` run did, and how fast."""

    n_read: int                  # items consumed from the input
    n_written: int               # payloads actually written (changed/new)
    n_skipped: int               # identical payloads skipped by the store
    n_fingerprinted: int         # fingerprints precomputed and stored
    fingerprint_seconds: float   # spent deriving fingerprints
    register_seconds: float      # spent inside bulk_register_schemas
    elapsed_seconds: float       # end-to-end wall time
    schemata_per_second: float   # n_read / elapsed_seconds

    def to_dict(self) -> dict:
        return {
            "n_read": self.n_read,
            "n_written": self.n_written,
            "n_skipped": self.n_skipped,
            "n_fingerprinted": self.n_fingerprinted,
            "fingerprint_seconds": self.fingerprint_seconds,
            "register_seconds": self.register_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "schemata_per_second": self.schemata_per_second,
        }


def _payload_of(item) -> tuple[str, dict]:
    """Normalise one ingest item to ``(name, payload_dict)``."""
    if isinstance(item, Schema):
        return item.name, schema_to_dict(item)
    name, payload = item
    if isinstance(payload, Schema):
        payload = schema_to_dict(payload)
    return name, payload


def iter_schema_payloads(path: str | Path) -> Iterator[tuple[str, dict]]:
    """Stream ``(name, payload)`` pairs from a directory or JSONL file.

    * a **directory**: every ``*.json`` file inside (sorted, not
      recursive) is read as one serialised schema payload;
    * a **JSONL file**: each non-blank line is either a bare schema
      payload or a ``{"name": ..., "schema": {...}}`` wrapper (the
      wrapper wins when a harvest job registers under a curated name).

    The payload's own ``name`` field is used when no wrapper overrides
    it.  Payloads are passed through untouched -- validation happens when
    the corpus index deserialises them, keeping ingest I/O-bound.
    """
    path = Path(path)
    if path.is_dir():
        for file in sorted(path.glob("*.json")):
            payload = json.loads(file.read_text(encoding="utf-8"))
            yield _named_payload(payload, source=str(file))
        return
    if not path.is_file():
        raise FileNotFoundError(f"no schema directory or JSONL file at {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            yield _named_payload(payload, source=f"{path}:{line_number}")


def _named_payload(payload: dict, source: str) -> tuple[str, dict]:
    if "schema" in payload and "elements" not in payload:
        name = payload.get("name") or payload["schema"].get("name")
        payload = payload["schema"]
    else:
        name = payload.get("name")
    if not name:
        raise ValueError(f"schema payload at {source} has no name")
    return str(name), payload


def bulk_ingest(
    repository: MetadataRepository,
    items: Iterable,
    chunk_size: int = 256,
    executor: str = "serial",
    max_workers: int | None = None,
    fingerprint: bool = True,
) -> IngestReport:
    """Ingest many schemata through the batched registration path.

    ``items`` may yield :class:`Schema` objects, ``(name, payload)``
    pairs, or ``(name, Schema)`` pairs (mixtures are fine); duplicates of
    a name collapse to the last occurrence, matching re-registration
    semantics.  With ``fingerprint=True`` (the default) term-bag
    fingerprints are precomputed -- via the named executor -- and stored
    in the same transactions as the payloads, so the corpus index's next
    refresh is a pure reload.  ``fingerprint=False`` defers derivation to
    the first refresh (rarely what an ingest job wants, but the knob the
    E21 bench uses to time registration and fingerprinting separately).
    """
    if executor not in _EXECUTORS:
        raise ValueError(
            f"executor must be one of {_EXECUTORS}, got {executor!r}"
        )
    started = time.perf_counter()
    payloads: dict[str, dict] = {}
    n_read = 0
    for item in items:
        name, payload = _payload_of(item)
        payloads[name] = payload
        n_read += 1

    fingerprints: dict[str, dict] = {}
    fingerprint_seconds = 0.0
    if fingerprint and payloads:
        fp_started = time.perf_counter()
        names = list(payloads)
        if executor == "serial":
            derived = [build_fingerprint(payloads[name]) for name in names]
        else:
            pool_cls = (
                ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
            )
            with pool_cls(max_workers=max_workers) as pool:
                derived = list(
                    pool.map(
                        build_fingerprint,
                        [payloads[name] for name in names],
                        chunksize=16,
                    )
                    if executor == "process"
                    else pool.map(
                        build_fingerprint, [payloads[name] for name in names]
                    )
                )
        fingerprints = dict(zip(names, derived))
        fingerprint_seconds = time.perf_counter() - fp_started

    register_started = time.perf_counter()
    n_written = repository.bulk_register_schemas(
        payloads.items(), chunk_size=chunk_size, fingerprints=fingerprints
    )
    register_seconds = time.perf_counter() - register_started
    elapsed = time.perf_counter() - started
    return IngestReport(
        n_read=n_read,
        n_written=n_written,
        n_skipped=len(payloads) - n_written,
        n_fingerprinted=len(fingerprints),
        fingerprint_seconds=fingerprint_seconds,
        register_seconds=register_seconds,
        elapsed_seconds=elapsed,
        schemata_per_second=(n_read / elapsed) if elapsed > 0 else 0.0,
    )
