"""Sharded corpus retrieval: partitioned indexes + background refresh.

The corpus tier between storage and serving.  :class:`~repro.corpus.index.
CorpusIndex` keeps every registered schema in ONE inverted index, so one
registration makes the whole structure stale and one refresh touches the
whole corpus' bookkeeping.  At the paper's registry scale ("hundreds to
thousands of schemata", pushed to tens of thousands by the roadmap) the
maintenance unit has to shrink; this module splits the index into N
*shards* and keeps retrieval exact:

* **Sharded index** -- :class:`ShardedCorpusIndex` partitions fingerprints
  across shards by hash range (:func:`shard_of_name` maps the 32-bit
  prefix of the name's SHA-256 onto ``n_shards`` contiguous ranges; a
  domain-aware ``shard_assign`` callable may override).  Every schema
  lives in exactly ONE shard, so global corpus statistics (document
  count, document frequency, total term mass) are plain sums over
  shards -- which is what lets per-shard retrieval merge into top-k
  results whose BM25 scores are *identical* to the unsharded engine's
  (bit-for-bit: same arithmetic, same term order, same tie-breaks; bench
  E21 asserts 1e-9).
* **Pruned exact scoring** -- the merged scorer processes query terms in
  descending score-upper-bound order (``idf * (k1+1) * min(qc, 3)`` --
  every BM25 contribution is strictly below its bound because the tf
  saturation ``tf/(tf + k1*norm)`` is strictly below 1).  Once ``limit``
  candidates hold exact scores and the remaining terms' bound sum cannot
  beat the current k-th score, the long tail of low-idf postings is
  never visited.  Documents that ARE scored get the exact
  doc-at-a-time sum in original query-term order, so pruning changes
  which documents are *visited*, never any returned score.
* **Background refresh** -- :class:`CorpusRefreshWorker` is a daemon
  thread watching the repository's generation clock and refreshing stale
  shards off the request path.  Each shard publishes its rebuilt state
  as one reference swap (the :class:`~repro.network.graph.MappingGraph`
  pattern), so a query never blocks on a refresh in progress: a reader
  whose shards are fresh searches the published snapshots lock-free, and
  the pre-scan generation-stamp ordering inherited from ``CorpusIndex``
  keeps mid-refresh registrations safe (the shard stays stamped stale
  and is caught next cycle).  Without a worker, queries fall back to
  synchronous incremental refresh -- exactly the ``CorpusIndex``
  semantics, zero stale results either way.

``MatchService(corpus_shards=N)`` serves over this index;
``repro serve --refresh-interval`` runs the worker; ``/healthz`` and
``/metrics`` surface :meth:`ShardedCorpusIndex.shard_stats` and
:meth:`CorpusRefreshWorker.stats`.  See ``docs/repository.md`` and
``docs/serving.md``.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.corpus.index import (
    FINGERPRINT_FORMAT_VERSION,
    PERSIST_CHUNK,
    CorpusRefresh,
    _IndexState,
    build_fingerprint,
    payload_hash,
)
from repro.repository.store import MetadataRepository
from repro.schema.schema import Schema
from repro.search.index import SchemaIndex
from repro.search.query import SchemaQuery
from repro.search.rank import SearchHit

__all__ = [
    "shard_of_name",
    "ShardStats",
    "RefreshWorkerStats",
    "ShardedCorpusIndex",
    "CorpusRefreshWorker",
]

#: Must mirror ``SchemaSearchEngine``'s defaults: the merged scorer
#: replicates its arithmetic exactly, so the constants must be the same
#: objects conceptually (exactness is asserted by tests and bench E21).
_K1 = 1.5
_B = 0.75


def shard_of_name(name: str, n_shards: int) -> int:
    """Hash-range shard assignment: stable, uniform, order-free.

    The first 32 bits of SHA-256 over the schema name, mapped onto
    ``n_shards`` contiguous ranges (``prefix * n_shards >> 32``).  Keyed
    on the *name* -- the stable identity fingerprints are stored under --
    so re-registering changed content never migrates a schema between
    shards; only register/unregister moves shard membership.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    prefix = int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest()[:4], "big"
    )
    return (prefix * n_shards) >> 32


@dataclass(frozen=True)
class ShardStats:
    """Published state of one shard (a monitoring read, never a refresh)."""

    shard: int                    # shard ordinal, 0-based
    n_indexed: int                # entries in the published snapshot
    built_generation: int | None  # stamp of the published snapshot
    n_refreshes: int              # rebuilds that actually touched entries
    last_refresh_seconds: float   # wall time of the last rebuild

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "n_indexed": self.n_indexed,
            "built_generation": self.built_generation,
            "n_refreshes": self.n_refreshes,
            "last_refresh_seconds": self.last_refresh_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardStats":
        return cls(
            shard=payload["shard"],
            n_indexed=payload["n_indexed"],
            built_generation=payload["built_generation"],
            n_refreshes=payload["n_refreshes"],
            last_refresh_seconds=payload["last_refresh_seconds"],
        )


@dataclass(frozen=True)
class RefreshWorkerStats:
    """Counters one :class:`CorpusRefreshWorker` has accumulated."""

    running: bool
    interval_seconds: float
    n_cycles: int            # wake-ups (timer or nudge)
    n_refreshes: int         # cycles that found staleness and refreshed
    n_errors: int            # refresh attempts that raised (worker survives)
    last_refresh_seconds: float
    last_error: str          # repr of the latest error, "" when none

    def to_dict(self) -> dict:
        return {
            "running": self.running,
            "interval_seconds": self.interval_seconds,
            "n_cycles": self.n_cycles,
            "n_refreshes": self.n_refreshes,
            "n_errors": self.n_errors,
            "last_refresh_seconds": self.last_refresh_seconds,
            "last_error": self.last_error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RefreshWorkerStats":
        return cls(
            running=payload["running"],
            interval_seconds=payload["interval_seconds"],
            n_cycles=payload["n_cycles"],
            n_refreshes=payload["n_refreshes"],
            n_errors=payload["n_errors"],
            last_refresh_seconds=payload["last_refresh_seconds"],
            last_error=payload["last_error"],
        )


class _Shard:
    """One partition: a published snapshot plus refresh counters."""

    __slots__ = ("ordinal", "state", "n_refreshes", "last_refresh_seconds")

    def __init__(self, ordinal: int):
        self.ordinal = ordinal
        self.state = _IndexState(SchemaIndex(), {}, None)
        self.n_refreshes = 0
        self.last_refresh_seconds = 0.0

    def stats(self) -> ShardStats:
        state = self.state
        return ShardStats(
            shard=self.ordinal,
            n_indexed=len(state.index),
            built_generation=state.generation,
            n_refreshes=self.n_refreshes,
            last_refresh_seconds=self.last_refresh_seconds,
        )


class ShardedCorpusIndex:
    """N hash-range partitions of the corpus index, merged exactly.

    A drop-in for :class:`~repro.corpus.index.CorpusIndex` wherever the
    retrieval surface (``top_candidates`` / ``refresh`` / ``is_stale`` /
    ``len`` / ``names``) is used: ``MatchService(corpus_shards=N)`` binds
    one under ``corpus_match`` unchanged.

    Parameters
    ----------
    repository:
        The :class:`MetadataRepository` to index.
    n_shards:
        Partition count.  ``1`` degenerates to an unsharded index (still
        with the pruned scorer).
    shard_assign:
        Optional domain-aware override: a callable mapping a schema name
        to a shard ordinal in ``[0, n_shards)``.  Keeping one enterprise
        domain in one shard makes a domain-scoped ingest invalidate one
        shard instead of all of them.  Must be stable per name; values
        outside the range raise ``ValueError`` at refresh time.
    """

    def __init__(
        self,
        repository: MetadataRepository,
        n_shards: int = 8,
        shard_assign: Callable[[str], int] | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.repository = repository
        self.n_shards = n_shards
        self._shard_assign = shard_assign
        self._shards = [_Shard(ordinal) for ordinal in range(n_shards)]
        #: Stable name -> shard memo (assignment hashes once per name,
        #: not once per refresh scan).
        self._assigned: dict[str, int] = {}
        #: Serialises refreshers (never readers); shards publish by
        #: reference swap, one at a time, as they finish.
        self._refresh_lock = threading.Lock()
        self.last_refresh: CorpusRefresh | None = None

    # ------------------------------------------------------------------
    # Shard assignment
    # ------------------------------------------------------------------
    def shard_of(self, name: str) -> int:
        """The shard ordinal a schema name lives in."""
        shard = self._assigned.get(name)
        if shard is None:
            if self._shard_assign is not None:
                shard = int(self._shard_assign(name))
                if not 0 <= shard < self.n_shards:
                    raise ValueError(
                        f"shard_assign({name!r}) returned {shard}, outside"
                        f" [0, {self.n_shards})"
                    )
            else:
                shard = shard_of_name(name, self.n_shards)
            self._assigned[name] = shard
        return shard

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether any shard predates the repository's generation clock."""
        generation = self.repository.generation
        return any(shard.state.generation != generation for shard in self._shards)

    def stale_shards(self) -> list[int]:
        """Ordinals of shards whose stamp predates the current clock."""
        generation = self.repository.generation
        return [
            shard.ordinal
            for shard in self._shards
            if shard.state.generation != generation
        ]

    def n_indexed(self) -> int:
        """Entries across published snapshots, WITHOUT refreshing first."""
        return sum(len(shard.state.index) for shard in self._shards)

    def shard_stats(self) -> list[ShardStats]:
        """Per-shard published stats (monitoring read; never refreshes)."""
        return [shard.stats() for shard in self._shards]

    def refresh(self, force: bool = False) -> CorpusRefresh:
        """Bring every shard in sync with the repository.

        One registry scan (names + fingerprint hashes) shared by all
        shards; each stale shard is then diffed and rebuilt aside --
        unchanged shards are merely re-stamped, unchanged entries inside
        a changed shard are not re-read at all.  Readers are never
        blocked: they keep searching the published snapshots until each
        shard's finished replacement is swapped in.
        """
        with self._refresh_lock:
            return self._refresh_locked(force, only=None)

    def refresh_shard(self, shard: int, force: bool = False) -> CorpusRefresh:
        """Refresh ONE shard (the others keep their published state)."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard must be in [0, {self.n_shards}), got {shard}")
        with self._refresh_lock:
            return self._refresh_locked(force, only=shard)

    def _refresh_locked(self, force: bool, only: int | None) -> CorpusRefresh:
        started = time.perf_counter()
        # Pre-scan clock capture, as in CorpusIndex._refresh_locked: a
        # register landing mid-refresh leaves its shard stamped at the
        # older generation, so the next cycle catches it (over-refresh is
        # safe; stamping the post-refresh clock would lose it forever).
        generation = self.repository.generation
        targets = (
            self._shards if only is None else [self._shards[only]]
        )
        pending = [
            shard
            for shard in targets
            if force or shard.state.generation != generation
        ]
        if not pending:
            refresh = CorpusRefresh(
                n_indexed=self.n_indexed(),
                n_added=0,
                n_removed=0,
                n_from_fingerprints=0,
                n_derived=0,
                elapsed_seconds=time.perf_counter() - started,
            )
            self.last_refresh = refresh
            return refresh

        # ONE registry scan for every pending shard.
        registered = set(self.repository.schema_names())
        persisted = self.repository.fingerprint_hashes()
        members: list[set[str]] = [set() for _ in range(self.n_shards)]
        for name in registered:
            members[self.shard_of(name)].add(name)

        n_added = n_removed = from_fingerprints = derived = 0
        to_persist: dict[str, dict] = {}
        for shard in pending:
            state = shard.state
            shard_started = time.perf_counter()
            reg = members[shard.ordinal]
            indexed = set(state.index.names)
            removed = indexed - reg
            stale = {
                name
                for name in indexed & reg
                if persisted.get(name) != state.hashes.get(name)
            }
            to_build = sorted((reg - indexed) | stale)
            if not removed and not to_build:
                # Shard content untouched by this generation: re-stamp.
                shard.state = _IndexState(state.index, state.hashes, generation)
                continue
            index = state.index.clone()
            hashes = dict(state.hashes)
            for name in removed:
                index.remove(name)
                hashes.pop(name, None)
            fingerprints = self.repository.get_fingerprints(to_build)
            payloads = self.repository.schema_payloads(to_build)
            for name in to_build:
                payload = payloads.get(name)
                if payload is None:  # unregistered between scan and fetch
                    index.remove(name)
                    hashes.pop(name, None)
                    continue
                content_hash = payload_hash(payload)
                fingerprint = fingerprints.get(name)
                if (
                    fingerprint is None
                    or fingerprint.get("format_version")
                    != FINGERPRINT_FORMAT_VERSION
                    or fingerprint.get("hash") != content_hash
                ):
                    fingerprint = build_fingerprint(payload, content_hash)
                    to_persist[name] = fingerprint
                    derived += 1
                else:
                    from_fingerprints += 1
                index.add_entry(name, Counter(fingerprint["terms"]))
                hashes[name] = content_hash
                n_added += 1
            n_removed += len(removed)
            # Atomic publish: this shard's readers flip to the finished
            # snapshot in one reference swap; other shards are untouched.
            shard.state = _IndexState(index, hashes, generation)
            shard.n_refreshes += 1
            shard.last_refresh_seconds = time.perf_counter() - shard_started

        if to_persist:
            names = list(to_persist)
            for start in range(0, len(names), PERSIST_CHUNK):
                self.repository.put_fingerprints(
                    {n: to_persist[n] for n in names[start : start + PERSIST_CHUNK]}
                )
        refresh = CorpusRefresh(
            n_indexed=self.n_indexed(),
            n_added=n_added,
            n_removed=n_removed,
            n_from_fingerprints=from_fingerprints,
            n_derived=derived,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.last_refresh = refresh
        return refresh

    def _fresh_states(self) -> list[_IndexState]:
        """Published per-shard snapshots, refreshed first if stale.

        The reader fast path: when every shard is stamped at the current
        generation the snapshots are returned without locking -- which is
        the common case whenever a :class:`CorpusRefreshWorker` keeps the
        shards warm.  The synchronous fallback (no worker, or a query
        racing ahead of it) refreshes under the lock: exact semantics,
        zero stale results, identical to ``CorpusIndex``.
        """
        generation = self.repository.generation
        states = [shard.state for shard in self._shards]
        if all(state.generation == generation for state in states):
            return states
        with self._refresh_lock:
            self._refresh_locked(force=False, only=None)
            return [shard.state for shard in self._shards]

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def top_candidates(
        self,
        query: Schema,
        limit: int = 10,
        exclude: str | None = None,
    ) -> list[SearchHit]:
        """Merged top-k retrieval, exact to the unsharded engine.

        Same contract as :meth:`CorpusIndex.top_candidates`; scores are
        bit-for-bit those of ``SchemaSearchEngine`` over one big index
        (see the module docstring for why global statistics make that
        possible and how the bound-ordered scorer prunes).
        """
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        states = self._fresh_states()
        query_terms = SchemaQuery(query).terms()
        return _merged_search(
            [state.index for state in states], query_terms, limit, exclude
        )

    def __len__(self) -> int:
        return sum(len(state.index) for state in self._fresh_states())

    @property
    def names(self) -> list[str]:
        """Every indexed name, sorted (shard partitioning has no order)."""
        found: list[str] = []
        for state in self._fresh_states():
            found.extend(state.index.names)
        return sorted(found)


def _merged_search(
    indexes: list[SchemaIndex],
    query_terms: Counter,
    limit: int,
    exclude: str | None,
) -> list[SearchHit]:
    """Exact BM25 top-k over disjoint shards with max-score pruning.

    Global statistics are sums over shards (each document lives in
    exactly one): document count ``n``, per-term document frequency, and
    the exact integer total term mass for the average length -- so every
    float this function produces equals the unsharded
    ``SchemaSearchEngine`` value bit-for-bit.  Candidate documents are
    gathered term-by-term in descending upper-bound order and scored
    EXACTLY (doc-at-a-time, original query-term order); gathering stops
    once ``limit`` exact scores exist and the remaining terms' bound sum
    cannot beat the k-th best (every real contribution is strictly below
    its bound, so no skipped document can reach, let alone beat, that
    score -- ties included).
    """
    n = sum(len(index) for index in indexes)
    if n == 0:
        return []
    total_terms = sum(index.total_terms() for index in indexes)
    average_length = (total_terms / n) or 1.0

    # Per-term global idf and score upper bound, original order kept for
    # the exact per-document summation.
    ordered: list[tuple[str, int]] = []   # (term, query_count), dict order
    idf: dict[str, float] = {}
    bound: dict[str, float] = {}
    for term, query_count in query_terms.items():
        ordered.append((term, query_count))
        df = sum(index.document_frequency(term) for index in indexes)
        if df == 0:
            continue
        value = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        idf[term] = value
        bound[term] = value * (_K1 + 1) * min(query_count, 3)

    def exact_score(document: Counter, doc_length: int) -> float:
        # Mirror SchemaSearchEngine._bm25 verbatim: same expressions,
        # same accumulation order -> identical floats.
        score = 0.0
        for term, query_count in ordered:
            term_frequency = document.get(term, 0)
            if term_frequency == 0:
                continue
            numerator = term_frequency * (_K1 + 1)
            denominator = term_frequency + _K1 * (
                1 - _B + _B * doc_length / average_length
            )
            score += idf[term] * numerator / denominator * min(query_count, 3)
        return score

    by_bound = sorted(bound, key=lambda term: (-bound[term], term))
    # suffix[i] = sum of bounds from position i on (the best any document
    # first reachable at position i could possibly score).
    suffix = [0.0] * (len(by_bound) + 1)
    for position in range(len(by_bound) - 1, -1, -1):
        suffix[position] = suffix[position + 1] + bound[by_bound[position]]

    heap: list[float] = []  # min-heap over the top-`limit` exact scores
    hits: list[SearchHit] = []
    seen: set[str] = set()
    for position, term in enumerate(by_bound):
        if len(heap) == limit and suffix[position] <= heap[0]:
            break  # nothing unseen can beat the current k-th score
        for index in indexes:
            for name in index.posting(term):
                if name == exclude or name in seen:
                    continue
                seen.add(name)
                entry = index.entry(name)
                score = exact_score(entry.terms, entry.n_terms)
                if score > 0:
                    hits.append(SearchHit(schema_name=name, score=score))
                    if len(heap) < limit:
                        heapq.heappush(heap, score)
                    elif score > heap[0]:
                        heapq.heapreplace(heap, score)
    hits.sort(key=lambda hit: (-hit.score, hit.schema_name))
    return hits[:limit]


class CorpusRefreshWorker:
    """A daemon thread keeping a corpus index fresh off the request path.

    Watches the repository's generation clock every ``interval`` seconds
    (or immediately on :meth:`request_refresh`) and refreshes the bound
    index -- a :class:`ShardedCorpusIndex` rebuilds only its stale
    shards -- so queries land on warm snapshots instead of paying the
    synchronous-refresh fallback.  Exactness does not depend on the
    worker: a query that races ahead of it still refreshes synchronously.

    A refresh that raises is counted and kept (see :meth:`stats`); the
    worker never dies of one bad cycle.  ``stop()`` is graceful: wakes
    the thread, waits for the in-flight cycle, joins.
    """

    def __init__(
        self,
        index,
        interval: float = 1.0,
        name: str = "harmonia-corpus-refresh",
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.index = index
        self.interval = interval
        self.name = name
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._n_cycles = 0
        self._n_refreshes = 0
        self._n_errors = 0
        self._last_refresh_seconds = 0.0
        self._last_error = ""

    def start(self) -> "CorpusRefreshWorker":
        """Start the daemon thread (idempotent while running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the thread, wait for the in-flight cycle, join."""
        with self._lock:
            thread = self._thread
        if thread is None:
            return
        self._stop.set()
        self._wake.set()
        thread.join(timeout)
        with self._lock:
            self._thread = None

    def request_refresh(self) -> None:
        """Nudge the worker to run a cycle now instead of at the interval."""
        self._wake.set()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stats(self) -> RefreshWorkerStats:
        with self._lock:
            return RefreshWorkerStats(
                running=self.running,
                interval_seconds=self.interval,
                n_cycles=self._n_cycles,
                n_refreshes=self._n_refreshes,
                n_errors=self._n_errors,
                last_refresh_seconds=self._last_refresh_seconds,
                last_error=self._last_error,
            )

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                if self.index.is_stale():
                    refresh = self.index.refresh()
                    with self._lock:
                        self._n_refreshes += 1
                        self._last_refresh_seconds = refresh.elapsed_seconds
            except Exception as exc:  # pragma: no cover - backend failures
                with self._lock:
                    self._n_errors += 1
                    self._last_error = repr(exc)
            with self._lock:
                self._n_cycles += 1
