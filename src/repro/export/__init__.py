"""Export: spreadsheet deliverables, match-centric views, decision reports."""

from repro.export.matchcentric import MatchRow, MatchTable
from repro.export.report import (
    concept_match_text,
    overlap_report_text,
    partition_table_text,
)
from repro.export.spreadsheet import (
    RowType,
    Workbook,
    concept_sheet,
    element_sheet,
    write_sheet,
)

__all__ = [
    "MatchRow",
    "MatchTable",
    "RowType",
    "Workbook",
    "concept_match_text",
    "concept_sheet",
    "element_sheet",
    "overlap_report_text",
    "partition_table_text",
    "write_sheet",
]
