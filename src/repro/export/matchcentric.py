"""The match-centric view: matches as first-class, sortable rows.

Lesson #2: "we need a match-centric view of matches in addition to the
typical schema-centric view ... Spreadsheets allow users to flexibly sort
matches (e.g., by status, team member assigned to investigate it, etc.)."

:class:`MatchTable` is that view: one row per correspondence with the
columns engineers sort and group by, plus text/CSV rendering.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from repro.match.correspondence import Correspondence
from repro.schema.schema import Schema
from repro.summarize.concepts import Summary

__all__ = ["MatchRow", "MatchTable"]

_COLUMNS = (
    "source",
    "target",
    "score",
    "status",
    "annotation",
    "reviewer",
    "source_concept",
    "target_concept",
)


@dataclass(frozen=True)
class MatchRow:
    """One correspondence rendered for the match-centric view."""

    source: str
    target: str
    score: float
    status: str
    annotation: str
    reviewer: str
    source_concept: str
    target_concept: str

    def value(self, column: str):
        if column not in _COLUMNS:
            raise KeyError(f"unknown column {column!r}; options: {_COLUMNS}")
        return getattr(self, column)


class MatchTable:
    """Sortable, groupable table of correspondences."""

    def __init__(self, rows: list[MatchRow]):
        self.rows = list(rows)

    @classmethod
    def build(
        cls,
        correspondences,
        source: Schema,
        target: Schema,
        source_summary: Summary | None = None,
        target_summary: Summary | None = None,
    ) -> "MatchTable":
        def concept_label(summary: Summary | None, element_id: str) -> str:
            if summary is None:
                return ""
            concept = summary.concept_of(element_id)
            return concept.label if concept is not None else ""

        rows = [
            MatchRow(
                source=source.path(c.source_id),
                target=target.path(c.target_id),
                score=round(c.score, 3),
                status=str(c.status),
                annotation=str(c.annotation),
                reviewer=c.asserted_by,
                source_concept=concept_label(source_summary, c.source_id),
                target_concept=concept_label(target_summary, c.target_id),
            )
            for c in correspondences
        ]
        return cls(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_by(self, column: str, descending: bool = False) -> "MatchTable":
        """A new table sorted on one column (stable)."""
        return MatchTable(
            sorted(self.rows, key=lambda row: row.value(column), reverse=descending)
        )

    def grouped_by(self, column: str) -> dict[str, "MatchTable"]:
        """Partition rows by a column's value."""
        groups: dict[str, list[MatchRow]] = {}
        for row in self.rows:
            groups.setdefault(str(row.value(column)), []).append(row)
        return {key: MatchTable(rows) for key, rows in sorted(groups.items())}

    def filtered(self, predicate) -> "MatchTable":
        return MatchTable([row for row in self.rows if predicate(row)])

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(_COLUMNS)
        for row in self.rows:
            writer.writerow([row.value(column) for column in _COLUMNS])
        return buffer.getvalue()

    def to_text(self, limit: int | None = 40) -> str:
        """Fixed-width text rendering (what a terminal review looks like)."""
        shown = self.rows if limit is None else self.rows[:limit]
        if not shown:
            return "(no matches)"
        widths = {
            column: max(
                len(column), *(len(str(row.value(column))) for row in shown)
            )
            for column in _COLUMNS
        }
        header = "  ".join(column.ljust(widths[column]) for column in _COLUMNS)
        separator = "  ".join("-" * widths[column] for column in _COLUMNS)
        lines = [header, separator]
        for row in shown:
            lines.append(
                "  ".join(
                    str(row.value(column)).ljust(widths[column]) for column in _COLUMNS
                )
            )
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
