"""Decision-maker reports: the narrative artifacts the paper's customer read.

The customer never looked at a match matrix; they read an analysis of "what
[the schemata] held in common, how and to what extent they differed" (3.1).
These renderers produce that analysis as plain text: the overlap partition,
the concept-match listing, and the N-way partition table.
"""

from __future__ import annotations

from repro.metrics.overlap import OverlapReport
from repro.nway.partition import NWayPartition

__all__ = ["overlap_report_text", "concept_match_text", "partition_table_text"]


def overlap_report_text(
    report: OverlapReport, source_name: str = "SA", target_name: str = "SB"
) -> str:
    """The section-3.4 style overlap narrative."""
    matched_fraction = report.target_matched_fraction
    lines = [
        f"Overlap analysis: {source_name} vs {target_name}",
        "=" * 46,
        f"{source_name}: {report.source_total} elements; "
        f"{target_name}: {report.target_total} elements",
        "",
        f"{source_name} ∩ {target_name}: "
        f"{len(report.intersection_target_ids)} elements of {target_name} matched "
        f"({matched_fraction:.0%})",
        f"{target_name} − {source_name}: {report.target_unmatched_count} elements "
        f"({1 - matched_fraction:.0%}) have no counterpart",
        f"{source_name} − {target_name}: {len(report.source_only_ids)} elements "
        f"are specific to {source_name}",
    ]
    if report.concept_matches:
        lines.append("")
        lines.append(f"Concept-level matches recorded: {len(report.concept_matches)}")
    verdict = (
        f"Subsuming {target_name} looks challenging: most of it has no "
        f"counterpart in {source_name}."
        if matched_fraction < 0.5
        else f"Subsuming {target_name} looks tractable: most of it already "
        f"overlaps {source_name}."
    )
    lines.extend(["", verdict])
    return "\n".join(lines)


def concept_match_text(concept_matches, limit: int | None = None) -> str:
    """The concept-level match listing (sheet-1 narrative form)."""
    shown = concept_matches if limit is None else concept_matches[:limit]
    if not shown:
        return "(no concept-level matches)"
    width = max(len(match.source_label) for match in shown)
    lines = [
        f"{match.source_label.ljust(width)}  <=>  {match.target_label}"
        f"  ({match.score:.2f})"
        for match in shown
    ]
    if limit is not None and len(concept_matches) > limit:
        lines.append(f"... ({len(concept_matches) - limit} more)")
    return "\n".join(lines)


def partition_table_text(partition: NWayPartition, nonempty_only: bool = True) -> str:
    """The 2^N - 1 partition as a report table."""
    rows = partition.table()
    if nonempty_only:
        rows = [row for row in rows if row[1] > 0]
    if not rows:
        return "(empty partition)"
    label_width = max(len(label) for label, _, _ in rows)
    lines = [
        f"{'schemata'.ljust(label_width)}  concepts  elements",
        f"{'-' * label_width}  --------  --------",
    ]
    for label, n_entries, n_elements in rows:
        lines.append(f"{label.ljust(label_width)}  {n_entries:8d}  {n_elements:8d}")
    lines.append(
        f"({partition.n_cells} cells total for N={len(partition.schema_names)}; "
        f"{len(rows)} shown)"
    )
    return "\n".join(lines)
