"""The outer-join spreadsheet deliverable of section 3.4.

"the final result was delivered as an Excel spreadsheet.  The first sheet
enumerated the 191 concepts with their 24 concept-level matches (167 rows),
the second sheet contained the individual schema elements (indexed to a
concept) and their element-level matches.  Both sheets were organized in
'outer-join' style with three types of rows: those specific to SA, those
specific to SB, and those having matched elements of SA and SB."

This module reproduces that artifact as two CSV sheets with exactly that row
structure.  Row counts obey the outer-join law |A| + |B| - |matches|.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from enum import Enum

from repro.match.correspondence import CorrespondenceSet, MatchStatus
from repro.schema.schema import Schema
from repro.summarize.conceptmatch import ConceptMatch
from repro.summarize.concepts import Summary

__all__ = ["RowType", "concept_sheet", "element_sheet", "write_sheet", "Workbook"]


class RowType(Enum):
    """The paper's three row types."""

    SOURCE_ONLY = "SA-only"
    TARGET_ONLY = "SB-only"
    MATCHED = "matched"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def concept_sheet(
    source_summary: Summary,
    target_summary: Summary,
    concept_matches: list[ConceptMatch],
) -> list[dict[str, str]]:
    """Sheet 1: concepts in outer-join style.

    Row count = len(source concepts) + len(target concepts) - len(matches)
    -- the paper's 140 + 51 - 24 = 167.
    """
    matched_source = {match.source_concept_id: match for match in concept_matches}
    matched_target = {match.target_concept_id for match in concept_matches}
    rows: list[dict[str, str]] = []
    for concept in source_summary.concepts:
        match = matched_source.get(concept.concept_id)
        if match is not None:
            rows.append(
                {
                    "row_type": str(RowType.MATCHED),
                    "source_concept": concept.label,
                    "target_concept": match.target_label,
                    "score": f"{match.score:.3f}",
                }
            )
        else:
            rows.append(
                {
                    "row_type": str(RowType.SOURCE_ONLY),
                    "source_concept": concept.label,
                    "target_concept": "",
                    "score": "",
                }
            )
    for concept in target_summary.concepts:
        if concept.concept_id in matched_target:
            continue
        rows.append(
            {
                "row_type": str(RowType.TARGET_ONLY),
                "source_concept": "",
                "target_concept": concept.label,
                "score": "",
            }
        )
    return rows


def _concept_label(summary: Summary, element_id: str) -> str:
    concept = summary.concept_of(element_id)
    return concept.label if concept is not None else ""


def element_sheet(
    source: Schema,
    target: Schema,
    source_summary: Summary,
    target_summary: Summary,
    validated: CorrespondenceSet,
) -> list[dict[str, str]]:
    """Sheet 2: elements indexed to concepts, outer-join over accepted matches."""
    accepted = validated.accepted
    matched_source: dict[str, list] = {}
    matched_target_ids: set[str] = set()
    for correspondence in accepted:
        matched_source.setdefault(correspondence.source_id, []).append(correspondence)
        matched_target_ids.add(correspondence.target_id)

    rows: list[dict[str, str]] = []
    for element in source:
        links = matched_source.get(element.element_id)
        if links:
            for correspondence in sorted(links, key=lambda c: -c.score):
                target_element = target.element(correspondence.target_id)
                rows.append(
                    {
                        "row_type": str(RowType.MATCHED),
                        "source_concept": _concept_label(
                            source_summary, element.element_id
                        ),
                        "source_element": source.path(element.element_id),
                        "target_element": target.path(correspondence.target_id),
                        "target_concept": _concept_label(
                            target_summary, correspondence.target_id
                        ),
                        "score": f"{correspondence.score:.3f}",
                        "annotation": str(correspondence.annotation),
                    }
                )
        else:
            rows.append(
                {
                    "row_type": str(RowType.SOURCE_ONLY),
                    "source_concept": _concept_label(source_summary, element.element_id),
                    "source_element": source.path(element.element_id),
                    "target_element": "",
                    "target_concept": "",
                    "score": "",
                    "annotation": "",
                }
            )
    for element in target:
        if element.element_id in matched_target_ids:
            continue
        rows.append(
            {
                "row_type": str(RowType.TARGET_ONLY),
                "source_concept": "",
                "source_element": "",
                "target_element": target.path(element.element_id),
                "target_concept": _concept_label(target_summary, element.element_id),
                "score": "",
                "annotation": "",
            }
        )
    return rows


def write_sheet(rows: list[dict[str, str]], path: str) -> None:
    """Write one sheet as CSV (column order from the first row)."""
    if not rows:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write("")
        return
    fieldnames = list(rows[0])
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


@dataclass
class Workbook:
    """The two-sheet deliverable, writable as a pair of CSV files."""

    concepts: list[dict[str, str]]
    elements: list[dict[str, str]]

    @classmethod
    def build(
        cls,
        source: Schema,
        target: Schema,
        source_summary: Summary,
        target_summary: Summary,
        validated: CorrespondenceSet,
        concept_matches: list[ConceptMatch],
    ) -> "Workbook":
        return cls(
            concepts=concept_sheet(source_summary, target_summary, concept_matches),
            elements=element_sheet(
                source, target, source_summary, target_summary, validated
            ),
        )

    def write(self, prefix: str) -> tuple[str, str]:
        """Write ``<prefix>_concepts.csv`` and ``<prefix>_elements.csv``."""
        concepts_path = f"{prefix}_concepts.csv"
        elements_path = f"{prefix}_elements.csv"
        write_sheet(self.concepts, concepts_path)
        write_sheet(self.elements, elements_path)
        return concepts_path, elements_path
