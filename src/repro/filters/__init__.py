"""Harmony's GUI filters as computable predicates: link + node filters."""

from repro.filters.chain import FilterChain
from repro.filters.link import (
    ConfidenceFilter,
    LinkFilter,
    StatusFilter,
    TopKPerSourceFilter,
)
from repro.filters.node import (
    DepthFilter,
    KindFilter,
    NamePatternFilter,
    NodeFilter,
    SubtreeFilter,
)

__all__ = [
    "ConfidenceFilter",
    "DepthFilter",
    "FilterChain",
    "KindFilter",
    "LinkFilter",
    "NamePatternFilter",
    "NodeFilter",
    "StatusFilter",
    "SubtreeFilter",
    "TopKPerSourceFilter",
]
