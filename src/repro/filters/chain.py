"""Filter chains: the composed view an integration engineer actually sees.

A :class:`FilterChain` combines any number of link filters with node filters
on each side.  Applying it to a list of candidate correspondences yields the
visible subset -- the lines the Harmony GUI would draw.  The clutter model
in :mod:`repro.viz` builds directly on this.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.filters.link import LinkFilter
from repro.filters.node import NodeFilter
from repro.match.correspondence import Correspondence
from repro.schema.schema import Schema

__all__ = ["FilterChain"]


class FilterChain:
    """Composable view filter over a match between two schemata."""

    def __init__(
        self,
        link_filters: Sequence[LinkFilter] = (),
        source_filters: Sequence[NodeFilter] = (),
        target_filters: Sequence[NodeFilter] = (),
    ):
        self.link_filters = list(link_filters)
        self.source_filters = list(source_filters)
        self.target_filters = list(target_filters)

    def with_link(self, link_filter: LinkFilter) -> "FilterChain":
        """New chain with one more link filter appended."""
        return FilterChain(
            self.link_filters + [link_filter], self.source_filters, self.target_filters
        )

    def with_source(self, node_filter: NodeFilter) -> "FilterChain":
        return FilterChain(
            self.link_filters, self.source_filters + [node_filter], self.target_filters
        )

    def with_target(self, node_filter: NodeFilter) -> "FilterChain":
        return FilterChain(
            self.link_filters, self.source_filters, self.target_filters + [node_filter]
        )

    def enabled_source_ids(self, source: Schema) -> set[str]:
        """Elements enabled on the source side (intersection of node filters)."""
        enabled = {element.element_id for element in source}
        for node_filter in self.source_filters:
            enabled &= node_filter.enabled_ids(source)
        return enabled

    def enabled_target_ids(self, target: Schema) -> set[str]:
        enabled = {element.element_id for element in target}
        for node_filter in self.target_filters:
            enabled &= node_filter.enabled_ids(target)
        return enabled

    def apply(
        self,
        correspondences: Iterable[Correspondence],
        source: Schema,
        target: Schema,
    ) -> list[Correspondence]:
        """The visible correspondences under this chain."""
        visible = list(correspondences)
        for link_filter in self.link_filters:
            visible = link_filter.apply(visible)
        if self.source_filters:
            enabled_source = self.enabled_source_ids(source)
            visible = [c for c in visible if c.source_id in enabled_source]
        if self.target_filters:
            enabled_target = self.enabled_target_ids(target)
            visible = [c for c in visible if c.target_id in enabled_target]
        return visible
