"""Link filters: predicates over candidate correspondences.

"These filters are loosely categorized as link filters, which depend on the
characteristics of a given candidate correspondence, and node filters, which
depend on the characteristics of a given schema element" (CIDR 2009, 3.2).

A link filter decides, per correspondence, whether it stays visible.  The
most important one is the :class:`ConfidenceFilter`: "Only those
correspondences whose match score falls within the specific range of values
are displayed graphically."
"""

from __future__ import annotations

from typing import Iterable

from repro.match.correspondence import Correspondence, MatchStatus

__all__ = ["LinkFilter", "ConfidenceFilter", "StatusFilter", "TopKPerSourceFilter"]


class LinkFilter:
    """Base link filter; subclasses override :meth:`keep`."""

    def keep(self, correspondence: Correspondence) -> bool:
        raise NotImplementedError

    def apply(self, correspondences: Iterable[Correspondence]) -> list[Correspondence]:
        return [c for c in correspondences if self.keep(c)]


class ConfidenceFilter(LinkFilter):
    """Keep correspondences whose score lies in [minimum, maximum]."""

    def __init__(self, minimum: float = 0.5, maximum: float = 1.0):
        if minimum > maximum:
            raise ValueError(
                f"confidence filter range is empty: [{minimum}, {maximum}]"
            )
        self.minimum = minimum
        self.maximum = maximum

    def keep(self, correspondence: Correspondence) -> bool:
        return self.minimum <= correspondence.score <= self.maximum

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConfidenceFilter([{self.minimum}, {self.maximum}])"


class StatusFilter(LinkFilter):
    """Keep correspondences in any of the given lifecycle statuses."""

    def __init__(self, *statuses: MatchStatus):
        if not statuses:
            raise ValueError("StatusFilter needs at least one status")
        self.statuses = frozenset(statuses)

    def keep(self, correspondence: Correspondence) -> bool:
        return correspondence.status in self.statuses


class TopKPerSourceFilter(LinkFilter):
    """Keep only each source element's k best links (declutters the view).

    Stateful over one application: :meth:`apply` ranks within the batch.
    """

    def __init__(self, k: int = 3):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def keep(self, correspondence: Correspondence) -> bool:
        raise NotImplementedError(
            "TopKPerSourceFilter ranks within a batch; use apply()"
        )

    def apply(self, correspondences: Iterable[Correspondence]) -> list[Correspondence]:
        by_source: dict[str, list[Correspondence]] = {}
        ordered = list(correspondences)
        for correspondence in ordered:
            by_source.setdefault(correspondence.source_id, []).append(correspondence)
        kept: set[tuple[str, str]] = set()
        for source_id, links in by_source.items():
            links.sort(key=lambda c: -c.score)
            for link in links[: self.k]:
                kept.add(link.pair)
        return [c for c in ordered if c.pair in kept]
