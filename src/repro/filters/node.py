"""Node filters: predicates over schema elements.

"The node filters include a depth filter and a sub-tree filter" (CIDR 2009,
section 3.2).  The depth filter "enables only those schema elements that
appear at a particular nested depth"; the sub-tree filter "enables only
those elements that appear in a given sub-tree" -- it is the tool the
engineers "relied heavily on" for concept-at-a-time matching.

A node filter yields the *enabled element-id set* for a schema; link-level
machinery then keeps a correspondence only when both of its endpoints are
enabled on their respective sides.
"""

from __future__ import annotations

import re

from repro.schema.schema import Schema

__all__ = ["NodeFilter", "DepthFilter", "SubtreeFilter", "NamePatternFilter", "KindFilter"]


class NodeFilter:
    """Base node filter; subclasses override :meth:`enabled_ids`."""

    def enabled_ids(self, schema: Schema) -> set[str]:
        raise NotImplementedError


class DepthFilter(NodeFilter):
    """Enable elements within a depth band (roots are depth 1).

    ``DepthFilter(max_depth=1)`` reproduces the paper's "only match table
    names in SA, and ignore their attributes".
    """

    def __init__(self, min_depth: int = 1, max_depth: int | None = None):
        if min_depth < 1:
            raise ValueError(f"min_depth must be >= 1, got {min_depth}")
        if max_depth is not None and max_depth < min_depth:
            raise ValueError(
                f"empty depth band: [{min_depth}, {max_depth}]"
            )
        self.min_depth = min_depth
        self.max_depth = max_depth

    def enabled_ids(self, schema: Schema) -> set[str]:
        upper = self.max_depth if self.max_depth is not None else schema.max_depth()
        return {
            element.element_id
            for element in schema
            if self.min_depth <= schema.depth(element) <= upper
        }


class SubtreeFilter(NodeFilter):
    """Enable one sub-tree: the root element and all its descendants."""

    def __init__(self, root_id: str, include_root: bool = True):
        self.root_id = root_id
        self.include_root = include_root

    def enabled_ids(self, schema: Schema) -> set[str]:
        subtree = schema.subtree(self.root_id)
        if not self.include_root:
            subtree = subtree[1:]
        return {element.element_id for element in subtree}


class NamePatternFilter(NodeFilter):
    """Enable elements whose name matches a regular expression."""

    def __init__(self, pattern: str, case_sensitive: bool = False):
        flags = 0 if case_sensitive else re.IGNORECASE
        self._regex = re.compile(pattern, flags)

    def enabled_ids(self, schema: Schema) -> set[str]:
        return {
            element.element_id
            for element in schema
            if self._regex.search(element.name)
        }


class KindFilter(NodeFilter):
    """Enable elements of the given structural kinds (tables only, etc.)."""

    def __init__(self, *kinds):
        if not kinds:
            raise ValueError("KindFilter needs at least one kind")
        self.kinds = frozenset(kinds)

    def enabled_ids(self, schema: Schema) -> set[str]:
        return {
            element.element_id for element in schema if element.kind in self.kinds
        }
