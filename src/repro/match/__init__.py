"""The match engine: matrices, correspondences, selection, incremental runs."""

from repro.match.correspondence import (
    Correspondence,
    CorrespondenceSet,
    MatchStatus,
    SemanticAnnotation,
)
from repro.match.engine import HarmonyMatchEngine, MatchResult
from repro.match.incremental import Increment, IncrementalMatcher
from repro.match.matrix import MatchMatrix, ScoredPair
from repro.match.selection import (
    HungarianSelection,
    SelectionStrategy,
    StableMarriageSelection,
    ThresholdSelection,
    TopKSelection,
)

__all__ = [
    "Correspondence",
    "CorrespondenceSet",
    "HarmonyMatchEngine",
    "HungarianSelection",
    "Increment",
    "IncrementalMatcher",
    "MatchMatrix",
    "MatchResult",
    "MatchStatus",
    "ScoredPair",
    "SelectionStrategy",
    "SemanticAnnotation",
    "StableMarriageSelection",
    "ThresholdSelection",
    "TopKSelection",
]
