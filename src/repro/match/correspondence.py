"""Correspondences: scored, annotated, provenance-carrying match assertions.

A correspondence is the knowledge artifact the paper argues enterprises
should treat as first-class: not just "these two elements match" but who/what
asserted it, with what confidence, validated or not, and with what semantics
("additional semantics such as is-a or part-of", section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

__all__ = ["MatchStatus", "SemanticAnnotation", "Correspondence", "CorrespondenceSet"]


class MatchStatus(Enum):
    """Lifecycle of a correspondence in the human validation workflow."""

    CANDIDATE = "candidate"   # proposed by the engine, not yet reviewed
    ACCEPTED = "accepted"     # validated by an integration engineer
    REJECTED = "rejected"     # reviewed and judged spurious

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SemanticAnnotation(Enum):
    """The relationship semantics an engineer may record on a match."""

    EQUIVALENT = "equivalent"
    IS_A = "is-a"
    PART_OF = "part-of"
    RELATED = "related"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Correspondence:
    """One match assertion between a source and a target element."""

    source_id: str
    target_id: str
    score: float
    status: MatchStatus = MatchStatus.CANDIDATE
    annotation: SemanticAnnotation = SemanticAnnotation.EQUIVALENT
    asserted_by: str = "engine"
    note: str = ""

    def __post_init__(self) -> None:
        if not -1.0 <= self.score <= 1.0:
            raise ValueError(f"correspondence score must be in [-1, 1], got {self.score}")

    @property
    def pair(self) -> tuple[str, str]:
        return (self.source_id, self.target_id)

    def accept(self, by: str, annotation: SemanticAnnotation | None = None, note: str = "") -> "Correspondence":
        """Return an ACCEPTED copy, recording the validator."""
        return replace(
            self,
            status=MatchStatus.ACCEPTED,
            asserted_by=by,
            annotation=annotation if annotation is not None else self.annotation,
            note=note or self.note,
        )

    def reject(self, by: str, note: str = "") -> "Correspondence":
        """Return a REJECTED copy, recording the reviewer."""
        return replace(self, status=MatchStatus.REJECTED, asserted_by=by, note=note or self.note)

    def to_dict(self) -> dict:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "source_id": self.source_id,
            "target_id": self.target_id,
            "score": self.score,
            "status": self.status.value,
            "annotation": self.annotation.value,
            "asserted_by": self.asserted_by,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Correspondence":
        """Rebuild a correspondence from :meth:`to_dict` output."""
        return cls(
            source_id=payload["source_id"],
            target_id=payload["target_id"],
            score=payload["score"],
            status=MatchStatus(payload.get("status", "candidate")),
            annotation=SemanticAnnotation(payload.get("annotation", "equivalent")),
            asserted_by=payload.get("asserted_by", "engine"),
            note=payload.get("note", ""),
        )


class CorrespondenceSet:
    """A mutable collection of correspondences keyed by (source, target) pair.

    The set enforces one assertion per pair (latest wins) and provides the
    partitioned views Lesson #3 asks for: matched/unmatched element sets.
    """

    def __init__(self, correspondences: list[Correspondence] | None = None):
        self._by_pair: dict[tuple[str, str], Correspondence] = {}
        for correspondence in correspondences or []:
            self.add(correspondence)

    def add(self, correspondence: Correspondence) -> None:
        self._by_pair[correspondence.pair] = correspondence

    def get(self, source_id: str, target_id: str) -> Correspondence | None:
        return self._by_pair.get((source_id, target_id))

    def remove(self, source_id: str, target_id: str) -> None:
        self._by_pair.pop((source_id, target_id), None)

    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self):
        return iter(self._by_pair.values())

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._by_pair

    # ------------------------------------------------------------------
    def with_status(self, status: MatchStatus) -> list[Correspondence]:
        return [c for c in self if c.status is status]

    @property
    def accepted(self) -> list[Correspondence]:
        return self.with_status(MatchStatus.ACCEPTED)

    @property
    def candidates(self) -> list[Correspondence]:
        return self.with_status(MatchStatus.CANDIDATE)

    @property
    def rejected(self) -> list[Correspondence]:
        return self.with_status(MatchStatus.REJECTED)

    def matched_source_ids(self, statuses: tuple[MatchStatus, ...] = (MatchStatus.ACCEPTED,)) -> set[str]:
        """Source elements participating in a correspondence of given status."""
        return {c.source_id for c in self if c.status in statuses}

    def matched_target_ids(self, statuses: tuple[MatchStatus, ...] = (MatchStatus.ACCEPTED,)) -> set[str]:
        """Target elements participating in a correspondence of given status."""
        return {c.target_id for c in self if c.status in statuses}

    def for_source(self, source_id: str) -> list[Correspondence]:
        return [c for c in self if c.source_id == source_id]

    def for_target(self, target_id: str) -> list[Correspondence]:
        return [c for c in self if c.target_id == target_id]

    def merge(self, other: "CorrespondenceSet") -> "CorrespondenceSet":
        """New set with ``other``'s assertions layered over this one's."""
        merged = CorrespondenceSet(list(self))
        for correspondence in other:
            merged.add(correspondence)
        return merged
