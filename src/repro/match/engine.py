"""The Harmony match engine: voters -> merger -> match matrix.

This is the core MATCH(S1, S2) operator [Bernstein, CIDR 2003] as the paper's
section 3.2 describes Harmony's realisation of it: linguistic preprocessing
(done once per schema in :func:`~repro.matchers.profile.build_profile`),
several match voters each emitting evidence-aware confidences, and a vote
merger producing the final match score per pair.

The engine is stateless apart from a profile cache, so one engine instance
serves repeated (incremental) match operations over the same schemata --
exactly the concept-at-a-time workflow of section 3.3.

Execution is *staged*: Stage 1 above is the cheap ensemble, scoring the
full (restricted) pair grid exactly; with a
:class:`~repro.cascade.CascadeExecutor` attached, pairs whose merged
confidence lands inside the plan's ambiguity band escalate to the Stage-2
oracle under a per-request budget (see ``docs/cascade.md``).  Without one,
the pipeline is single-stage and bit-identical to the pre-cascade engine.
This per-grid path is the exact reference; corpus-scale workloads go
through the blocked, feature-cached fast path in :mod:`repro.batch`, which
stages the same way over its candidate lists.  The full dataflow of both
is drawn in ``docs/architecture.md``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cascade.executor import CascadeExecutor
from repro.cascade.plan import CascadeReport
from repro.match.correspondence import Correspondence, CorrespondenceSet
from repro.match.matrix import MatchMatrix
from repro.match.selection import SelectionStrategy, ThresholdSelection
from repro.matchers import DEFAULT_VOTER_WEIGHTS, MatchVoter, default_voters
from repro.matchers.profile import SchemaProfile, build_profile
from repro.schema.schema import Schema
from repro.telemetry import span
from repro.voting.merger import ConvictionLinearMerger, VoteMerger

__all__ = ["MatchResult", "HarmonyMatchEngine"]


class MatchResult:
    """Outcome of one match operation: the matrix plus convenience queries."""

    def __init__(
        self,
        source: Schema,
        target: Schema,
        matrix: MatchMatrix,
        elapsed_seconds: float,
        voter_names: list[str],
        cascade: CascadeReport | None = None,
    ):
        self.source = source
        self.target = target
        self.matrix = matrix
        self.elapsed_seconds = elapsed_seconds
        self.voter_names = voter_names
        #: Stage-2 spend accounting when a cascade ran (None otherwise).
        self.cascade = cascade

    @property
    def n_pairs(self) -> int:
        """Candidate pairs considered (the paper's 10^4-10^6 scale numbers)."""
        return self.matrix.n_pairs

    def candidates(
        self, selection: SelectionStrategy | None = None
    ) -> list[Correspondence]:
        """Materialise candidate correspondences under a selection strategy."""
        strategy = selection if selection is not None else ThresholdSelection(0.15)
        return strategy.select(self.matrix)

    def candidate_set(
        self, selection: SelectionStrategy | None = None
    ) -> CorrespondenceSet:
        return CorrespondenceSet(self.candidates(selection))

    def matched_source_ids(self, threshold: float) -> set[str]:
        """Source elements whose best score clears ``threshold``."""
        row_max = self.matrix.row_max()
        return {
            source_id
            for source_id, best in zip(self.matrix.source_ids, row_max)
            if best >= threshold
        }

    def matched_target_ids(self, threshold: float) -> set[str]:
        """Target elements whose best score clears ``threshold``."""
        col_max = self.matrix.col_max()
        return {
            target_id
            for target_id, best in zip(self.matrix.target_ids, col_max)
            if best >= threshold
        }

    def unmatched_source_ids(self, threshold: float) -> set[str]:
        """The {S1 - S2} knowledge of Lesson #3."""
        return set(self.matrix.source_ids) - self.matched_source_ids(threshold)

    def unmatched_target_ids(self, threshold: float) -> set[str]:
        """The {S2 - S1} knowledge of Lesson #3."""
        return set(self.matrix.target_ids) - self.matched_target_ids(threshold)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchResult({self.source.name!r} x {self.target.name!r}, "
            f"pairs={self.n_pairs}, elapsed={self.elapsed_seconds:.2f}s)"
        )


class HarmonyMatchEngine:
    """Composable match engine (voters + merger), with a profile cache.

    Parameters
    ----------
    voters:
        The voter ensemble; defaults to :func:`repro.matchers.default_voters`.
    merger:
        Vote merger; defaults to the conviction-linear merger with the
        calibrated :data:`~repro.matchers.DEFAULT_VOTER_WEIGHTS` (only when
        the default ensemble is used; custom voter lists get flat weights).
    profile_cache:
        An externally owned ``{id(schema): SchemaProfile}`` dict, letting a
        service share one profile cache across engines and batch runners;
        the engine owns a private dict when omitted.
    cascade:
        An optional compiled :class:`~repro.cascade.CascadeExecutor`; when
        given, Stage-1 merged scores inside its ambiguity band escalate to
        the Stage-2 oracle (budgeted, most-ambiguous-first).  ``None``
        keeps the pipeline single-stage and bit-identical to the
        pre-cascade engine.
    """

    def __init__(
        self,
        voters: list[MatchVoter] | None = None,
        merger: VoteMerger | None = None,
        profile_cache: dict[int, SchemaProfile] | None = None,
        cascade: CascadeExecutor | None = None,
    ):
        if voters is None:
            self.voters = default_voters()
            default_weights: tuple[float, ...] | None = DEFAULT_VOTER_WEIGHTS
        else:
            self.voters = voters
            default_weights = None
        if not self.voters:
            raise ValueError("engine needs at least one voter")
        if merger is not None:
            self.merger = merger
        else:
            self.merger = ConvictionLinearMerger(voter_weights=default_weights)
        self._profiles: dict[int, SchemaProfile] = (
            profile_cache if profile_cache is not None else {}
        )
        self.cascade = cascade

    def profile(self, schema: Schema) -> SchemaProfile:
        """Profile a schema once; later calls reuse the cache."""
        key = id(schema)
        cached = self._profiles.get(key)
        if cached is None or cached.schema is not schema or len(cached) != len(schema):
            cached = build_profile(schema)
            self._profiles[key] = cached
        return cached

    def match(
        self,
        source: Schema,
        target: Schema,
        source_element_ids: list[str] | None = None,
        target_element_ids: list[str] | None = None,
    ) -> MatchResult:
        """Run all voters over the (optionally restricted) pair grid.

        ``source_element_ids`` / ``target_element_ids`` restrict the grid --
        this is how the sub-tree and depth filters become *match-time*
        restrictions rather than mere display filters.
        """
        with span("engine.score"):
            return self._match(
                source, target, source_element_ids, target_element_ids
            )

    def _match(
        self,
        source: Schema,
        target: Schema,
        source_element_ids: list[str] | None = None,
        target_element_ids: list[str] | None = None,
    ) -> MatchResult:
        started = time.perf_counter()
        source_profile = self.profile(source)
        target_profile = self.profile(target)

        source_positions = (
            source_profile.positions_of(source_element_ids)
            if source_element_ids is not None
            else None
        )
        target_positions = (
            target_profile.positions_of(target_element_ids)
            if target_element_ids is not None
            else None
        )

        stacked = np.stack(
            [
                voter.vote(
                    source_profile, target_profile, source_positions, target_positions
                ).confidence
                for voter in self.voters
            ]
        )
        merged = self.merger.merge(stacked)

        cascade_report: CascadeReport | None = None
        if self.cascade is not None:
            merged, cascade_report = self.cascade.escalate_grid(
                source_profile,
                target_profile,
                source_positions,
                target_positions,
                merged,
                stage1_seconds=time.perf_counter() - started,
            )

        source_ids = (
            list(source_element_ids)
            if source_element_ids is not None
            else source_profile.element_ids
        )
        target_ids = (
            list(target_element_ids)
            if target_element_ids is not None
            else target_profile.element_ids
        )
        matrix = MatchMatrix(source_ids, target_ids, merged)
        elapsed = time.perf_counter() - started
        return MatchResult(
            source,
            target,
            matrix,
            elapsed_seconds=elapsed,
            voter_names=[voter.name for voter in self.voters],
            cascade=cascade_report,
        )

    def explain(
        self, source: Schema, target: Schema, source_id: str, target_id: str
    ) -> dict[str, dict[str, float]]:
        """Per-voter breakdown for one pair (recomputed on a 1x1 grid).

        Returns ``{voter: {"confidence", "similarity", "evidence"}}`` plus a
        ``"merged"`` pseudo-voter with the final score -- the explanation a
        GUI tooltip would show.
        """
        source_profile = self.profile(source)
        target_profile = self.profile(target)
        source_positions = source_profile.positions_of([source_id])
        target_positions = target_profile.positions_of([target_id])
        breakdown: dict[str, dict[str, float]] = {}
        confidences = []
        for voter in self.voters:
            opinion = voter.vote(
                source_profile, target_profile, source_positions, target_positions
            )
            confidences.append(opinion.confidence)
            breakdown[voter.name] = {
                "confidence": float(opinion.confidence[0, 0]),
                "similarity": float(opinion.similarity[0, 0]),
                "evidence": float(opinion.evidence[0, 0]),
            }
        merged = self.merger.merge(np.stack(confidences))
        breakdown["merged"] = {
            "confidence": float(merged[0, 0]),
            "similarity": float("nan"),
            "evidence": float("nan"),
        }
        return breakdown
