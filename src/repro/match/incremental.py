"""Incremental (sub-tree at a time) matching.

Section 3.3: "they used Harmony's sub-tree filter to incrementally match
each concept (i.e., the schema sub-tree rooted at that concept) with the
entire opposing schema. ... These match operations were rapid: typically
between 10^4 and 10^5 matches were considered in each increment."

:class:`IncrementalMatcher` runs exactly that loop: given a source schema, a
target schema and a shared engine, each :meth:`match_subtree` call matches
one concept sub-tree against the whole opposing schema, reusing the cached
profiles so increments stay cheap.  It records per-increment statistics
(pairs considered, elapsed time) which benches E5/E7 consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.match.engine import HarmonyMatchEngine, MatchResult
from repro.schema.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service uses match)
    from repro.service import MatchService

__all__ = ["Increment", "IncrementalMatcher"]


@dataclass(frozen=True)
class Increment:
    """Bookkeeping for one incremental match operation."""

    root_id: str
    n_source_elements: int
    n_target_elements: int
    n_pairs: int
    elapsed_seconds: float
    result: MatchResult

    @property
    def label(self) -> str:
        return f"{self.root_id} ({self.n_pairs} pairs)"


class IncrementalMatcher:
    """Concept-at-a-time matching over a fixed schema pair."""

    def __init__(
        self,
        source: Schema,
        target: Schema,
        engine: HarmonyMatchEngine | None = None,
        service: "MatchService | None" = None,
    ):
        self.source = source
        self.target = target
        if engine is None:
            # A bound service shares its profile cache; otherwise this is
            # the low-level path and the matcher owns a private engine.
            engine = (
                service.engine() if service is not None else HarmonyMatchEngine()
            )
        self.engine = engine
        self.increments: list[Increment] = []
        # Prime the profile cache so the first increment is not penalised.
        self.engine.profile(source)
        self.engine.profile(target)

    def match_subtree(
        self,
        root_id: str,
        target_element_ids: list[str] | None = None,
    ) -> Increment:
        """Match the sub-tree rooted at ``root_id`` against the target.

        ``target_element_ids`` optionally restricts the opposing side too
        (e.g. to a previously concept-matched region).
        """
        subtree_ids = [
            element.element_id for element in self.source.subtree(root_id)
        ]
        result = self.engine.match(
            self.source,
            self.target,
            source_element_ids=subtree_ids,
            target_element_ids=target_element_ids,
        )
        increment = Increment(
            root_id=root_id,
            n_source_elements=len(subtree_ids),
            n_target_elements=(
                len(target_element_ids)
                if target_element_ids is not None
                else len(self.target)
            ),
            n_pairs=result.n_pairs,
            elapsed_seconds=result.elapsed_seconds,
            result=result,
        )
        self.increments.append(increment)
        return increment

    @property
    def total_pairs_considered(self) -> int:
        """Sum of pair-grid sizes across all increments so far."""
        return sum(increment.n_pairs for increment in self.increments)

    @property
    def total_elapsed_seconds(self) -> float:
        return sum(increment.elapsed_seconds for increment in self.increments)

    def pairs_per_increment(self) -> list[int]:
        """The per-increment workload series of section 3.3 (E5)."""
        return [increment.n_pairs for increment in self.increments]
