"""The match matrix: merged scores for every source x target element pair.

"the matcher's output (a match matrix)" -- CIDR 2009, section 3.3.  A
:class:`MatchMatrix` pairs a dense numpy score array with the element-id
labelling of its rows and columns, and provides the queries the rest of the
system needs: thresholding, top-k, sub-grid extraction, and pair iteration.
Scores are merged confidences in [-1, +1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["MatchMatrix", "ScoredPair"]


@dataclass(frozen=True)
class ScoredPair:
    """One (source element, target element, score) triple."""

    source_id: str
    target_id: str
    score: float


class MatchMatrix:
    """Dense merged-score matrix labelled by element ids.

    Rows are source elements, columns target elements, in the order given at
    construction (importers keep source order, so matrices are stable).
    """

    def __init__(
        self, source_ids: list[str], target_ids: list[str], scores: np.ndarray
    ):
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (len(source_ids), len(target_ids)):
            raise ValueError(
                f"score shape {scores.shape} does not match labels "
                f"({len(source_ids)}, {len(target_ids)})"
            )
        if scores.size and (scores.min() < -1.0 - 1e-9 or scores.max() > 1.0 + 1e-9):
            raise ValueError("scores must lie in [-1, 1]")
        self.source_ids = list(source_ids)
        self.target_ids = list(target_ids)
        self._scores = scores
        self._source_index = {sid: i for i, sid in enumerate(self.source_ids)}
        self._target_index = {tid: j for j, tid in enumerate(self.target_ids)}

    # ------------------------------------------------------------------
    @property
    def scores(self) -> np.ndarray:
        """The raw (n_source, n_target) score array (do not mutate)."""
        return self._scores

    @property
    def shape(self) -> tuple[int, int]:
        return self._scores.shape

    @property
    def n_pairs(self) -> int:
        """Number of potential matches -- the paper's 'scale' measure."""
        return self._scores.size

    def score(self, source_id: str, target_id: str) -> float:
        """Merged score of one labelled pair."""
        return float(
            self._scores[self._source_index[source_id], self._target_index[target_id]]
        )

    # ------------------------------------------------------------------
    def pairs_above(self, threshold: float) -> list[ScoredPair]:
        """All pairs with score >= threshold, best first."""
        rows, cols = np.nonzero(self._scores >= threshold)
        order = np.argsort(-self._scores[rows, cols], kind="stable")
        return [
            ScoredPair(
                self.source_ids[rows[k]],
                self.target_ids[cols[k]],
                float(self._scores[rows[k], cols[k]]),
            )
            for k in order
        ]

    def top_pairs(self, k: int) -> list[ScoredPair]:
        """The k best-scoring pairs overall."""
        if k <= 0:
            return []
        flat = self._scores.ravel()
        k = min(k, flat.size)
        candidate_index = np.argpartition(-flat, k - 1)[:k]
        candidate_index = candidate_index[np.argsort(-flat[candidate_index], kind="stable")]
        n_targets = len(self.target_ids)
        return [
            ScoredPair(
                self.source_ids[index // n_targets],
                self.target_ids[index % n_targets],
                float(flat[index]),
            )
            for index in candidate_index
        ]

    def best_for_source(self, source_id: str) -> ScoredPair:
        """The best target for one source element."""
        row = self._source_index[source_id]
        col = int(np.argmax(self._scores[row]))
        return ScoredPair(source_id, self.target_ids[col], float(self._scores[row, col]))

    def best_for_target(self, target_id: str) -> ScoredPair:
        """The best source for one target element."""
        col = self._target_index[target_id]
        row = int(np.argmax(self._scores[:, col]))
        return ScoredPair(self.source_ids[row], target_id, float(self._scores[row, col]))

    def row_max(self) -> np.ndarray:
        """Best score per source element."""
        return self._scores.max(axis=1) if self._scores.size else np.zeros(0)

    def col_max(self) -> np.ndarray:
        """Best score per target element."""
        return self._scores.max(axis=0) if self._scores.size else np.zeros(0)

    def submatrix(
        self, source_ids: list[str] | None = None, target_ids: list[str] | None = None
    ) -> "MatchMatrix":
        """Restrict to the given row/column labels (order preserved)."""
        chosen_sources = source_ids if source_ids is not None else self.source_ids
        chosen_targets = target_ids if target_ids is not None else self.target_ids
        rows = [self._source_index[sid] for sid in chosen_sources]
        cols = [self._target_index[tid] for tid in chosen_targets]
        if rows and cols:
            block = self._scores[np.ix_(rows, cols)]
        else:
            block = np.zeros((len(rows), len(cols)))
        return MatchMatrix(list(chosen_sources), list(chosen_targets), block)

    def iter_pairs(self) -> Iterator[ScoredPair]:
        """Iterate all pairs in row-major order (testing/small matrices)."""
        for row, source_id in enumerate(self.source_ids):
            for col, target_id in enumerate(self.target_ids):
                yield ScoredPair(source_id, target_id, float(self._scores[row, col]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatchMatrix(shape={self.shape}, n_pairs={self.n_pairs})"
