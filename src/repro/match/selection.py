"""Selection strategies: from a match matrix to a set of candidate pairs.

The engine produces a dense score matrix; a *selection strategy* decides
which cells become candidate correspondences.  Strategies differ in the
cardinality constraints they enforce:

* :class:`ThresholdSelection` -- every pair above a score threshold (n:m);
  this is what Harmony's confidence filter shows the engineer.
* :class:`TopKSelection` -- the best k targets per source element (1:k).
* :class:`StableMarriageSelection` -- a stable 1:1 matching (Gale-Shapley
  over score preferences, threshold-gated).
* :class:`HungarianSelection` -- the maximum-total-score 1:1 assignment
  (scipy's linear_sum_assignment), threshold-gated.

All strategies return :class:`~repro.match.correspondence.Correspondence`
candidates sorted best-first.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.match.correspondence import Correspondence, MatchStatus
from repro.match.matrix import MatchMatrix

__all__ = [
    "SelectionStrategy",
    "ThresholdSelection",
    "TopKSelection",
    "StableMarriageSelection",
    "HungarianSelection",
]


class SelectionStrategy:
    """Base class; subclasses implement :meth:`select`."""

    name = "selection"

    def select(self, matrix: MatchMatrix) -> list[Correspondence]:
        raise NotImplementedError

    @staticmethod
    def _sorted(correspondences: list[Correspondence]) -> list[Correspondence]:
        return sorted(
            correspondences, key=lambda c: (-c.score, c.source_id, c.target_id)
        )


class ThresholdSelection(SelectionStrategy):
    """All pairs scoring at or above ``threshold`` (many-to-many)."""

    name = "threshold"

    def __init__(self, threshold: float = 0.5):
        if not -1.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [-1, 1], got {threshold}")
        self.threshold = threshold

    def select(self, matrix: MatchMatrix) -> list[Correspondence]:
        return [
            Correspondence(pair.source_id, pair.target_id, pair.score)
            for pair in matrix.pairs_above(self.threshold)
        ]


class TopKSelection(SelectionStrategy):
    """The best ``k`` targets per source element, optionally thresholded."""

    name = "top_k"

    def __init__(self, k: int = 1, threshold: float = 0.0):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.threshold = threshold

    def select(self, matrix: MatchMatrix) -> list[Correspondence]:
        scores = matrix.scores
        selected: list[Correspondence] = []
        if scores.size == 0:
            return selected
        k = min(self.k, scores.shape[1])
        top_cols = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        for row, source_id in enumerate(matrix.source_ids):
            for col in top_cols[row]:
                score = float(scores[row, col])
                if score >= self.threshold:
                    selected.append(
                        Correspondence(source_id, matrix.target_ids[col], score)
                    )
        return self._sorted(selected)


class StableMarriageSelection(SelectionStrategy):
    """Gale-Shapley stable 1:1 matching over score preferences.

    Sources propose in descending score order; targets hold their best
    proposal.  Pairs below ``threshold`` are never formed.  The result is
    stable: no unmatched source-target pair prefers each other over their
    assigned partners.
    """

    name = "stable_marriage"

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold

    def select(self, matrix: MatchMatrix) -> list[Correspondence]:
        scores = matrix.scores
        n_sources, n_targets = scores.shape
        if n_sources == 0 or n_targets == 0:
            return []
        # Preference lists: target columns in descending score order, gated.
        preferences: list[list[int]] = []
        for row in range(n_sources):
            order = np.argsort(-scores[row], kind="stable")
            preferences.append(
                [int(col) for col in order if scores[row, col] >= self.threshold]
            )
        next_choice = [0] * n_sources
        engaged_to: dict[int, int] = {}  # target col -> source row
        free = list(range(n_sources))
        while free:
            row = free.pop()
            prefs = preferences[row]
            while next_choice[row] < len(prefs):
                col = prefs[next_choice[row]]
                next_choice[row] += 1
                holder = engaged_to.get(col)
                if holder is None:
                    engaged_to[col] = row
                    break
                if scores[row, col] > scores[holder, col]:
                    engaged_to[col] = row
                    free.append(holder)
                    break
            # else: row exhausts its list and stays unmatched.
        return self._sorted(
            [
                Correspondence(
                    matrix.source_ids[row],
                    matrix.target_ids[col],
                    float(scores[row, col]),
                )
                for col, row in engaged_to.items()
            ]
        )


class HungarianSelection(SelectionStrategy):
    """Maximum-total-score 1:1 assignment (Kuhn-Munkres via scipy)."""

    name = "hungarian"

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold

    def select(self, matrix: MatchMatrix) -> list[Correspondence]:
        scores = matrix.scores
        if scores.size == 0:
            return []
        rows, cols = linear_sum_assignment(-scores)
        selected = [
            Correspondence(
                matrix.source_ids[row],
                matrix.target_ids[col],
                float(scores[row, col]),
            )
            for row, col in zip(rows, cols)
            if scores[row, col] >= self.threshold
        ]
        return self._sorted(selected)
