"""Match voters: the per-strategy scorers of the Harmony architecture.

Each voter scores every (source element, target element) pair with an
evidence-aware confidence in (-1, +1); the engine merges their opinions.
``default_voters`` is the ensemble used throughout the benchmarks.
"""

from repro.matchers.base import MatchVoter, VoterOpinion
from repro.matchers.datatype import DataTypeVoter
from repro.matchers.documentation import DescribingTextVoter, DocumentationVoter
from repro.matchers.instance import InstanceTable, InstanceVoter
from repro.matchers.name import (
    EditDistanceVoter,
    ExactNameVoter,
    NameTokenVoter,
    NgramVoter,
)
from repro.matchers.path import PathVoter
from repro.matchers.profile import (
    FeatureSpace,
    SchemaProfile,
    TokenInterner,
    build_profile,
)
from repro.matchers.structure import StructuralVoter
from repro.matchers.thesaurus import ThesaurusVoter

__all__ = [
    "DataTypeVoter",
    "DescribingTextVoter",
    "DocumentationVoter",
    "EditDistanceVoter",
    "ExactNameVoter",
    "FeatureSpace",
    "InstanceTable",
    "InstanceVoter",
    "MatchVoter",
    "TokenInterner",
    "NameTokenVoter",
    "NgramVoter",
    "PathVoter",
    "SchemaProfile",
    "StructuralVoter",
    "ThesaurusVoter",
    "VoterOpinion",
    "build_profile",
    "DEFAULT_VOTER_WEIGHTS",
    "default_voters",
]

#: Importance priors aligned with :func:`default_voters` order.  Context
#: voters (path, structure) carry the most weight: they are what separates
#: the audit columns recurring under every container (calibrated on the
#: case-study workload; see DESIGN.md and bench E11).
DEFAULT_VOTER_WEIGHTS: tuple[float, ...] = (0.8, 0.8, 1.0, 1.5, 0.5, 2.0, 3.0)


def default_voters() -> list[MatchVoter]:
    """The standard Harmony-style ensemble used by the engine and benches.

    Vectorised voters only (safe at the paper's 10^6-pair scale): name
    tokens, character n-grams, thesaurus, documentation, data types, paths
    and structure.  The thesaurus and structural voters share one lexicon
    instance so the batch fast path caches their canonical features once.
    """
    from repro.text.thesaurus import SynonymLexicon

    lexicon = SynonymLexicon.default()
    return [
        NameTokenVoter(),
        NgramVoter(),
        ThesaurusVoter(lexicon=lexicon),
        DocumentationVoter(),
        DataTypeVoter(),
        PathVoter(),
        StructuralVoter(lexicon=lexicon),
    ]
