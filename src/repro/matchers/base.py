"""Voter interface: every matcher strategy emits an evidence-aware opinion.

A voter looks at all (restricted) source x target element pairs and returns a
:class:`VoterOpinion` holding three aligned matrices:

* ``similarity`` -- the evidence *ratio* in [0, 1],
* ``evidence``   -- the evidence *mass* (>= 0) behind each ratio,
* ``confidence`` -- the (-1, +1) confidence derived from both via
  :func:`repro.voting.confidence_array`.

Keeping all three lets the engine merge confidences while explanations and
ablations can still reach the raw ingredients.

Staged execution
----------------
Every :class:`MatchVoter` here sits in the ``"cheap"`` cost tier (see
:attr:`MatchVoter.cost_tier`): Stage 1 of the cascade runs the whole cheap
ensemble over every scored pair -- on the per-grid path via
:meth:`MatchVoter.vote`, on the corpus-scale batch path via the bulk APIs
below -- and merges once.  Pairs whose merged confidence lands inside a
configured ambiguity band then escalate to a Stage-2
:class:`~repro.cascade.OracleVoter` (cost tier ``"oracle"``), budgeted and
most-ambiguous-first; see :mod:`repro.cascade` and ``docs/cascade.md``.
With no cascade configured, Stage 1 is the entire pipeline.

Bulk fast path
--------------
For corpus-scale batch matching, voters additionally expose
:meth:`MatchVoter.score_block` (full confidence matrix from cached
:class:`~repro.matchers.profile.FeatureSpace` matrices) and
:meth:`MatchVoter.score_pairs` (confidences for an explicit candidate pair
list, as produced by :mod:`repro.batch.blocking` -- the pairs Stage 1
scores; everything blocked out takes the fill value and never escalates).
Vectorised voters implement :meth:`MatchVoter.fast_ratios`; everything
else transparently falls back to the per-grid :meth:`MatchVoter.vote`
path, so both APIs are total over any voter ensemble.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, TypeVar

import numpy as np

from repro.matchers.profile import FeatureSpace, SchemaProfile
from repro.voting.confidence import DEFAULT_TAU, confidence_array

__all__ = ["VoterOpinion", "MatchVoter", "subset", "gather_outer"]

_ItemT = TypeVar("_ItemT")


@dataclass(frozen=True)
class VoterOpinion:
    """One voter's full opinion over a pair grid."""

    voter: str
    confidence: np.ndarray
    similarity: np.ndarray
    evidence: np.ndarray

    def __post_init__(self) -> None:
        if not (
            self.confidence.shape == self.similarity.shape == self.evidence.shape
        ):
            raise ValueError(
                f"misaligned opinion matrices from voter {self.voter!r}: "
                f"{self.confidence.shape} / {self.similarity.shape} / "
                f"{self.evidence.shape}"
            )
        if self.confidence.size and (
            self.confidence.min() < -1.0 or self.confidence.max() > 1.0
        ):
            raise ValueError(f"voter {self.voter!r} produced confidence outside [-1, 1]")

    @property
    def shape(self) -> tuple[int, int]:
        return self.confidence.shape


def subset(items: Sequence[_ItemT], positions: np.ndarray | None) -> list[_ItemT]:
    """Restrict a per-element list to the requested positions (or keep all)."""
    if positions is None:
        return list(items)
    return [items[position] for position in positions]


def gather_outer(
    operation,
    left: np.ndarray,
    right: np.ndarray,
    rows: np.ndarray | None,
    cols: np.ndarray | None,
) -> np.ndarray:
    """Apply a binary ufunc pairwise: full outer grid, or per candidate pair."""
    if rows is None:
        return operation(left[:, None], right[None, :])
    return operation(left[rows], right[cols])


class MatchVoter(ABC):
    """Base class for match voters.

    Subclasses implement :meth:`ratios` returning (similarity, evidence)
    matrices; the base class derives confidences with the shared tau so all
    voters speak the same evidence dialect.

    Calibration
    -----------
    Raw similarity ratios are not probabilities: random name pairs score a
    Jaccard near 0.05, so a Jaccard of 0.5 is *strong* positive evidence,
    not a coin flip.  Each voter therefore declares:

    ``neutral``
        The similarity level that constitutes even evidence.  The base class
        maps similarity piecewise-linearly so that ``neutral`` lands at
        calibrated 0.5 (confidence 0), 1.0 stays 1.0 and 0.0 stays 0.0.
    ``negative_scale``
        Multiplier in [0, 1] applied to negative confidences.  For most
        linguistic voters, *absence* of shared tokens is far weaker evidence
        of a non-match than presence is of a match (independently developed
        schemata disagree on names all the time) -- so their negative votes
        are damped.
    """

    #: Short stable identifier used in reports, ablations and provenance.
    name: str = "voter"

    #: Cascade cost tier.  Every ensemble voter is ``"cheap"`` (Stage 1,
    #: runs over every scored pair); Stage-2 oracles declare ``"oracle"``
    #: (see :class:`repro.cascade.OracleVoter`) and are only consulted for
    #: pairs escalated out of the ambiguity band.
    cost_tier: str = "cheap"

    def __init__(
        self,
        tau: float = DEFAULT_TAU,
        neutral: float = 0.5,
        negative_scale: float = 1.0,
    ):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if not 0.0 < neutral < 1.0:
            raise ValueError(f"neutral must be in (0, 1), got {neutral}")
        if not 0.0 <= negative_scale <= 1.0:
            raise ValueError(
                f"negative_scale must be in [0, 1], got {negative_scale}"
            )
        self.tau = tau
        self.neutral = neutral
        self.negative_scale = negative_scale
        #: Ablation switch (bench E11): when True, the evidence *mass* is
        #: ignored -- any pair with nonzero evidence votes at full strength
        #: (2*calibrated - 1), exactly the conventional evidence-ratio-only
        #: behaviour the paper contrasts Harmony against.
        self.evidence_blind = False

    def calibrate(self, similarity: np.ndarray) -> np.ndarray:
        """Map raw similarity through the voter's neutral point."""
        clipped = np.clip(similarity, 0.0, 1.0)
        below = 0.5 * clipped / self.neutral
        above = 0.5 + 0.5 * (clipped - self.neutral) / (1.0 - self.neutral)
        return np.where(clipped < self.neutral, below, above)

    @abstractmethod
    def ratios(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        source_positions: np.ndarray | None = None,
        target_positions: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (similarity, evidence) matrices for the restricted grid."""

    def confidences(self, similarity: np.ndarray, evidence: np.ndarray) -> np.ndarray:
        """Map (similarity, evidence) arrays of any shape to confidences.

        Shared by the per-grid :meth:`vote` path and the bulk
        :meth:`score_block` / :meth:`score_pairs` fast path, so both speak
        exactly the same calibration dialect.
        """
        calibrated = self.calibrate(similarity)
        if self.evidence_blind:
            confidence = np.where(evidence > 0, 2.0 * calibrated - 1.0, 0.0)
        else:
            confidence = confidence_array(calibrated, evidence, tau=self.tau)
        if self.negative_scale != 1.0:
            confidence = np.where(
                confidence < 0, confidence * self.negative_scale, confidence
            )
        return confidence

    def vote(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        source_positions: np.ndarray | None = None,
        target_positions: np.ndarray | None = None,
    ) -> VoterOpinion:
        """Produce the full evidence-aware opinion for the pair grid."""
        similarity, evidence = self.ratios(
            source, target, source_positions, target_positions
        )
        return VoterOpinion(
            voter=self.name,
            confidence=self.confidences(similarity, evidence),
            similarity=similarity,
            evidence=evidence,
        )

    # -- bulk fast path -------------------------------------------------
    def fast_ratios(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        space: FeatureSpace,
        rows: np.ndarray | None = None,
        cols: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(similarity, evidence) from cached feature matrices.

        ``rows is None`` means the full grid (2-D outputs); otherwise the
        outputs are 1-D, aligned with the candidate (rows, cols) pairs.
        Vectorised voters override this; the base class signals "no fast
        path" so callers fall back to :meth:`vote`.
        """
        raise NotImplementedError(f"{type(self).__name__} has no bulk fast path")

    @property
    def supports_block(self) -> bool:
        """Whether this voter implements the cached-feature fast path."""
        return type(self).fast_ratios is not MatchVoter.fast_ratios

    def score_block(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        space: FeatureSpace | None = None,
    ) -> np.ndarray:
        """Bulk confidence matrix over the full source x target grid.

        Equals ``vote(source, target).confidence`` (within float tolerance)
        but is computed from the :class:`FeatureSpace` caches: no per-call
        re-tokenization, vocabulary building, or canonicalisation.  Voters
        without a fast path fall back to the per-grid :meth:`vote`.
        """
        if not self.supports_block:
            return self.vote(source, target).confidence
        space = space if space is not None else FeatureSpace()
        similarity, evidence = self.fast_ratios(source, target, space)
        return self.confidences(similarity, evidence)

    def score_pairs(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        rows: np.ndarray,
        cols: np.ndarray,
        space: FeatureSpace | None = None,
    ) -> np.ndarray:
        """Confidences for an explicit candidate pair list (1-D).

        ``rows``/``cols`` are aligned source/target element positions, as
        produced by :func:`repro.batch.blocking.candidate_pairs`.  This is
        the engine room of the batch fast path: work is proportional to the
        number of *candidates*, not the full cross-product.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if not self.supports_block:
            return self.vote(source, target).confidence[rows, cols]
        space = space if space is not None else FeatureSpace()
        similarity, evidence = self.fast_ratios(source, target, space, rows, cols)
        return self.confidences(similarity, evidence)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, tau={self.tau})"
