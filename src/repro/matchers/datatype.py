"""Data-type voter: soft compatibility of normalised type families.

Type agreement alone never confirms a match (every schema has hundreds of
strings), so this voter's *evidence mass is deliberately small*: it can veto
(a DATE against a BOOLEAN drags the merged score down) and mildly reinforce,
but it cannot overpower linguistic voters.  Pairs where either side's type is
UNKNOWN vote exactly 0.
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter, gather_outer, subset
from repro.schema.datatypes import DataType, compatibility_matrix, family_table

__all__ = ["DataTypeVoter"]


class DataTypeVoter(MatchVoter):
    """Pairwise type-family compatibility with low evidence mass."""

    name = "datatype"

    def __init__(
        self,
        tau: float = 3.0,
        neutral: float = 0.5,
        negative_scale: float = 1.0,
        evidence_mass: float = 1.2,
    ):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)
        if evidence_mass <= 0:
            raise ValueError(f"evidence_mass must be positive, got {evidence_mass}")
        self.evidence_mass = evidence_mass

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_types = subset(source.data_types, source_positions)
        target_types = subset(target.data_types, target_positions)
        similarity = compatibility_matrix(source_types, target_types)
        source_known = np.array(
            [data_type is not DataType.UNKNOWN for data_type in source_types]
        )
        target_known = np.array(
            [data_type is not DataType.UNKNOWN for data_type in target_types]
        )
        both_known = source_known[:, None] & target_known[None, :]
        evidence = np.where(both_known, self.evidence_mass, 0.0)
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        table, _ = family_table()
        source_ids = space.type_ids(source)
        target_ids = space.type_ids(target)
        if rows is None:
            similarity = table[np.ix_(source_ids, target_ids)]
        else:
            similarity = table[source_ids[rows], target_ids[cols]]
        both_known = gather_outer(
            np.logical_and, space.type_known(source), space.type_known(target), rows, cols
        )
        evidence = np.where(both_known, self.evidence_mass, 0.0)
        return similarity, evidence
