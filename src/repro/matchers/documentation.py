"""Documentation voter: TF-IDF cosine over element documentation.

"Unlike most schema matching tools, Harmony relies heavily on textual
documentation to identify candidate correspondences instead of data instances
because, at least in the government sector, schema documentation is easier to
obtain than data" (CIDR 2009, section 3.2).

This voter fits one TF-IDF model over the union of both schemata's
documentation (so IDF down-weights boilerplate present everywhere) and scores
pairs by cosine.  Evidence is the smaller documentation length of the pair:
two rich paragraphs agreeing is far stronger evidence than two three-word
stubs agreeing -- precisely the "total amount of available evidence" the
paper calls out as Harmony's novelty.
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter, gather_outer, subset
from repro.matchers.profile import SchemaProfile
from repro.text.tfidf import tfidf_similarity_matrix

__all__ = ["DocumentationVoter", "DescribingTextVoter"]


class DocumentationVoter(MatchVoter):
    """TF-IDF cosine over documentation terms only."""

    name = "documentation"

    def __init__(self, tau: float = 6.0, neutral: float = 0.25, negative_scale: float = 0.5):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_docs = subset(source.doc_terms, source_positions)
        target_docs = subset(target.doc_terms, target_positions)
        similarity = tfidf_similarity_matrix(source_docs, target_docs)
        source_sizes = np.array([len(terms) for terms in source_docs], dtype=float)
        target_sizes = np.array([len(terms) for terms in target_docs], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        similarity = space.tfidf_cosine(source, target, "doc", rows=rows, cols=cols)
        evidence = gather_outer(
            np.minimum, space.doc_lengths(source), space.doc_lengths(target), rows, cols
        )
        return similarity, evidence


class DescribingTextVoter(MatchVoter):
    """TF-IDF cosine over name *and* documentation terms combined.

    Useful when documentation is sparse: the name tokens keep the vector
    non-empty, and any documentation enriches it.
    """

    name = "describing_text"

    def __init__(self, tau: float = 6.0, neutral: float = 0.25, negative_scale: float = 0.5):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_texts = subset(source.text_terms, source_positions)
        target_texts = subset(target.text_terms, target_positions)
        similarity = tfidf_similarity_matrix(source_texts, target_texts)
        source_sizes = np.array([len(terms) for terms in source_texts], dtype=float)
        target_sizes = np.array([len(terms) for terms in target_texts], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        similarity = space.tfidf_cosine(source, target, "text", rows=rows, cols=cols)
        evidence = gather_outer(
            np.minimum, space.text_lengths(source), space.text_lengths(target), rows, cols
        )
        return similarity, evidence
