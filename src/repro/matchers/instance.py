"""Instance voter: value-overlap evidence from data samples.

Section 3.2 contrasts Harmony with matchers that rely on "data instances"
and explains why the paper's engagements could not use them ("data ...
may not yet exist, or may be sensitive").  This voter implements the
instance-based strategy so the trade-off is measurable: when value samples
*are* available (see :mod:`repro.synthetic.instances`), how much do they
add to a documentation-driven ensemble?

Similarity is Jaccard over distinct values; evidence mass is the smaller
distinct-value count (two columns agreeing on 30 distinct values is far
stronger evidence than agreeing on two booleans).  Elements without samples
vote 0 -- the "data may not yet exist" case degrades gracefully.
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter
from repro.matchers.profile import SchemaProfile
from repro.matchers.setsim import jaccard_matrix
from repro.schema.schema import Schema

__all__ = ["InstanceTable", "InstanceVoter"]


class InstanceTable:
    """Column values for one schema: ``{element_id: [values...]}``.

    This is the voter's input contract; :mod:`repro.synthetic.instances`
    generates tables for synthetic schemata, and real deployments would
    fill one from profiling queries.
    """

    def __init__(self, schema: Schema, values: dict[str, list[str]]):
        self.schema = schema
        self._values = values

    def values_of(self, element_id: str) -> list[str]:
        """The value sample for one leaf element (empty for containers)."""
        return self._values.get(element_id, [])

    def __contains__(self, element_id: str) -> bool:
        return element_id in self._values

    def __len__(self) -> int:
        return len(self._values)


class InstanceVoter(MatchVoter):
    """Jaccard over distinct sampled values of each element pair."""

    name = "instance"

    def __init__(
        self,
        source_instances: InstanceTable,
        target_instances: InstanceTable,
        tau: float = 8.0,
        neutral: float = 0.15,
        negative_scale: float = 0.4,
    ):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)
        self.source_instances = source_instances
        self.target_instances = target_instances

    def _documents(
        self,
        profile: SchemaProfile,
        instances: InstanceTable,
        positions: np.ndarray | None,
    ) -> list[list[str]]:
        chosen = (
            positions if positions is not None else np.arange(len(profile), dtype=int)
        )
        return [
            list(set(instances.values_of(profile.element_ids[position])))
            for position in chosen
        ]

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_values = self._documents(
            source, self.source_instances, source_positions
        )
        target_values = self._documents(
            target, self.target_instances, target_positions
        )
        similarity = jaccard_matrix(source_values, target_values)
        source_sizes = np.array([len(values) for values in source_values], dtype=float)
        target_sizes = np.array([len(values) for values in target_values], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence
