"""Name-based match voters.

Three strategies over element names, in increasing tolerance:

* :class:`ExactNameVoter` -- case-insensitive equality (the naive baseline a
  spreadsheet jockey would start from).
* :class:`NameTokenVoter` -- Jaccard over pipeline-normalised name terms;
  robust to word order and convention (``DATE_BEGIN`` vs ``BeginDate``).
* :class:`NgramVoter` -- Dice over character 3-grams of the raw name; robust
  to truncation and fused words (``REGNO`` vs ``RegistrationNumber`` scores
  low here but non-zero, where token overlap sees nothing).
* :class:`EditDistanceVoter` -- normalised Levenshtein over raw names.
  Exact but O(|a|x|b|) per pair, so intended for small grids and validation;
  the engine's default ensemble uses the vectorised voters above.

Evidence semantics: the mass is the token (or gram) count actually compared;
one shared two-token name is weaker evidence than a six-token agreement.
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter, gather_outer, subset
from repro.matchers.profile import SchemaProfile
from repro.matchers.setsim import dice_matrix, jaccard_matrix
from repro.text.similarity import levenshtein_similarity

__all__ = ["ExactNameVoter", "NameTokenVoter", "NgramVoter", "EditDistanceVoter"]


class ExactNameVoter(MatchVoter):
    """Case-insensitive exact name equality."""

    name = "exact_name"

    def __init__(self, tau: float = 3.0, neutral: float = 0.5, negative_scale: float = 0.15):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_names = subset(source.raw_names, source_positions)
        target_names = subset(target.raw_names, target_positions)
        similarity = np.zeros((len(source_names), len(target_names)))
        target_index: dict[str, list[int]] = {}
        for col, target_name in enumerate(target_names):
            target_index.setdefault(target_name, []).append(col)
        for row, source_name in enumerate(source_names):
            for col in target_index.get(source_name, ()):
                similarity[row, col] = 1.0
        # An exact full-name equality is strong evidence; a mere inequality
        # says little (names differ across conventions all the time), so the
        # evidence mass is high only where names coincide.
        evidence = np.where(similarity == 1.0, 8.0, 0.5)
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        equal = gather_outer(
            np.equal, space.raw_name_ids(source), space.raw_name_ids(target), rows, cols
        )
        return equal.astype(float), np.where(equal, 8.0, 0.5)


class NameTokenVoter(MatchVoter):
    """Jaccard over normalised name terms (the workhorse linguistic voter)."""

    name = "name_token"

    def __init__(self, tau: float = 3.0, neutral: float = 0.2, negative_scale: float = 0.4):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_terms = subset(source.name_terms, source_positions)
        target_terms = subset(target.name_terms, target_positions)
        similarity = jaccard_matrix(source_terms, target_terms)
        source_sizes = np.array([len(set(terms)) for terms in source_terms], dtype=float)
        target_sizes = np.array([len(set(terms)) for terms in target_terms], dtype=float)
        # Evidence is the smaller token-set size: a pair can only agree on as
        # many tokens as its terser name has.  Pairs with an empty side carry
        # zero evidence and therefore vote 0 (complete uncertainty).
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        counts = space.pair_counts(source, target, "name", rows=rows, cols=cols)
        source_sizes = space.set_sizes(source, "name")
        target_sizes = space.set_sizes(target, "name")
        unions = gather_outer(np.add, source_sizes, target_sizes, rows, cols) - counts
        with np.errstate(invalid="ignore", divide="ignore"):
            similarity = np.where(unions > 0, counts / unions, 0.0)
        evidence = gather_outer(np.minimum, source_sizes, target_sizes, rows, cols)
        return similarity, evidence


class NgramVoter(MatchVoter):
    """Dice over character 3-grams of raw names (typo/truncation tolerant)."""

    name = "name_ngram"

    def __init__(self, tau: float = 12.0, neutral: float = 0.3, negative_scale: float = 0.25):
        # Gram counts are larger than token counts, so saturation is slower.
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_grams = subset(source.name_grams, source_positions)
        target_grams = subset(target.name_grams, target_positions)
        similarity = dice_matrix(source_grams, target_grams)
        source_sizes = np.array([len(set(grams)) for grams in source_grams], dtype=float)
        target_sizes = np.array([len(set(grams)) for grams in target_grams], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        counts = space.pair_counts(source, target, "gram", rows=rows, cols=cols)
        source_sizes = space.set_sizes(source, "gram")
        target_sizes = space.set_sizes(target, "gram")
        totals = gather_outer(np.add, source_sizes, target_sizes, rows, cols)
        with np.errstate(invalid="ignore", divide="ignore"):
            similarity = np.where(totals > 0, 2.0 * counts / totals, 0.0)
        evidence = gather_outer(np.minimum, source_sizes, target_sizes, rows, cols)
        return similarity, evidence


class EditDistanceVoter(MatchVoter):
    """Normalised Levenshtein similarity over raw names (exact, per-pair).

    Quadratic per pair; use on small grids, validation panels, or blocked
    candidate sets -- not inside the full 10^6-pair engine run.
    """

    name = "edit_distance"

    def __init__(
        self,
        tau: float = 10.0,
        neutral: float = 0.55,
        negative_scale: float = 0.4,
        max_pairs: int = 2_000_000,
    ):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)
        self.max_pairs = max_pairs

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_names = subset(source.raw_names, source_positions)
        target_names = subset(target.raw_names, target_positions)
        n_pairs = len(source_names) * len(target_names)
        if n_pairs > self.max_pairs:
            raise ValueError(
                f"EditDistanceVoter asked for {n_pairs} pairs "
                f"(cap {self.max_pairs}); use the vectorised name voters at scale"
            )
        similarity = np.zeros((len(source_names), len(target_names)))
        for row, source_name in enumerate(source_names):
            for col, target_name in enumerate(target_names):
                similarity[row, col] = levenshtein_similarity(source_name, target_name)
        source_sizes = np.array([len(name) for name in source_names], dtype=float)
        target_sizes = np.array([len(name) for name in target_names], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :]) / 2.0
        return similarity, evidence
