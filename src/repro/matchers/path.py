"""Path voter: context tokens from the element's ancestors.

``Vehicle/Registration/Number`` and ``VEH_REG/REG_NO`` agree not only on the
leaf but on their *containers*.  This voter compares the token sets of each
element's full root-to-element path, giving container context a voice --
which is what separates ``Person/Name`` from ``Operation/Name``.
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter, gather_outer
from repro.matchers.profile import SchemaProfile
from repro.matchers.setsim import jaccard_matrix

__all__ = ["PathVoter"]


class PathVoter(MatchVoter):
    """Jaccard over the union of the element's and its ancestors' name terms."""

    name = "path"

    def __init__(self, tau: float = 4.0, neutral: float = 0.2, negative_scale: float = 0.3):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)

    @staticmethod
    def _path_terms(profile: SchemaProfile, positions: np.ndarray | None) -> list[list[str]]:
        chosen = (
            positions if positions is not None else np.arange(len(profile), dtype=int)
        )
        documents: list[list[str]] = []
        for position in chosen:
            terms: list[str] = list(profile.name_terms[position])
            cursor = profile.parent_index[position]
            while cursor != -1:
                terms.extend(profile.name_terms[cursor])
                cursor = profile.parent_index[cursor]
            documents.append(terms)
        return documents

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_paths = self._path_terms(source, source_positions)
        target_paths = self._path_terms(target, target_positions)
        similarity = jaccard_matrix(source_paths, target_paths)
        source_sizes = np.array([len(set(terms)) for terms in source_paths], dtype=float)
        target_sizes = np.array([len(set(terms)) for terms in target_paths], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        counts = space.pair_counts(source, target, "path", rows=rows, cols=cols)
        source_sizes = space.set_sizes(source, "path")
        target_sizes = space.set_sizes(target, "path")
        unions = gather_outer(np.add, source_sizes, target_sizes, rows, cols) - counts
        with np.errstate(invalid="ignore", divide="ignore"):
            similarity = np.where(unions > 0, counts / unions, 0.0)
        evidence = gather_outer(np.minimum, source_sizes, target_sizes, rows, cols)
        return similarity, evidence
