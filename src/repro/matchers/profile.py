"""Precomputed linguistic/structural profiles of a schema.

Running voters over a 1378x784 match means ~10^6 pairs (CIDR 2009, section
3.1); re-tokenizing names per pair would be quadratic waste.  A
:class:`SchemaProfile` runs the linguistic pipeline **once per element** and
caches everything voters need, keyed by element position:

* stemmed name terms and documentation terms
* combined describing-text terms
* character 3-grams of the raw name
* normalised data types, depths, parent/child indexes

Profiles are cheap to slice: voters accept an optional index array so that
incremental (sub-tree) matching reuses the same profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schema.datatypes import DataType
from repro.schema.element import SchemaElement
from repro.schema.schema import Schema
from repro.text.pipeline import LinguisticPipeline
from repro.text.tokenize import char_ngrams

__all__ = ["SchemaProfile", "build_profile"]


@dataclass
class SchemaProfile:
    """Cached per-element features for one schema (see module docstring).

    All list attributes are indexed by element *position* -- the index of the
    element in schema iteration order -- and ``index_of`` maps element ids to
    positions.
    """

    schema: Schema
    element_ids: list[str]
    index_of: dict[str, int]
    name_terms: list[list[str]]
    doc_terms: list[list[str]]
    text_terms: list[list[str]]
    name_grams: list[list[str]]
    raw_names: list[str]
    data_types: list[DataType]
    depths: np.ndarray
    parent_index: np.ndarray  # -1 for roots
    children_index: list[list[int]]

    def __len__(self) -> int:
        return len(self.element_ids)

    def element(self, position: int) -> SchemaElement:
        return self.schema.element(self.element_ids[position])

    def positions_of(self, element_ids: list[str]) -> np.ndarray:
        """Positions for a list of element ids (for sub-tree restriction)."""
        return np.array([self.index_of[element_id] for element_id in element_ids], dtype=int)

    def subtree_positions(self, root_id: str) -> np.ndarray:
        """Positions of a sub-tree (the unit of incremental matching)."""
        ids = [element.element_id for element in self.schema.subtree(root_id)]
        return self.positions_of(ids)

    def leaf_positions(self) -> np.ndarray:
        return np.array(
            [
                position
                for position, children in enumerate(self.children_index)
                if not children
            ],
            dtype=int,
        )


def build_profile(
    schema: Schema,
    name_pipeline: LinguisticPipeline | None = None,
    doc_pipeline: LinguisticPipeline | None = None,
) -> SchemaProfile:
    """Run the linguistic pipeline over every element of ``schema``.

    ``name_pipeline`` defaults to the schema-stopword-aware name pipeline and
    ``doc_pipeline`` to the prose pipeline, matching Harmony's preprocessing.
    """
    names = name_pipeline if name_pipeline is not None else LinguisticPipeline.for_names()
    docs = doc_pipeline if doc_pipeline is not None else LinguisticPipeline.for_documentation()

    element_ids: list[str] = []
    index_of: dict[str, int] = {}
    name_terms: list[list[str]] = []
    doc_terms: list[list[str]] = []
    text_terms: list[list[str]] = []
    name_grams: list[list[str]] = []
    raw_names: list[str] = []
    data_types: list[DataType] = []
    depths: list[int] = []
    parent_positions: list[int] = []
    children_index: list[list[int]] = []

    for position, element in enumerate(schema):
        element_ids.append(element.element_id)
        index_of[element.element_id] = position
        element_name_terms = names.terms(element.name)
        element_doc_terms = docs.terms(element.documentation) if element.documentation else []
        name_terms.append(element_name_terms)
        doc_terms.append(element_doc_terms)
        text_terms.append(element_name_terms + element_doc_terms)
        raw_names.append(element.name.lower())
        name_grams.append(char_ngrams(element.name.lower(), 3))
        data_types.append(element.data_type)
        depths.append(schema.depth(element))
        children_index.append([])

    for position, element in enumerate(schema):
        if element.parent_id is None:
            parent_positions.append(-1)
        else:
            parent_position = index_of[element.parent_id]
            parent_positions.append(parent_position)
            children_index[parent_position].append(position)

    return SchemaProfile(
        schema=schema,
        element_ids=element_ids,
        index_of=index_of,
        name_terms=name_terms,
        doc_terms=doc_terms,
        text_terms=text_terms,
        name_grams=name_grams,
        raw_names=raw_names,
        data_types=data_types,
        depths=np.array(depths, dtype=int),
        parent_index=np.array(parent_positions, dtype=int),
        children_index=children_index,
    )
