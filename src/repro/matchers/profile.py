"""Precomputed linguistic/structural profiles of a schema.

Running voters over a 1378x784 match means ~10^6 pairs (CIDR 2009, section
3.1); re-tokenizing names per pair would be quadratic waste.  A
:class:`SchemaProfile` runs the linguistic pipeline **once per element** and
caches everything voters need, keyed by element position:

* stemmed name terms and documentation terms
* combined describing-text terms
* character 3-grams of the raw name
* normalised data types, depths, parent/child indexes

Profiles are cheap to slice: voters accept an optional index array so that
incremental (sub-tree) matching reuses the same profile.

For corpus-scale batch matching (see :mod:`repro.batch` and
``docs/architecture.md``), a :class:`FeatureSpace` goes one level further: it
interns every token into a shared vocabulary and caches **per-schema sparse
feature matrices** (token-set incidences and TF-IDF count matrices).  With
those in place, one schema-vs-schema voter run reduces to a handful of
sparse products -- no per-match re-tokenization, vocabulary building, or
synonym canonicalisation -- which is what the voters' bulk
``score_block`` / ``score_pairs`` APIs are built on.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.schema.datatypes import DataType, family_table
from repro.schema.element import SchemaElement
from repro.schema.schema import Schema
from repro.text.pipeline import LinguisticPipeline
from repro.text.thesaurus import SynonymLexicon
from repro.text.tokenize import char_ngrams

__all__ = [
    "SchemaProfile",
    "build_profile",
    "TokenInterner",
    "FeatureSpace",
]


@dataclass
class SchemaProfile:
    """Cached per-element features for one schema (see module docstring).

    All list attributes are indexed by element *position* -- the index of the
    element in schema iteration order -- and ``index_of`` maps element ids to
    positions.
    """

    schema: Schema
    element_ids: list[str]
    index_of: dict[str, int]
    name_terms: list[list[str]]
    doc_terms: list[list[str]]
    text_terms: list[list[str]]
    name_grams: list[list[str]]
    raw_names: list[str]
    data_types: list[DataType]
    depths: np.ndarray
    parent_index: np.ndarray  # -1 for roots
    children_index: list[list[int]]

    def __len__(self) -> int:
        return len(self.element_ids)

    def element(self, position: int) -> SchemaElement:
        return self.schema.element(self.element_ids[position])

    def positions_of(self, element_ids: list[str]) -> np.ndarray:
        """Positions for a list of element ids (for sub-tree restriction)."""
        return np.array([self.index_of[element_id] for element_id in element_ids], dtype=int)

    def subtree_positions(self, root_id: str) -> np.ndarray:
        """Positions of a sub-tree (the unit of incremental matching)."""
        ids = [element.element_id for element in self.schema.subtree(root_id)]
        return self.positions_of(ids)

    def leaf_positions(self) -> np.ndarray:
        return np.array(
            [
                position
                for position, children in enumerate(self.children_index)
                if not children
            ],
            dtype=int,
        )


def build_profile(
    schema: Schema,
    name_pipeline: LinguisticPipeline | None = None,
    doc_pipeline: LinguisticPipeline | None = None,
) -> SchemaProfile:
    """Run the linguistic pipeline over every element of ``schema``.

    ``name_pipeline`` defaults to the schema-stopword-aware name pipeline and
    ``doc_pipeline`` to the prose pipeline, matching Harmony's preprocessing.
    """
    names = name_pipeline if name_pipeline is not None else LinguisticPipeline.for_names()
    docs = doc_pipeline if doc_pipeline is not None else LinguisticPipeline.for_documentation()

    element_ids: list[str] = []
    index_of: dict[str, int] = {}
    name_terms: list[list[str]] = []
    doc_terms: list[list[str]] = []
    text_terms: list[list[str]] = []
    name_grams: list[list[str]] = []
    raw_names: list[str] = []
    data_types: list[DataType] = []
    depths: list[int] = []
    parent_positions: list[int] = []
    children_index: list[list[int]] = []

    for position, element in enumerate(schema):
        element_ids.append(element.element_id)
        index_of[element.element_id] = position
        element_name_terms = names.terms(element.name)
        element_doc_terms = docs.terms(element.documentation) if element.documentation else []
        name_terms.append(element_name_terms)
        doc_terms.append(element_doc_terms)
        text_terms.append(element_name_terms + element_doc_terms)
        raw_names.append(element.name.lower())
        name_grams.append(char_ngrams(element.name.lower(), 3))
        data_types.append(element.data_type)
        depths.append(schema.depth(element))
        children_index.append([])

    for position, element in enumerate(schema):
        if element.parent_id is None:
            parent_positions.append(-1)
        else:
            parent_position = index_of[element.parent_id]
            parent_positions.append(parent_position)
            children_index[parent_position].append(position)

    return SchemaProfile(
        schema=schema,
        element_ids=element_ids,
        index_of=index_of,
        name_terms=name_terms,
        doc_terms=doc_terms,
        text_terms=text_terms,
        name_grams=name_grams,
        raw_names=raw_names,
        data_types=data_types,
        depths=np.array(depths, dtype=int),
        parent_index=np.array(parent_positions, dtype=int),
        children_index=children_index,
    )


# ----------------------------------------------------------------------
# Corpus-scale feature cache (the batch fast path's foundation)
# ----------------------------------------------------------------------


class TokenInterner:
    """Growable token -> column-id mapping shared across schema profiles.

    Unlike :class:`repro.text.tfidf.Vocabulary` (fit once per model), an
    interner keeps growing as new schemata join the corpus; feature matrices
    store raw CSR arrays and are re-materialised at the current width, so a
    matrix built when the vocabulary had 3k tokens still multiplies cleanly
    against one built at 5k.
    """

    __slots__ = ("_index",)

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def intern(self, token: str) -> int:
        existing = self._index.get(token)
        if existing is not None:
            return existing
        new_id = len(self._index)
        self._index[token] = new_id
        return new_id


@dataclass
class _Feature:
    """Raw CSR arrays of one per-schema feature matrix (width-agnostic)."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    interner: TokenInterner

    def matrix(self) -> sparse.csr_matrix:
        """Materialise at the interner's *current* width."""
        width = max(len(self.interner), 1)
        return sparse.csr_matrix(
            (self.data, self.indices, self.indptr),
            shape=(len(self.indptr) - 1, width),
        )

    @property
    def row_sizes(self) -> np.ndarray:
        """Number of stored entries per row (set sizes for set features)."""
        return np.diff(self.indptr).astype(float)


def _set_feature(documents: Sequence[Sequence[str]], interner: TokenInterner) -> _Feature:
    """Binary set-incidence rows (one per document) over ``interner``."""
    indptr = [0]
    indices: list[int] = []
    for document in documents:
        indices.extend(interner.intern(token) for token in set(document))
        indptr.append(len(indices))
    return _Feature(
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        data=np.ones(len(indices), dtype=np.float64),
        interner=interner,
    )


def _bag_feature(documents: Sequence[Sequence[str]], interner: TokenInterner) -> _Feature:
    """Token-count rows (bags, for TF-IDF) over ``interner``."""
    indptr = [0]
    indices: list[int] = []
    data: list[float] = []
    for document in documents:
        for token, count in Counter(document).items():
            indices.append(interner.intern(token))
            data.append(float(count))
        indptr.append(len(indices))
    return _Feature(
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        data=np.asarray(data, dtype=np.float64),
        interner=interner,
    )


def _path_documents(profile: SchemaProfile) -> list[list[str]]:
    """Per-element name terms of the element plus all its ancestors."""
    documents: list[list[str]] = []
    for position in range(len(profile)):
        terms = list(profile.name_terms[position])
        cursor = int(profile.parent_index[position])
        while cursor != -1:
            terms.extend(profile.name_terms[cursor])
            cursor = int(profile.parent_index[cursor])
        documents.append(terms)
    return documents


#: Grids up to this many cells gather fastest through a dense scratch
#: array; larger grids switch to the nnz-proportional searchsorted path.
_DENSE_GATHER_LIMIT = 4_000_000


def _gather_pairs(
    product: sparse.spmatrix, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Values of a sparse pair-product at explicit (row, col) pairs.

    For interactive-scale grids densifying once and indexing is the
    fastest gather; beyond :data:`_DENSE_GATHER_LIMIT` cells the dense
    scratch would dominate, so the gather flattens the canonical CSR
    structure and binary-searches it -- memory stays proportional to the
    product's nonzeros, work to the candidates.
    """
    matrix = product.tocsr()
    n_rows, n_cols = matrix.shape
    if n_rows * n_cols <= _DENSE_GATHER_LIMIT:
        return matrix.toarray()[rows, cols]
    matrix.sum_duplicates()
    matrix.sort_indices()
    if matrix.nnz == 0:
        return np.zeros(rows.size)
    nnz_rows = np.repeat(
        np.arange(n_rows, dtype=np.int64), np.diff(matrix.indptr)
    )
    flat = nnz_rows * n_cols + matrix.indices
    query = rows.astype(np.int64) * n_cols + cols.astype(np.int64)
    positions = np.minimum(np.searchsorted(flat, query), flat.size - 1)
    return np.where(flat[positions] == query, matrix.data[positions], 0.0)


class FeatureSpace:
    """Shared vocabulary plus per-profile cached sparse feature matrices.

    One ``FeatureSpace`` serves a whole corpus of schemata: tokens are
    interned once, and each profile's incidence / count matrices are built
    once and reused by every subsequent match against any other profile in
    the space.  Feature kinds:

    ``name``       binary incidence over pipeline-normalised name terms
    ``gram``       binary incidence over character 3-grams of the raw name
    ``path``       binary incidence over the element's and ancestors' terms
    ``doc``        token *counts* over documentation terms (for TF-IDF)
    ``text``       token counts over name+documentation terms (for TF-IDF)
    ``doc_sets``   binary incidence over documentation terms (for blocking)
    ``canonical``  binary incidence over thesaurus-canonicalised name terms
                   (cached per lexicon instance)

    The cache holds strong references to profiles (id-keyed); call
    :meth:`clear` between unrelated corpora to release memory.

    One space may be shared across threads (the serving tier shares one
    per process): every method takes :attr:`lock`, because interning is a
    check-then-assign on the growing shared vocabulary and cross-profile
    products require both sides materialised at one vocabulary width.
    The pattern throughout (and for external callers touching raw
    features, like the blocking stage) is *snapshot under the lock,
    compute outside it*: materialised matrices are immutable, so the
    lock serialises feature derivation, never the matching math.
    """

    _SET_KINDS = ("name", "gram", "path", "doc_sets")
    _BAG_KINDS = ("doc", "text")

    def __init__(self, lexicon: SynonymLexicon | None = None):
        self.lexicon = lexicon if lexicon is not None else SynonymLexicon.default()
        self._interners: dict[str, TokenInterner] = {}
        self._features: dict[tuple[int, str], _Feature] = {}
        self._vectors: dict[tuple[int, str], np.ndarray] = {}
        self._pinned: dict[int, object] = {}
        #: Reentrant on purpose: pair-level methods re-enter :meth:`feature`.
        self.lock = threading.RLock()

    def clear(self) -> None:
        """Drop all cached features and pinned profile references."""
        with self.lock:
            self._interners.clear()
            self._features.clear()
            self._vectors.clear()
            self._pinned.clear()

    # -- features -------------------------------------------------------
    def _interner(self, key: str) -> TokenInterner:
        interner = self._interners.get(key)
        if interner is None:
            interner = TokenInterner()
            self._interners[key] = interner
        return interner

    def _documents(
        self, profile: SchemaProfile, kind: str, lexicon: SynonymLexicon
    ) -> Sequence[Sequence[str]]:
        if kind == "name":
            return profile.name_terms
        if kind == "gram":
            return profile.name_grams
        if kind == "path":
            return _path_documents(profile)
        if kind in ("doc", "doc_sets"):
            return profile.doc_terms
        if kind == "text":
            return profile.text_terms
        if kind == "canonical":
            return [
                [lexicon.canonical(term) for term in terms]
                for terms in profile.name_terms
            ]
        raise ValueError(f"unknown feature kind {kind!r}")

    def feature(
        self,
        profile: SchemaProfile,
        kind: str,
        lexicon: SynonymLexicon | None = None,
    ) -> _Feature:
        """The cached raw feature for ``profile`` (built on first request)."""
        lexicon = lexicon if lexicon is not None else self.lexicon
        cache_key = (
            (id(profile), f"canonical:{id(lexicon)}")
            if kind == "canonical"
            else (id(profile), kind)
        )
        with self.lock:
            cached = self._features.get(cache_key)
            if cached is None:
                interner = self._interner(cache_key[1])
                documents = self._documents(profile, kind, lexicon)
                if kind in self._BAG_KINDS:
                    cached = _bag_feature(documents, interner)
                else:
                    cached = _set_feature(documents, interner)
                self._features[cache_key] = cached
                self._pinned[id(profile)] = profile
                if kind == "canonical":
                    self._pinned[id(lexicon)] = lexicon
            return cached

    def set_matrix(
        self,
        profile: SchemaProfile,
        kind: str,
        lexicon: SynonymLexicon | None = None,
    ) -> sparse.csr_matrix:
        """Materialised CSR feature matrix at the current vocabulary width."""
        with self.lock:
            return self.feature(profile, kind, lexicon).matrix()

    def set_sizes(
        self,
        profile: SchemaProfile,
        kind: str,
        lexicon: SynonymLexicon | None = None,
    ) -> np.ndarray:
        """Per-element set sizes for a *set* feature kind."""
        return self.feature(profile, kind, lexicon).row_sizes

    def pair_counts(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        kind: str,
        lexicon: SynonymLexicon | None = None,
        rows: np.ndarray | None = None,
        cols: np.ndarray | None = None,
    ) -> np.ndarray:
        """Pairwise intersection counts for a set feature kind.

        Builds (or reuses) both sides' incidence matrices, then one sparse
        product.  Materialisation happens after both builds so the widths
        agree even though the shared vocabulary grows.  With ``rows``/
        ``cols`` given, only those pairs' counts are gathered (1-D) --
        the sparse product is never densified, keeping candidate-restricted
        work proportional to the candidates.
        """
        # Build BOTH features before materialising either (building the
        # second side may grow the vocabulary), all under the lock; the
        # product itself is pure reads of the immutable snapshots and runs
        # outside it, so concurrent matches don't queue behind the math.
        with self.lock:
            source_feature = self.feature(source, kind, lexicon)
            target_feature = self.feature(target, kind, lexicon)
            source_matrix = source_feature.matrix()
            target_matrix = target_feature.matrix()
        product = source_matrix @ target_matrix.T
        if rows is None:
            return product.toarray()
        return _gather_pairs(product, rows, cols)

    # -- derived per-profile vectors ------------------------------------
    def _vector(self, profile: SchemaProfile, key: str, build) -> np.ndarray:
        cache_key = (id(profile), key)
        with self.lock:
            cached = self._vectors.get(cache_key)
            if cached is None:
                cached = build(profile)
                self._vectors[cache_key] = cached
                self._pinned[id(profile)] = profile
            return cached

    def raw_name_ids(self, profile: SchemaProfile) -> np.ndarray:
        """Interned ids of the raw (lowercased) element names."""
        interner = self._interner("raw_name")
        return self._vector(
            profile,
            "raw_name_ids",
            lambda p: np.array([interner.intern(name) for name in p.raw_names], dtype=np.int64),
        )

    def doc_lengths(self, profile: SchemaProfile) -> np.ndarray:
        """Documentation token counts per element (evidence for TF-IDF voters)."""
        return self._vector(
            profile,
            "doc_lengths",
            lambda p: np.array([len(terms) for terms in p.doc_terms], dtype=np.float64),
        )

    def text_lengths(self, profile: SchemaProfile) -> np.ndarray:
        """Describing-text token counts per element."""
        return self._vector(
            profile,
            "text_lengths",
            lambda p: np.array([len(terms) for terms in p.text_terms], dtype=np.float64),
        )

    def type_ids(self, profile: SchemaProfile) -> np.ndarray:
        """Data-type family indices into :func:`repro.schema.datatypes.family_table`."""
        _, family_index = family_table()
        return self._vector(
            profile,
            "type_ids",
            lambda p: np.array([family_index[t] for t in p.data_types], dtype=np.int64),
        )

    def type_known(self, profile: SchemaProfile) -> np.ndarray:
        """Boolean mask of elements whose data type is not UNKNOWN."""
        return self._vector(
            profile,
            "type_known",
            lambda p: np.array(
                [t is not DataType.UNKNOWN for t in p.data_types], dtype=bool
            ),
        )

    # -- pair-level TF-IDF ---------------------------------------------
    def document_frequencies(
        self, profile: SchemaProfile, kind: str
    ) -> np.ndarray:
        """Per-token document frequencies of a bag feature, at current width."""
        with self.lock:
            feature = self.feature(profile, kind)
            width = max(len(feature.interner), 1)
            return np.bincount(feature.indices, minlength=width).astype(np.float64)

    def tfidf_cosine(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        kind: str,
        rows: np.ndarray | None = None,
        cols: np.ndarray | None = None,
    ) -> np.ndarray:
        """TF-IDF cosine (dense grid, or 1-D at the given pairs), IDF fit
        over the union of both sides.

        Reproduces :func:`repro.text.tfidf.tfidf_similarity_matrix` exactly
        (same smoothed-IDF formula, same L2 normalisation) from the cached
        count matrices: global-vocabulary columns absent from this pair have
        zero counts on both sides and cannot contribute.
        """
        # Build both features, then snapshot both count matrices and the
        # frequency vector at one vocabulary width, all under the lock;
        # the TF-IDF math below is lock-free.
        with self.lock:
            source_feature = self.feature(source, kind)
            target_feature = self.feature(target, kind)
            source_counts = source_feature.matrix()
            target_counts = target_feature.matrix()
            df = self.document_frequencies(source, kind) + self.document_frequencies(
                target, kind
            )
        n_documents = source_counts.shape[0] + target_counts.shape[0]
        idf = np.log((1.0 + n_documents) / (1.0 + df)) + 1.0

        def weighted(counts: sparse.csr_matrix) -> sparse.csr_matrix:
            weighted_counts = counts.multiply(idf[None, :]).tocsr()
            norms = np.sqrt(
                np.asarray(weighted_counts.multiply(weighted_counts).sum(axis=1))
            ).ravel()
            norms[norms == 0.0] = 1.0
            return sparse.diags(1.0 / norms) @ weighted_counts

        product = weighted(source_counts) @ weighted(target_counts).T
        if rows is None:
            cosine = product.toarray()
        else:
            cosine = _gather_pairs(product, rows, cols)
        np.clip(cosine, 0.0, 1.0, out=cosine)
        return cosine
