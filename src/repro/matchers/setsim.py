"""Vectorised set-similarity matrices over token collections.

The voters need Jaccard / Dice / containment between *every* pair of source
and target token sets.  Computing those pairwise in Python is O(pairs x set
ops); instead we build binary incidence matrices (documents x vocabulary) in
``scipy.sparse`` and obtain all pairwise intersection sizes with one sparse
product.  For the paper's 1378x784 case this turns minutes into milliseconds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

__all__ = [
    "binary_incidence",
    "intersection_counts",
    "jaccard_matrix",
    "dice_matrix",
    "containment_matrix",
]


def _shared_vocabulary(
    source_docs: Sequence[Sequence[str]], target_docs: Sequence[Sequence[str]]
) -> dict[str, int]:
    vocabulary: dict[str, int] = {}
    for documents in (source_docs, target_docs):
        for document in documents:
            for token in document:
                if token not in vocabulary:
                    vocabulary[token] = len(vocabulary)
    return vocabulary


def binary_incidence(
    documents: Sequence[Sequence[str]], vocabulary: dict[str, int]
) -> sparse.csr_matrix:
    """Binary documents-by-vocabulary incidence matrix (sets, not bags)."""
    rows: list[int] = []
    cols: list[int] = []
    for row, document in enumerate(documents):
        for token in set(document):
            token_id = vocabulary.get(token)
            if token_id is not None:
                rows.append(row)
                cols.append(token_id)
    data = np.ones(len(rows), dtype=np.float64)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(documents), max(len(vocabulary), 1))
    )


def intersection_counts(
    source_docs: Sequence[Sequence[str]], target_docs: Sequence[Sequence[str]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All pairwise intersection sizes plus per-document set sizes.

    Returns ``(counts, source_sizes, target_sizes)`` where ``counts`` has
    shape (n_source, n_target).
    """
    vocabulary = _shared_vocabulary(source_docs, target_docs)
    source_matrix = binary_incidence(source_docs, vocabulary)
    target_matrix = binary_incidence(target_docs, vocabulary)
    counts = np.asarray((source_matrix @ target_matrix.T).todense(), dtype=float)
    source_sizes = np.asarray(source_matrix.sum(axis=1)).ravel()
    target_sizes = np.asarray(target_matrix.sum(axis=1)).ravel()
    return counts, source_sizes, target_sizes


def jaccard_matrix(
    source_docs: Sequence[Sequence[str]], target_docs: Sequence[Sequence[str]]
) -> np.ndarray:
    """Pairwise Jaccard; empty-vs-empty is 0 (no evidence, not identity)."""
    counts, source_sizes, target_sizes = intersection_counts(source_docs, target_docs)
    unions = source_sizes[:, None] + target_sizes[None, :] - counts
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(unions > 0, counts / unions, 0.0)
    return result


def dice_matrix(
    source_docs: Sequence[Sequence[str]], target_docs: Sequence[Sequence[str]]
) -> np.ndarray:
    """Pairwise Sorensen-Dice; empty-vs-empty is 0."""
    counts, source_sizes, target_sizes = intersection_counts(source_docs, target_docs)
    totals = source_sizes[:, None] + target_sizes[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(totals > 0, 2.0 * counts / totals, 0.0)
    return result


def containment_matrix(
    source_docs: Sequence[Sequence[str]], target_docs: Sequence[Sequence[str]]
) -> np.ndarray:
    """Pairwise overlap coefficient |A∩B| / min(|A|,|B|); empty pairs are 0."""
    counts, source_sizes, target_sizes = intersection_counts(source_docs, target_docs)
    minima = np.minimum(source_sizes[:, None], target_sizes[None, :])
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(minima > 0, counts / minima, 0.0)
    return result
