"""Structural voter: Cupid-flavoured parent/child context propagation.

Linguistic voters treat elements independently; structure says otherwise:

* two *containers* (tables / complex types) are similar when their children
  line up well -- computed as the symmetrised mean-best-match of the
  children's linguistic similarities;
* two *leaves* gain (or lose) a little confidence from how similar their
  parents look -- the context that separates ``Person/Name`` from
  ``Operation/Name``;
* a container against a leaf is a mild structural contradiction.

The voter computes its own internal linguistic base (thesaurus-canonicalised
name-token Jaccard) so it is self-contained and usable in ablations, at the
cost of one extra sparse product per run.  All bulk assignments are
vectorised; the only Python-level loop is over container x container pairs
(hundreds, not the 10^6 full grid).
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter
from repro.matchers.profile import SchemaProfile
from repro.matchers.setsim import jaccard_matrix
from repro.text.thesaurus import SynonymLexicon

__all__ = ["StructuralVoter"]


class StructuralVoter(MatchVoter):
    """Children-aggregation similarity for containers, parent context for leaves."""

    name = "structure"

    def __init__(
        self,
        lexicon: SynonymLexicon | None = None,
        tau: float = 3.0,
        neutral: float = 0.2,
        negative_scale: float = 0.5,
        leaf_context_evidence: float = 3.0,
    ):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)
        self.lexicon = lexicon if lexicon is not None else SynonymLexicon.default()
        self.leaf_context_evidence = leaf_context_evidence

    def _base_similarity(
        self,
        source: SchemaProfile,
        target: SchemaProfile,
        source_positions: np.ndarray,
        target_positions: np.ndarray,
    ) -> np.ndarray:
        source_terms = [
            [self.lexicon.canonical(term) for term in source.name_terms[position]]
            for position in source_positions
        ]
        target_terms = [
            [self.lexicon.canonical(term) for term in target.name_terms[position]]
            for position in target_positions
        ]
        return jaccard_matrix(source_terms, target_terms)

    @staticmethod
    def _grid_children(
        profile: SchemaProfile, in_grid: dict[int, int], grid: np.ndarray
    ) -> list[list[int]]:
        return [
            [
                in_grid[child]
                for child in profile.children_index[position]
                if child in in_grid
            ]
            for position in grid
        ]

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_grid = (
            source_positions
            if source_positions is not None
            else np.arange(len(source), dtype=int)
        )
        target_grid = (
            target_positions
            if target_positions is not None
            else np.arange(len(target), dtype=int)
        )
        base = self._base_similarity(source, target, source_grid, target_grid)
        return self._ratios_from_base(base, source, target, source_grid, target_grid)

    def _ratios_from_base(
        self,
        base: np.ndarray,
        source: SchemaProfile,
        target: SchemaProfile,
        source_grid: np.ndarray,
        target_grid: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Structural similarity/evidence given the linguistic base matrix.

        Shared by the per-grid path (base from :func:`jaccard_matrix`) and
        the cached-feature fast path (base from one sparse product).
        """
        source_in_grid = {position: row for row, position in enumerate(source_grid)}
        target_in_grid = {position: col for col, position in enumerate(target_grid)}
        source_children = self._grid_children(source, source_in_grid, source_grid)
        target_children = self._grid_children(target, target_in_grid, target_grid)

        similarity = np.zeros_like(base)
        evidence = np.zeros_like(base)

        container_rows = [row for row, kids in enumerate(source_children) if kids]
        container_cols = [col for col, kids in enumerate(target_children) if kids]
        leaf_rows = np.array(
            [row for row, kids in enumerate(source_children) if not kids], dtype=int
        )
        leaf_cols = np.array(
            [col for col, kids in enumerate(target_children) if not kids], dtype=int
        )

        # Container vs leaf: mild structural contradiction (bulk assignment).
        if container_rows and leaf_cols.size:
            similarity[np.ix_(container_rows, leaf_cols)] = 0.1
            evidence[np.ix_(container_rows, leaf_cols)] = 1.0
        if leaf_rows.size and container_cols:
            similarity[np.ix_(leaf_rows, container_cols)] = 0.1
            evidence[np.ix_(leaf_rows, container_cols)] = 1.0

        # Container vs container: symmetrised mean-best-match of children.
        for row in container_rows:
            source_kids = source_children[row]
            for col in container_cols:
                target_kids = target_children[col]
                block = base[np.ix_(source_kids, target_kids)]
                forward = block.max(axis=1).mean()
                backward = block.max(axis=0).mean()
                similarity[row, col] = 0.5 * (forward + backward)
                evidence[row, col] = min(len(source_kids), len(target_kids))

        # Leaf vs leaf: inherit the parents' *name* similarity as context.
        # Parent names discriminate concepts sharply (children blocks do
        # not: audit/common columns recur under every container), and this
        # is what disambiguates the SOURCE_SYSTEM-style columns that appear
        # everywhere: only the pair under linguistically-aligned parents
        # gets reinforced.  ``leaf_context_evidence`` sets how assertive
        # that context vote is.
        if leaf_rows.size and leaf_cols.size:
            source_parent_row = np.array(
                [
                    source_in_grid.get(source.parent_index[source_grid[row]], -1)
                    for row in leaf_rows
                ],
                dtype=int,
            )
            target_parent_col = np.array(
                [
                    target_in_grid.get(target.parent_index[target_grid[col]], -1)
                    for col in leaf_cols
                ],
                dtype=int,
            )
            valid_rows = source_parent_row >= 0
            valid_cols = target_parent_col >= 0
            if valid_rows.any() and valid_cols.any():
                rows = leaf_rows[valid_rows]
                cols = leaf_cols[valid_cols]
                parent_ix = np.ix_(
                    source_parent_row[valid_rows], target_parent_col[valid_cols]
                )
                similarity[np.ix_(rows, cols)] = base[parent_ix]
                evidence[np.ix_(rows, cols)] = self.leaf_context_evidence

        return similarity, evidence

    # -- cached-feature fast path ---------------------------------------
    def _fast_base(self, source, target, space) -> np.ndarray:
        """The linguistic base from cached canonical incidence matrices."""
        counts = space.pair_counts(source, target, "canonical", lexicon=self.lexicon)
        source_sizes = space.set_sizes(source, "canonical", lexicon=self.lexicon)
        target_sizes = space.set_sizes(target, "canonical", lexicon=self.lexicon)
        unions = source_sizes[:, None] + target_sizes[None, :] - counts
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(unions > 0, counts / unions, 0.0)

    @staticmethod
    def _container_pair_scores(
        base: np.ndarray,
        source_children: list[list[int]],
        target_children: list[list[int]],
        pair_rows: np.ndarray,
        pair_cols: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Symmetrised mean-best-match for an explicit container-pair list.

        Children index lists are padded to a rectangle and gathered in bulk
        (index -1 hits a -1.0 sentinel row/column appended to ``base``, so
        padding never wins a max); processing is chunked to bound the
        (pairs x max_children^2) intermediate.
        """
        unique_rows, inverse_rows = np.unique(pair_rows, return_inverse=True)
        unique_cols, inverse_cols = np.unique(pair_cols, return_inverse=True)
        width_s = max(len(source_children[i]) for i in unique_rows)
        width_t = max(len(target_children[j]) for j in unique_cols)
        padded_s = np.full((unique_rows.size, width_s), -1, dtype=int)
        kid_counts_s = np.empty(unique_rows.size)
        for k, position in enumerate(unique_rows):
            kids = source_children[position]
            padded_s[k, : len(kids)] = kids
            kid_counts_s[k] = len(kids)
        padded_t = np.full((unique_cols.size, width_t), -1, dtype=int)
        kid_counts_t = np.empty(unique_cols.size)
        for k, position in enumerate(unique_cols):
            kids = target_children[position]
            padded_t[k, : len(kids)] = kids
            kid_counts_t[k] = len(kids)

        augmented = np.pad(base, ((0, 1), (0, 1)), constant_values=-1.0)
        similarity = np.empty(pair_rows.size)
        chunk = max(1, 4_000_000 // max(width_s * width_t, 1))
        for start in range(0, pair_rows.size, chunk):
            stop = min(start + chunk, pair_rows.size)
            rows_k = padded_s[inverse_rows[start:stop]]
            cols_k = padded_t[inverse_cols[start:stop]]
            blocks = augmented[rows_k[:, :, None], cols_k[:, None, :]]
            valid_s = rows_k >= 0
            valid_t = cols_k >= 0
            forward = (
                np.where(valid_s, blocks.max(axis=2), 0.0).sum(axis=1)
                / valid_s.sum(axis=1)
            )
            backward = (
                np.where(valid_t, blocks.max(axis=1), 0.0).sum(axis=1)
                / valid_t.sum(axis=1)
            )
            similarity[start:stop] = 0.5 * (forward + backward)
        evidence = np.minimum(kid_counts_s[inverse_rows], kid_counts_t[inverse_cols])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        base = self._fast_base(source, target, space)
        if rows is None:
            return self._ratios_from_base(
                base,
                source,
                target,
                np.arange(len(source), dtype=int),
                np.arange(len(target), dtype=int),
            )

        source_children = source.children_index
        target_children = target.children_index
        is_container_s = np.fromiter(
            (bool(kids) for kids in source_children), bool, len(source_children)
        )
        is_container_t = np.fromiter(
            (bool(kids) for kids in target_children), bool, len(target_children)
        )
        similarity = np.zeros(rows.size)
        evidence = np.zeros(rows.size)

        container_row = is_container_s[rows]
        container_col = is_container_t[cols]
        mixed = container_row ^ container_col
        similarity[mixed] = 0.1
        evidence[mixed] = 1.0

        both = container_row & container_col
        if both.any():
            similarity[both], evidence[both] = self._container_pair_scores(
                base, source_children, target_children, rows[both], cols[both]
            )

        leaves = ~container_row & ~container_col
        parent_rows = source.parent_index[rows]
        parent_cols = target.parent_index[cols]
        valid = leaves & (parent_rows >= 0) & (parent_cols >= 0)
        similarity[valid] = base[parent_rows[valid], parent_cols[valid]]
        evidence[valid] = self.leaf_context_evidence
        return similarity, evidence
