"""Thesaurus voter: synonym-expanded name-token overlap.

``DATE_BEGIN`` and ``DATETIME_FIRST_INFO`` share no stems, yet the paper
presents them as a (hard) true correspondence.  This voter expands every
name term into its synonym class with a :class:`~repro.text.thesaurus.SynonymLexicon`
before measuring Jaccard, so convention-level synonymy (begin/first,
date/datetime) becomes visible overlap.

Expansion happens on *canonical representatives* -- each term is replaced by
the lexicographically smallest member of its synonym class -- so two
different synonyms of the same class map to the same token and overlap
exactly once (raw expansion would inflate set sizes asymmetrically).
"""

from __future__ import annotations

import numpy as np

from repro.matchers.base import MatchVoter, gather_outer
from repro.matchers.profile import SchemaProfile
from repro.matchers.setsim import jaccard_matrix
from repro.text.thesaurus import SynonymLexicon

__all__ = ["ThesaurusVoter"]


class ThesaurusVoter(MatchVoter):
    """Jaccard over canonicalised (synonym-classed) name terms."""

    name = "thesaurus"

    def __init__(
        self,
        lexicon: SynonymLexicon | None = None,
        tau: float = 3.0,
        neutral: float = 0.2,
        negative_scale: float = 0.4,
    ):
        super().__init__(tau=tau, neutral=neutral, negative_scale=negative_scale)
        self.lexicon = lexicon if lexicon is not None else SynonymLexicon.default()

    def _canonical_terms(
        self, profile: SchemaProfile, positions: np.ndarray | None
    ) -> list[list[str]]:
        chosen = (
            positions if positions is not None else np.arange(len(profile), dtype=int)
        )
        documents: list[list[str]] = []
        for position in chosen:
            documents.append(
                [self.lexicon.canonical(term) for term in profile.name_terms[position]]
            )
        return documents

    def ratios(self, source, target, source_positions=None, target_positions=None):
        source_terms = self._canonical_terms(source, source_positions)
        target_terms = self._canonical_terms(target, target_positions)
        similarity = jaccard_matrix(source_terms, target_terms)
        source_sizes = np.array([len(set(terms)) for terms in source_terms], dtype=float)
        target_sizes = np.array([len(set(terms)) for terms in target_terms], dtype=float)
        evidence = np.minimum(source_sizes[:, None], target_sizes[None, :])
        return similarity, evidence

    def fast_ratios(self, source, target, space, rows=None, cols=None):
        counts = space.pair_counts(
            source, target, "canonical", lexicon=self.lexicon, rows=rows, cols=cols
        )
        source_sizes = space.set_sizes(source, "canonical", lexicon=self.lexicon)
        target_sizes = space.set_sizes(target, "canonical", lexicon=self.lexicon)
        unions = gather_outer(np.add, source_sizes, target_sizes, rows, cols) - counts
        with np.errstate(invalid="ignore", divide="ignore"):
            similarity = np.where(unions > 0, counts / unions, 0.0)
        evidence = gather_outer(np.minimum, source_sizes, target_sizes, rows, cols)
        return similarity, evidence
