"""Evaluation metrics: match P/R/F1, overlap partitions, ranking quality."""

from repro.metrics.overlap import OverlapReport, matrix_overlap, workflow_overlap
from repro.metrics.prf import (
    PRF,
    best_f1,
    best_f1_assignment,
    prf,
    prf_of_pairs,
    threshold_sweep,
)
from repro.metrics.ranking import (
    average_precision,
    mean_of,
    precision_at_k,
    reciprocal_rank,
)

__all__ = [
    "OverlapReport",
    "PRF",
    "average_precision",
    "best_f1",
    "best_f1_assignment",
    "matrix_overlap",
    "mean_of",
    "precision_at_k",
    "prf",
    "prf_of_pairs",
    "reciprocal_rank",
    "threshold_sweep",
    "workflow_overlap",
]
