"""Overlap analysis: the {S1-S2}, {S2-S1}, {S1∩S2} partition of Lesson #3.

"we observed that the three sets: {S1-S2}, {S2-S1}, and {S1∩S2} provide a
useful partition of the match of two large schemata" (CIDR 2009, 4.4) --
and the case study's headline number ("only 34% of SB matched SA") is
exactly the cardinality of SB∩SA over |SB|.

Two ways to compute the partition are provided:

* :func:`matrix_overlap` -- straight from a match matrix at a threshold
  (what a naive tool report would say);
* :func:`workflow_overlap` -- through the paper's actual concept-at-a-time
  process: match concepts first, then validate element matches only within
  matched concept pairs.  This is the faithful reproduction of the 34%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.match.engine import MatchResult
from repro.match.selection import StableMarriageSelection
from repro.summarize.conceptmatch import ConceptMatch, match_concepts
from repro.summarize.concepts import Summary

__all__ = ["OverlapReport", "matrix_overlap", "workflow_overlap"]


@dataclass
class OverlapReport:
    """The three-set partition with its headline statistics."""

    source_total: int
    target_total: int
    intersection_source_ids: set[str]
    intersection_target_ids: set[str]
    source_only_ids: set[str]
    target_only_ids: set[str]
    matched_pairs: set[tuple[str, str]] = field(default_factory=set)
    concept_matches: list[ConceptMatch] = field(default_factory=list)

    @property
    def target_matched_fraction(self) -> float:
        """The paper's '34% of SB matched SA' statistic."""
        if self.target_total == 0:
            return 0.0
        return len(self.intersection_target_ids) / self.target_total

    @property
    def source_matched_fraction(self) -> float:
        if self.source_total == 0:
            return 0.0
        return len(self.intersection_source_ids) / self.source_total

    @property
    def target_unmatched_count(self) -> int:
        """The paper's '517 elements' statistic."""
        return len(self.target_only_ids)

    def summary_lines(self) -> list[str]:
        """Human-readable report block."""
        return [
            f"|S1| = {self.source_total}, |S2| = {self.target_total}",
            f"S1 ∩ S2: {len(self.intersection_source_ids)} source / "
            f"{len(self.intersection_target_ids)} target elements",
            f"S1 - S2: {len(self.source_only_ids)} elements "
            f"({1 - self.source_matched_fraction:.1%} of S1)",
            f"S2 - S1: {len(self.target_only_ids)} elements "
            f"({1 - self.target_matched_fraction:.1%} of S2)",
            f"matched fraction of S2: {self.target_matched_fraction:.1%}",
        ]


def matrix_overlap(result: MatchResult, threshold: float) -> OverlapReport:
    """Partition both element sets by best-score thresholding (naive view)."""
    matched_source = result.matched_source_ids(threshold)
    matched_target = result.matched_target_ids(threshold)
    all_source = set(result.matrix.source_ids)
    all_target = set(result.matrix.target_ids)
    return OverlapReport(
        source_total=len(all_source),
        target_total=len(all_target),
        intersection_source_ids=matched_source,
        intersection_target_ids=matched_target,
        source_only_ids=all_source - matched_source,
        target_only_ids=all_target - matched_target,
    )


def workflow_overlap(
    result: MatchResult,
    source_summary: Summary,
    target_summary: Summary,
    concept_threshold: float = 0.10,
    element_threshold: float = 0.13,
) -> OverlapReport:
    """Partition via the concept-at-a-time workflow of section 3.3.

    1. Lift element scores to concept-level matches (one-to-one, greedy).
    2. Within each matched concept pair, select element matches 1:1 by
       stable marriage over the sub-matrix, gated by ``element_threshold``.
    3. Matched elements = concept roots of matched concepts plus the
       elements selected inside them; everything else is unmatched.

    This mirrors how the engineers produced the spreadsheet: cross-concept
    stray matches were not recorded as overlap.
    """
    concept_matches = match_concepts(
        source_summary, target_summary, result, threshold=concept_threshold
    )
    matched_pairs: set[tuple[str, str]] = set()
    matched_source: set[str] = set()
    matched_target: set[str] = set()

    for concept_match in concept_matches:
        source_ids = source_summary.elements_of(concept_match.source_concept_id)
        target_ids = target_summary.elements_of(concept_match.target_concept_id)
        source_in_grid = [sid for sid in source_ids if sid in set(result.matrix.source_ids)]
        target_in_grid = [tid for tid in target_ids if tid in set(result.matrix.target_ids)]
        if not source_in_grid or not target_in_grid:
            continue
        block = result.matrix.submatrix(source_in_grid, target_in_grid)
        selected = StableMarriageSelection(threshold=element_threshold).select(block)
        for correspondence in selected:
            matched_pairs.add(correspondence.pair)
            matched_source.add(correspondence.source_id)
            matched_target.add(correspondence.target_id)

    all_source = set(result.matrix.source_ids)
    all_target = set(result.matrix.target_ids)
    return OverlapReport(
        source_total=len(all_source),
        target_total=len(all_target),
        intersection_source_ids=matched_source,
        intersection_target_ids=matched_target,
        source_only_ids=all_source - matched_source,
        target_only_ids=all_target - matched_target,
        matched_pairs=matched_pairs,
        concept_matches=concept_matches,
    )
