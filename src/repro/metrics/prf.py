"""Precision / recall / F1 against ground-truth correspondences.

The paper could not score Harmony (no ground truth existed for the military
schemata); the synthetic substrate gives us one, so every matcher and
ablation in the benches reports match quality with these standard measures,
including threshold sweeps for operating-point selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.match.correspondence import Correspondence
from repro.match.matrix import MatchMatrix
from repro.match.selection import SelectionStrategy, ThresholdSelection

__all__ = [
    "PRF",
    "prf",
    "prf_of_pairs",
    "threshold_sweep",
    "best_f1",
    "best_f1_assignment",
]


@dataclass(frozen=True)
class PRF:
    """One precision/recall/F1 measurement."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    actual: int

    def as_row(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives}, pred={self.predicted}, actual={self.actual})"
        )


def prf_of_pairs(
    predicted_pairs: Iterable[tuple[str, str]],
    truth_pairs: Iterable[tuple[str, str]],
) -> PRF:
    """P/R/F1 over raw (source_id, target_id) pair sets."""
    predicted = set(predicted_pairs)
    actual = set(truth_pairs)
    true_positives = len(predicted & actual)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(actual) if actual else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return PRF(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        predicted=len(predicted),
        actual=len(actual),
    )


def prf(
    correspondences: Iterable[Correspondence],
    truth_pairs: Iterable[tuple[str, str]],
) -> PRF:
    """P/R/F1 of a correspondence list against ground truth."""
    return prf_of_pairs(
        (correspondence.pair for correspondence in correspondences), truth_pairs
    )


def threshold_sweep(
    matrix: MatchMatrix,
    truth_pairs: Iterable[tuple[str, str]],
    thresholds: Sequence[float] = tuple(round(0.05 * i, 2) for i in range(1, 19)),
) -> list[tuple[float, PRF]]:
    """P/R/F1 of threshold selection across a threshold grid."""
    truth = set(truth_pairs)
    sweep: list[tuple[float, PRF]] = []
    for threshold in thresholds:
        selected = ThresholdSelection(threshold).select(matrix)
        sweep.append((threshold, prf(selected, truth)))
    return sweep


def best_f1_assignment(
    matrix: MatchMatrix,
    truth_pairs: Iterable[tuple[str, str]],
    thresholds: Sequence[float] = tuple(round(0.05 * i, 2) for i in range(1, 19)),
) -> tuple[float, PRF]:
    """Best-F1 operating point under a 1:1 assignment.

    Runs the maximum-weight assignment (Hungarian) **once**, then sweeps the
    score threshold over the assigned pairs -- the standard way to score a
    matcher that is allowed a final 1:1 selection step.  Far cheaper than
    re-selecting per threshold, and the right comparison basis for matcher
    architectures (raw many-to-many thresholding punishes every matcher with
    the same cross-concept near-duplicates).
    """
    from repro.match.selection import HungarianSelection

    truth = set(truth_pairs)
    assigned = HungarianSelection(threshold=-1.0).select(matrix)
    best: tuple[float, PRF] | None = None
    for threshold in thresholds:
        kept = [c.pair for c in assigned if c.score >= threshold]
        measurement = prf_of_pairs(kept, truth)
        if best is None or measurement.f1 > best[1].f1:
            best = (threshold, measurement)
    assert best is not None
    return best


def best_f1(
    matrix: MatchMatrix,
    truth_pairs: Iterable[tuple[str, str]],
    thresholds: Sequence[float] = tuple(round(0.05 * i, 2) for i in range(1, 19)),
    selection_factory=None,
) -> tuple[float, PRF]:
    """The best-F1 operating point over a threshold grid.

    ``selection_factory`` maps a threshold to a SelectionStrategy; defaults
    to plain thresholding.
    """
    truth = set(truth_pairs)
    factory = selection_factory or (lambda t: ThresholdSelection(t))
    best: tuple[float, PRF] | None = None
    for threshold in thresholds:
        strategy: SelectionStrategy = factory(threshold)
        measurement = prf(strategy.select(matrix), truth)
        if best is None or measurement.f1 > best[1].f1:
            best = (threshold, measurement)
    assert best is not None
    return best
