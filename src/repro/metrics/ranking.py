"""Ranking quality metrics for schema search (E10).

Standard IR measures over ranked schema lists: precision@k, mean reciprocal
rank, and average precision, against a relevance oracle (in the benches, the
planted corpus domain labels).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

__all__ = ["precision_at_k", "reciprocal_rank", "average_precision", "mean_of"]


def precision_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of the top-k ranked items that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top = ranked[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / len(top)


def reciprocal_rank(ranked: Sequence[str], relevant: set[str]) -> float:
    """1 / rank of the first relevant item (0 when none appears)."""
    for position, item in enumerate(ranked, start=1):
        if item in relevant:
            return 1.0 / position
    return 0.0


def average_precision(ranked: Sequence[str], relevant: set[str]) -> float:
    """Mean of precision@hit over all relevant hits in the ranking."""
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            precision_sum += hits / position
    if hits == 0:
        return 0.0
    return precision_sum / len(relevant)


def mean_of(
    queries: Iterable, metric: Callable[..., float], *metric_args
) -> float:
    """Mean of a per-query metric over an iterable of argument tuples.

    Each element of ``queries`` is a tuple unpacked into ``metric``.
    """
    values = [metric(*query, *metric_args) for query in queries]
    if not values:
        return 0.0
    return sum(values) / len(values)
