"""The mapping network: routing new match efforts through stored mappings.

Nodes are registered schemata, edges are stored correspondence sets, and
multi-hop composition answers A -> C from A -> B -> C evidence without
matching from scratch -- the paper's "other developers should benefit
from previous matches" taken to corpus scale.  See ``docs/repository.md``
(Mapping network section) and bench E18.
"""

from repro.network.graph import (
    ComposedPath,
    GraphRefresh,
    MappingGraph,
    MappingLeg,
    NetworkRoute,
    build_adjacency,
    compose_stored,
)

__all__ = [
    "ComposedPath",
    "GraphRefresh",
    "MappingGraph",
    "MappingLeg",
    "NetworkRoute",
    "build_adjacency",
    "compose_stored",
]
