"""The mapping network: stored match sets as a routable graph.

Section 5's deepest enterprise observation is that mappings *outlive* the
match runs that produced them: once a repository holds A<->B and B<->C
assertions, a new A-to-C effort should not start from scratch -- it should
**route through the network**, composing stored evidence along pivot
paths.  PR 3's single-pivot :func:`repro.repository.reuse.compose_matches`
was the first step; :class:`MappingGraph` generalises it to a real
mapping network:

* **nodes** are the registered schemata of a
  :class:`~repro.repository.store.MetadataRepository`;
* **edges** are the stored correspondence sets between a schema pair
  (both stored orientations collapse onto one undirected edge whose legs
  are traversed flipped when walked against their stored direction);
* **multi-hop composition** (:meth:`MappingGraph.route`) enumerates every
  acyclic pivot path up to ``max_hops`` pivots between a source and a
  target, composes correspondences along each path under max-min
  semantics (a chain is only as strong as its weakest leg), applies a
  per-extra-hop confidence ``hop_decay``, and merges multi-path evidence
  for the same element pair (strongest path wins; the path count is
  recorded in the correspondence note).

The adjacency structure is **cached** and invalidated by the repository's
two monotone clocks (``generation`` for schemata, ``match_generation``
for stored matches) -- the same staleness mechanism as
:class:`~repro.corpus.index.CorpusIndex` -- so repeated routing queries
over a warm repository never re-scan the store.  ``max_hops=1`` with
``hop_decay`` irrelevant (one pivot means zero extra hops) reproduces
``compose_matches`` exactly; bench E18 holds the warm graph to >= 5x a
rebuild-per-query loop and pins the k=1 equivalence to 1e-9.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import NamedTuple, Sequence

from repro.match.correspondence import Correspondence, MatchStatus
from repro.repository.provenance import ProvenanceRecord, TrustPolicy
from repro.repository.store import MetadataRepository, StoredMatch

__all__ = [
    "MappingLeg",
    "ComposedPath",
    "NetworkRoute",
    "GraphRefresh",
    "MappingGraph",
    "build_adjacency",
    "compose_stored",
]


class MappingLeg(NamedTuple):
    """One stored correspondence, oriented for traversal a -> b.

    The stored :class:`ProvenanceRecord` rides along (shared, not copied:
    both orientations of a leg reference the same record) so a
    :class:`~repro.repository.provenance.TrustPolicy` can gate legs at
    traversal time -- through the policy's own :meth:`~TrustPolicy.trusts`,
    never a re-implementation -- without rebuilding the cached adjacency.
    """

    source_element: str
    target_element: str
    score: float
    provenance: ProvenanceRecord

    def trusted(self, policy: TrustPolicy | None) -> bool:
        return policy is None or policy.trusts(self.provenance)


#: adjacency[a][b] -> legs oriented a -> b (stored b -> a rows appear flipped).
Adjacency = dict[str, dict[str, list[MappingLeg]]]


def build_adjacency(matches: Sequence[StoredMatch]) -> Adjacency:
    """The traversal structure of a stored match pool (both orientations).

    REJECTED assertions are dropped here (a rejection is status-level and
    policy-independent: it is never a usable leg); trust filtering stays
    per-query so one cached adjacency serves every policy.  Self-matches
    (source schema == target schema) cannot be pivot legs and are skipped.
    """
    adjacency: Adjacency = {}
    for match in matches:
        correspondence = match.correspondence
        if correspondence.status is MatchStatus.REJECTED:
            continue
        a, b = match.source_schema, match.target_schema
        if a == b:
            continue
        provenance = match.provenance
        adjacency.setdefault(a, {}).setdefault(b, []).append(
            MappingLeg(
                correspondence.source_id,
                correspondence.target_id,
                correspondence.score,
                provenance,
            )
        )
        adjacency.setdefault(b, {}).setdefault(a, []).append(
            MappingLeg(
                correspondence.target_id,
                correspondence.source_id,
                correspondence.score,
                provenance,
            )
        )
    return adjacency


def _enumerate_paths(
    adjacency: Adjacency, source: str, target: str, max_hops: int
) -> list[tuple[str, ...]]:
    """All acyclic pivot paths source -> ... -> target with 1..max_hops pivots.

    A direct source<->target edge is *not* a path: composition derives new
    evidence through pivots; direct stored assertions are the reuse
    layer's job.  Paths come back shortest-first, then lexicographic, so
    output order (and therefore note attribution) is deterministic.
    """
    paths: list[tuple[str, ...]] = []
    stack: list[str] = [source]
    on_path = {source}

    def extend() -> None:
        current = stack[-1]
        n_pivots = len(stack) - 1
        for neighbour in sorted(adjacency.get(current, ())):
            if neighbour == target:
                if n_pivots >= 1:
                    paths.append(tuple(stack) + (target,))
                continue
            if neighbour in on_path or n_pivots >= max_hops:
                continue
            stack.append(neighbour)
            on_path.add(neighbour)
            extend()
            stack.pop()
            on_path.discard(neighbour)

    extend()
    paths.sort(key=lambda path: (len(path), path))
    return paths


def _compose_path(
    adjacency: Adjacency, path: tuple[str, ...], policy: TrustPolicy | None
) -> dict[tuple[str, str], float]:
    """Max-min composition of one pivot path: element pair -> best min-leg score.

    The frontier keeps, per (origin element, current element), the best
    accumulated minimum -- dominance holds because min is monotone, so a
    weaker partial chain can never overtake a stronger one later.
    """
    frontier: dict[tuple[str, str], float] = {}
    for leg in adjacency[path[0]].get(path[1], ()):
        if not leg.trusted(policy):
            continue
        key = (leg.source_element, leg.target_element)
        if leg.score > frontier.get(key, float("-inf")):
            frontier[key] = leg.score
    for here, there in zip(path[1:], path[2:]):
        # Index the frontier by its current-element side once per hop, so a
        # hop costs O(frontier + legs) instead of O(frontier x legs).
        by_current: dict[str, list[tuple[str, float]]] = {}
        for (origin, current), accumulated in frontier.items():
            by_current.setdefault(current, []).append((origin, accumulated))
        frontier = {}
        for leg in adjacency[here].get(there, ()):
            if not leg.trusted(policy):
                continue
            for origin, accumulated in by_current.get(leg.source_element, ()):
                key = (origin, leg.target_element)
                composed = min(accumulated, leg.score)
                if composed > frontier.get(key, float("-inf")):
                    frontier[key] = composed
        if not frontier:
            break
    return frontier


@dataclass(frozen=True)
class ComposedPath:
    """One pivot path and how much element-level evidence it yielded."""

    nodes: tuple[str, ...]           # source, pivots..., target
    n_pairs: int                     # element pairs composed along it

    @property
    def pivots(self) -> tuple[str, ...]:
        return self.nodes[1:-1]

    @property
    def n_hops(self) -> int:
        """Pivot count (the k of "up to k hops")."""
        return len(self.nodes) - 2

    def to_dict(self) -> dict:
        return {"nodes": list(self.nodes), "n_pairs": self.n_pairs}

    @classmethod
    def from_dict(cls, payload: dict) -> "ComposedPath":
        return cls(nodes=tuple(payload["nodes"]), n_pairs=payload["n_pairs"])


@dataclass(frozen=True)
class NetworkRoute:
    """What one multi-hop routing query composed, and along which paths."""

    source: str
    target: str
    max_hops: int
    hop_decay: float
    paths: tuple[ComposedPath, ...]
    correspondences: tuple[Correspondence, ...]

    @property
    def n_paths(self) -> int:
        return len(self.paths)


def _route(
    adjacency: Adjacency,
    source: str,
    target: str,
    max_hops: int,
    hop_decay: float,
    policy: TrustPolicy | None,
    annotate: bool,
) -> NetworkRoute:
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    if not 0.0 < hop_decay <= 1.0:
        raise ValueError(f"hop_decay must be in (0, 1], got {hop_decay}")
    if source == target:
        # A->P->A round trips would otherwise come back as plausible-looking
        # self-"compositions"; the query is degenerate, refuse it loudly.
        raise ValueError(f"source and target must differ, both are {source!r}")
    node_paths = _enumerate_paths(adjacency, source, target, max_hops)
    best: dict[tuple[str, str], float] = {}
    best_path: dict[tuple[str, str], tuple[str, ...]] = {}
    n_paths_of: dict[tuple[str, str], int] = {}
    composed_paths: list[ComposedPath] = []
    for nodes in node_paths:
        composed = _compose_path(adjacency, nodes, policy)
        composed_paths.append(ComposedPath(nodes=nodes, n_pairs=len(composed)))
        decay = hop_decay ** (len(nodes) - 3)  # one pivot = no decay
        for pair, min_score in composed.items():
            n_paths_of[pair] = n_paths_of.get(pair, 0) + 1
            score = min_score * decay
            if score > best.get(pair, float("-inf")):
                best[pair] = score
                best_path[pair] = nodes
    correspondences = []
    for (source_element, target_element), score in sorted(
        best.items(), key=lambda item: (-item[1], item[0])
    ):
        note = ""
        if annotate:
            pair = (source_element, target_element)
            pivots = " > ".join(best_path[pair][1:-1])
            extra = n_paths_of[pair] - 1
            note = f"composed via {pivots}" + (
                f" (+{extra} more path{'s' if extra > 1 else ''})" if extra else ""
            )
        correspondences.append(
            Correspondence(
                source_id=source_element,
                target_id=target_element,
                score=score,
                status=MatchStatus.CANDIDATE,
                asserted_by="composer",
                note=note,
            )
        )
    return NetworkRoute(
        source=source,
        target=target,
        max_hops=max_hops,
        hop_decay=hop_decay,
        paths=tuple(composed_paths),
        correspondences=tuple(correspondences),
    )


def compose_stored(
    matches: Sequence[StoredMatch],
    source: str,
    target: str,
    max_hops: int = 1,
    hop_decay: float = 1.0,
    policy: TrustPolicy | None = None,
    annotate: bool = False,
) -> list[Correspondence]:
    """Compose source -> target candidates through a stored match pool.

    The uncached entry point :func:`repro.repository.reuse.compose_matches`
    delegates to (its classic single-pivot behaviour is exactly
    ``max_hops=1``, where ``hop_decay`` has no effect).  Callers holding a
    repository should prefer :class:`MappingGraph`, which caches the
    adjacency across queries.
    """
    route = _route(
        build_adjacency(matches), source, target, max_hops, hop_decay, policy, annotate
    )
    return list(route.correspondences)


@dataclass(frozen=True)
class GraphRefresh:
    """What one :meth:`MappingGraph.refresh` actually did."""

    n_nodes: int                   # registered schemata (graph nodes)
    n_edges: int                   # schema pairs with at least one usable leg
    n_legs: int                    # directed traversal legs (2 per stored row)
    rebuilt: bool                  # False = the cached adjacency was current
    elapsed_seconds: float


class MappingGraph:
    """A cached, staleness-aware mapping network over a repository.

    Parameters
    ----------
    repository:
        The :class:`MetadataRepository` whose stored matches form the
        edges.  The graph never mutates the store.
    hop_decay:
        Default per-extra-hop confidence decay for :meth:`route` /
        :meth:`compose` (a single-pivot composition is never decayed;
        each pivot beyond the first multiplies by this factor once).
    """

    def __init__(self, repository: MetadataRepository, hop_decay: float = 0.9):
        if not 0.0 < hop_decay <= 1.0:
            raise ValueError(f"hop_decay must be in (0, 1], got {hop_decay}")
        self.repository = repository
        self.hop_decay = hop_decay
        self._adjacency: Adjacency = {}
        self._nodes: frozenset[str] = frozenset()
        #: The (generation, match_generation) pair the adjacency was built
        #: at; None means never built.  Either clock moving marks the graph
        #: stale -- schemata joining/leaving changes the node set, stored
        #: matches changing rewires the edges.
        self._built_at: tuple[int, int] | None = None
        #: (n_nodes, n_edges, n_legs), computed once per rebuild so warm
        #: refreshes are O(1) instead of re-walking the whole adjacency.
        self._stats: tuple[int, int, int] = (0, 0, 0)
        self.last_refresh: GraphRefresh | None = None
        #: Serialises rebuilds (the serving tier shares one graph across
        #: request threads); readers see whole-graph snapshots only.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _clocks(self) -> tuple[int, int]:
        # One backend call for both clocks: on file-backed stores each
        # clock read is a real query, and staleness checks run per query.
        return self.repository.clocks()

    def is_stale(self) -> bool:
        """Whether the repository changed since the adjacency was built."""
        return self._built_at != self._clocks()

    def refresh(self, force: bool = False) -> GraphRefresh:
        """Bring the cached adjacency in sync with the repository.

        A warm graph returns immediately without touching the store; a
        stale one rebuilds from one ``repository.matches()`` scan.
        """
        started = time.perf_counter()
        with self._lock:
            rebuilt = force or self.is_stale()
            if rebuilt:
                clocks = self._clocks()
                # Build into locals, publish together: a concurrent reader
                # sees either the old graph or the new one, never a new
                # node set over a stale adjacency.
                nodes = frozenset(self.repository.schema_names())
                adjacency = build_adjacency(self.repository.matches())
                self._nodes = nodes
                self._adjacency = adjacency
                self._built_at = clocks
                self._stats = (
                    len(nodes),
                    # Each undirected edge appears under both endpoints.
                    sum(len(n) for n in adjacency.values()) // 2,
                    sum(
                        len(legs)
                        for neighbours in adjacency.values()
                        for legs in neighbours.values()
                    ),
                )
            n_nodes, n_edges, n_legs = self._stats
        refresh = GraphRefresh(
            n_nodes=n_nodes,
            n_edges=n_edges,
            n_legs=n_legs,
            rebuilt=rebuilt,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.last_refresh = refresh
        return refresh

    def _snapshot(self, *required: str) -> tuple[frozenset[str], "Adjacency"]:
        """A refreshed, mutually consistent (nodes, adjacency) pair.

        Readers must not touch ``self._nodes`` / ``self._adjacency`` after
        releasing the lock -- a concurrent rebuild could publish a new
        graph between the node check and the adjacency walk.  One locked
        capture hands back a coherent pair (the walk then runs lock-free
        on the immutable snapshot); ``required`` names raise ``KeyError``
        against that same snapshot.
        """
        with self._lock:
            self.refresh()
            nodes, adjacency = self._nodes, self._adjacency
        for name in required:
            if name not in nodes:
                raise KeyError(f"schema {name!r} is not registered")
        return nodes, adjacency

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        with self._lock:
            self.refresh()
            return self._stats[0]

    @property
    def n_edges(self) -> int:
        with self._lock:
            self.refresh()
            return self._stats[1]

    def nodes(self) -> list[str]:
        nodes, _ = self._snapshot()
        return sorted(nodes)

    def neighbours(self, name: str) -> list[str]:
        """Schemata sharing at least one usable stored match with ``name``."""
        _, adjacency = self._snapshot(name)
        return sorted(adjacency.get(name, ()))

    def legs(self, source: str, target: str) -> list[MappingLeg]:
        """The traversal legs source -> target (stored either way, flipped)."""
        _, adjacency = self._snapshot(source, target)
        return list(adjacency.get(source, {}).get(target, ()))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def paths(
        self, source: str, target: str, max_hops: int = 2
    ) -> list[tuple[str, ...]]:
        """All acyclic pivot paths source -> target with 1..max_hops pivots."""
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        if source == target:
            raise ValueError(f"source and target must differ, both are {source!r}")
        _, adjacency = self._snapshot(source, target)
        return _enumerate_paths(adjacency, source, target, max_hops)

    def route(
        self,
        source: str,
        target: str,
        max_hops: int = 2,
        hop_decay: float | None = None,
        policy: TrustPolicy | None = None,
        annotate: bool = True,
    ) -> NetworkRoute:
        """Compose source -> target through every acyclic pivot path.

        Per path: max-min leg composition.  Across paths: the strongest
        (decayed) score per element pair wins, with the winning pivots and
        the supporting path count in the note (``annotate=False`` returns
        bare correspondences, byte-compatible with ``compose_matches``).
        """
        _, adjacency = self._snapshot(source, target)
        return _route(
            adjacency,
            source,
            target,
            max_hops,
            hop_decay if hop_decay is not None else self.hop_decay,
            policy,
            annotate,
        )

    def compose(
        self,
        source: str,
        target: str,
        max_hops: int = 2,
        hop_decay: float | None = None,
        policy: TrustPolicy | None = None,
        annotate: bool = True,
    ) -> list[Correspondence]:
        """The composed correspondences of :meth:`route` (convenience)."""
        return list(
            self.route(
                source, target, max_hops, hop_decay, policy, annotate
            ).correspondences
        )
