"""N-way matching: comprehensive vocabularies, 2^N-1 partitions, mediation."""

from repro.nway.mediated import distill_mediated_schema
from repro.nway.pairwise import nway_match, pairwise_matches
from repro.nway.partition import (
    NWayPartition,
    PartitionCell,
    all_signatures,
    partition_vocabulary,
)
from repro.nway.vocabulary import (
    ComprehensiveVocabulary,
    UnionFind,
    VocabularyEntry,
    build_vocabulary,
)

__all__ = [
    "ComprehensiveVocabulary",
    "NWayPartition",
    "PartitionCell",
    "UnionFind",
    "VocabularyEntry",
    "all_signatures",
    "build_vocabulary",
    "distill_mediated_schema",
    "nway_match",
    "pairwise_matches",
    "partition_vocabulary",
]
