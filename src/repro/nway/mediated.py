"""Minimal mediated-schema distillation (the emergency-response scenario).

Section 2: "The various agencies need to be able to throw their data models
into a giant beaker and to distill out a minimal mediated schema that will
serve as the basis for their collaboration."

Given a comprehensive vocabulary over the agencies' schemata, the minimal
mediated schema keeps the vocabulary entries shared by at least
``min_support`` schemata -- the information the group can actually exchange
-- and materialises them as a fresh :class:`~repro.schema.schema.Schema`
(entries whose members are containers become containers; leaf entries attach
under a mediated container when all their members agree on one).
"""

from __future__ import annotations

from collections import Counter

from repro.nway.vocabulary import ComprehensiveVocabulary, VocabularyEntry
from repro.schema.datatypes import DataType
from repro.schema.element import ElementKind
from repro.schema.schema import Schema

__all__ = ["distill_mediated_schema"]


def _representative_name(
    entry: VocabularyEntry, schemata
) -> str:
    """Majority surface name across member elements (ties: lexicographic)."""
    names = Counter()
    for schema_name, element_ids in entry.members.items():
        schema = schemata[schema_name]
        for element_id in element_ids:
            names[schema.element(element_id).name.lower()] += 1
    best_count = max(names.values())
    return min(name for name, count in names.items() if count == best_count)


def distill_mediated_schema(
    vocabulary: ComprehensiveVocabulary,
    schemata,
    min_support: int = 2,
    name: str = "mediated",
) -> Schema:
    """Distill the minimal mediated schema from a vocabulary.

    Parameters
    ----------
    vocabulary:
        Comprehensive vocabulary over the group.
    schemata:
        ``{schema_name: Schema}`` -- the same mapping the vocabulary was
        built from.
    min_support:
        Keep entries used by at least this many schemata (default 2: any
        shared concept earns a place at the negotiating table).

    Container entries (any member is a container) become mediated roots;
    leaf entries attach under the mediated container their member elements'
    parents map to, when that container was kept -- otherwise they join a
    catch-all ``SharedElements`` root, keeping the result a valid schema.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    kept = [
        entry
        for entry in vocabulary.entries
        if len(entry.signature) >= min_support
    ]

    mediated = Schema(name, kind="mediated")
    entry_is_container: dict[str, bool] = {}
    member_to_entry: dict[tuple[str, str], str] = {}
    for entry in kept:
        is_container = False
        for schema_name, element_ids in entry.members.items():
            schema = schemata[schema_name]
            for element_id in element_ids:
                member_to_entry[(schema_name, element_id)] = entry.entry_id
                if schema.children(element_id):
                    is_container = True
        entry_is_container[entry.entry_id] = is_container

    roots: dict[str, str] = {}  # entry id -> mediated element id
    for entry in kept:
        if entry_is_container[entry.entry_id]:
            element = mediated.add_root(
                _representative_name(entry, schemata),
                kind=ElementKind.GENERIC,
                data_type=DataType.COMPLEX,
                documentation=f"mediated concept covering {sorted(entry.signature)}",
            )
            roots[entry.entry_id] = element.element_id

    catchall_id: str | None = None
    for entry in kept:
        if entry_is_container[entry.entry_id]:
            continue
        # Find the mediated container via the members' parents.
        parent_entry_ids = set()
        for schema_name, element_ids in entry.members.items():
            schema = schemata[schema_name]
            for element_id in element_ids:
                parent = schema.parent(element_id)
                if parent is not None:
                    parent_entry = member_to_entry.get(
                        (schema_name, parent.element_id)
                    )
                    if parent_entry is not None and parent_entry in roots:
                        parent_entry_ids.add(parent_entry)
        if len(parent_entry_ids) == 1:
            parent_id = roots[next(iter(parent_entry_ids))]
        else:
            if catchall_id is None:
                catchall = mediated.add_root(
                    "SharedElements",
                    kind=ElementKind.GENERIC,
                    data_type=DataType.COMPLEX,
                    documentation="shared leaf concepts without an agreed container",
                )
                catchall_id = catchall.element_id
            parent_id = catchall_id
        mediated.add_child(
            parent_id,
            _representative_name(entry, schemata),
            kind=ElementKind.GENERIC,
            documentation=f"shared by {sorted(entry.signature)}",
        )
    mediated.validate()
    return mediated
