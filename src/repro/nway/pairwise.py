"""N-way match orchestration: pairwise engine runs feeding the vocabulary.

The practical route to an N-way match with a binary engine is to run the
C(N,2) pairwise matches and cluster the accepted correspondences.  This
module packages that loop: it matches every schema pair, selects
correspondences 1:1 (stable marriage, thresholded), and emits the
``(schema_a, element_a, schema_b, element_b)`` tuples
:func:`repro.nway.vocabulary.build_vocabulary` consumes.

By default the C(N,2) matches go through a
:class:`repro.service.MatchService` (auto-routed: small registries take the
exact engine, large ones the blocked fast path with profile/feature reuse
across pairs).  Pass a ``service`` to share caches with other operations,
an ``engine`` to force a specific exact engine, or a legacy
:class:`repro.batch.BatchMatchRunner` to force the fast path.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Iterator

from repro.match.selection import SelectionStrategy, StableMarriageSelection
from repro.schema.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch uses match)
    from repro.batch.runner import BatchMatchRunner
    from repro.match.engine import HarmonyMatchEngine
    from repro.service import MatchService

__all__ = ["pairwise_matches", "nway_match"]


def pairwise_matches(
    schemata: dict[str, Schema],
    engine: "HarmonyMatchEngine | None" = None,
    selection: SelectionStrategy | None = None,
    runner: "BatchMatchRunner | None" = None,
    service: "MatchService | None" = None,
) -> Iterator[tuple[str, str, str, str]]:
    """Yield accepted correspondences for every pair of schemata.

    Pairs are processed in sorted-name order so results are deterministic
    regardless of dict insertion order.  With ``runner`` given, pairs go
    through the batch fast path (and ``engine``/``service`` are ignored);
    with ``engine`` given, through that exact engine; otherwise through the
    (given or fresh) service's auto-routed all-pairs sweep.  Fast-path
    candidate scores are exact, so routed results differ from the engine
    path only where blocking pruned a pair (measured recall: bench E16).
    """
    selection = (
        selection if selection is not None else StableMarriageSelection(threshold=0.13)
    )
    if runner is not None:
        for outcome in runner.match_all_pairs(schemata, selection=selection):
            for correspondence in outcome.correspondences:
                yield (
                    outcome.source_name,
                    correspondence.source_id,
                    outcome.target_name,
                    correspondence.target_id,
                )
        return
    if engine is not None:
        for name_a, name_b in combinations(sorted(schemata), 2):
            result = engine.match(schemata[name_a], schemata[name_b])
            for correspondence in result.candidates(selection):
                yield (
                    name_a, correspondence.source_id,
                    name_b, correspondence.target_id,
                )
        return
    if service is None:
        from repro.service import MatchService

        service = MatchService()
    for response in service.match_all_pairs(schemata, selection=selection):
        for correspondence in response.correspondences:
            yield (
                response.source_name,
                correspondence.source_id,
                response.target_name,
                correspondence.target_id,
            )


def nway_match(
    schemata: dict[str, Schema],
    engine: "HarmonyMatchEngine | None" = None,
    selection: SelectionStrategy | None = None,
    runner: "BatchMatchRunner | None" = None,
    service: "MatchService | None" = None,
):
    """Run the full N-way pipeline: pairwise matches -> vocabulary -> partition.

    Returns ``(vocabulary, partition)``.  ``service`` shares the routing
    facade's caches across the pairwise stage; ``runner`` forces the batch
    fast path; ``engine`` forces a specific exact engine.
    """
    from repro.nway.partition import partition_vocabulary
    from repro.nway.vocabulary import build_vocabulary

    pairs = list(
        pairwise_matches(
            schemata, engine=engine, selection=selection, runner=runner,
            service=service,
        )
    )
    vocabulary = build_vocabulary(schemata, pairs)
    partition = partition_vocabulary(vocabulary)
    return vocabulary, partition
