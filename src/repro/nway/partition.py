"""The 2^N - 1 partition of an N-way match.

Section 4.5: "given N schemata there are 2^N - 1 such sets partitioning
their N-way match; each of which supplies a potentially valuable piece of
knowledge to information system decision makers."

A :class:`PartitionCell` is one non-empty subset of the schema group; the
cell's population is the vocabulary entries whose signature equals exactly
that subset.  Cells are computed from a
:class:`~repro.nway.vocabulary.ComprehensiveVocabulary`, so the laws hold by
construction: cells are disjoint and their union is the whole vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.nway.vocabulary import ComprehensiveVocabulary, VocabularyEntry

__all__ = ["PartitionCell", "NWayPartition", "partition_vocabulary", "all_signatures"]


@dataclass
class PartitionCell:
    """One of the 2^N - 1 cells: concepts held by exactly this subset."""

    signature: frozenset[str]
    entries: list[VocabularyEntry]

    @property
    def cardinality(self) -> int:
        """Number of vocabulary entries in the cell."""
        return len(self.entries)

    @property
    def n_elements(self) -> int:
        """Total schema elements covered by this cell's entries."""
        return sum(entry.n_elements for entry in self.entries)

    def label(self) -> str:
        return "{" + ", ".join(sorted(self.signature)) + "}"


def all_signatures(schema_names: list[str]) -> list[frozenset[str]]:
    """All 2^N - 1 non-empty subsets, smallest first, deterministic order."""
    signatures: list[frozenset[str]] = []
    ordered = sorted(schema_names)
    for size in range(1, len(ordered) + 1):
        for subset in combinations(ordered, size):
            signatures.append(frozenset(subset))
    return signatures


class NWayPartition:
    """The full 2^N - 1 cell family for one vocabulary."""

    def __init__(self, vocabulary: ComprehensiveVocabulary):
        self.vocabulary = vocabulary
        self.schema_names = sorted(vocabulary.schema_names)
        by_signature: dict[frozenset[str], list[VocabularyEntry]] = {}
        for entry in vocabulary.entries:
            by_signature.setdefault(entry.signature, []).append(entry)
        self.cells: list[PartitionCell] = [
            PartitionCell(signature=signature, entries=by_signature.get(signature, []))
            for signature in all_signatures(self.schema_names)
        ]

    @property
    def n_cells(self) -> int:
        """Always 2^N - 1."""
        return len(self.cells)

    def cell(self, *schema_names: str) -> PartitionCell:
        """The cell for exactly this subset of schemata."""
        wanted = frozenset(schema_names)
        for cell in self.cells:
            if cell.signature == wanted:
                return cell
        raise KeyError(f"no cell for signature {sorted(wanted)}")

    def nonempty_cells(self) -> list[PartitionCell]:
        return [cell for cell in self.cells if cell.cardinality > 0]

    def table(self) -> list[tuple[str, int, int]]:
        """(cell label, entry count, element count) rows, report-ready."""
        return [
            (cell.label(), cell.cardinality, cell.n_elements) for cell in self.cells
        ]

    def check_partition_laws(self) -> None:
        """Disjointness + totality; raises AssertionError on violation."""
        seen: set[str] = set()
        total = 0
        for cell in self.cells:
            for entry in cell.entries:
                assert entry.entry_id not in seen, "cells are not disjoint"
                seen.add(entry.entry_id)
                total += 1
        assert total == len(self.vocabulary), "cells do not cover the vocabulary"


def partition_vocabulary(vocabulary: ComprehensiveVocabulary) -> NWayPartition:
    """Build (and law-check) the 2^N - 1 partition of a vocabulary."""
    partition = NWayPartition(vocabulary)
    partition.check_partition_laws()
    return partition
