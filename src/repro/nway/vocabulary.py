"""Comprehensive vocabulary: N-way concept clusters via union-find.

Section 3.4: "the customer wanted to know the terms those schemata (and no
others in that group) held in common" -- i.e. a *comprehensive vocabulary*:
every concept appearing in any schema of the group, with the exact subset of
schemata using it.

Construction: run pairwise matches (or accept externally validated
correspondences), then union-find the element-level matches into cross-schema
clusters.  Each cluster becomes a :class:`VocabularyEntry`; the entry's
*signature* is the frozenset of schema names it touches, which drives the
2^N - 1 partition of :mod:`repro.nway.partition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.schema.schema import Schema

__all__ = ["UnionFind", "VocabularyEntry", "ComprehensiveVocabulary", "build_vocabulary"]


class UnionFind:
    """Classic disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._size: dict[str, int] = {}

    def add(self, item: str) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: str) -> str:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: str, right: str) -> str:
        """Merge the two classes; returns the surviving root."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return left_root
        if self._size[left_root] < self._size[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        self._size[left_root] += self._size[right_root]
        return left_root

    def groups(self) -> dict[str, list[str]]:
        """All classes as {root: sorted members}."""
        result: dict[str, list[str]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        for members in result.values():
            members.sort()
        return result

    def __len__(self) -> int:
        return len(self._parent)


@dataclass
class VocabularyEntry:
    """One cross-schema concept: member elements grouped by schema."""

    entry_id: str
    members: dict[str, list[str]]             # schema name -> element ids
    label: str = ""

    @property
    def signature(self) -> frozenset[str]:
        """The set of schemata using this concept (the partition key)."""
        return frozenset(self.members)

    @property
    def n_elements(self) -> int:
        return sum(len(ids) for ids in self.members.values())


class ComprehensiveVocabulary:
    """The full vocabulary of a schema group with signature queries."""

    def __init__(self, schema_names: list[str], entries: list[VocabularyEntry]):
        self.schema_names = list(schema_names)
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def entries_with_signature(self, signature: frozenset[str]) -> list[VocabularyEntry]:
        """Entries used by *exactly* this subset of schemata and no others."""
        return [entry for entry in self.entries if entry.signature == signature]

    def entries_covering(self, schema_names: Iterable[str]) -> list[VocabularyEntry]:
        """Entries used by *at least* these schemata."""
        needed = frozenset(schema_names)
        return [entry for entry in self.entries if needed <= entry.signature]

    def shared_by_all(self) -> list[VocabularyEntry]:
        return self.entries_covering(self.schema_names)

    def unique_to(self, schema_name: str) -> list[VocabularyEntry]:
        return self.entries_with_signature(frozenset([schema_name]))


def build_vocabulary(
    schemata: dict[str, Schema],
    matched_pairs: Iterable[tuple[str, str, str, str]],
    element_label: str = "name",
) -> ComprehensiveVocabulary:
    """Union-find elements across schemata into a comprehensive vocabulary.

    Parameters
    ----------
    schemata:
        ``{schema_name: Schema}`` for the whole group.
    matched_pairs:
        Validated correspondences as ``(schema_a, element_a, schema_b,
        element_b)`` tuples (typically the accepted output of pairwise
        matches between group members).
    element_label:
        Labels for entries: the name of the lexicographically first member.

    Every element of every schema appears in exactly one entry (singleton
    entries for unmatched elements), so entry signatures partition the
    group's whole element population.
    """
    forest = UnionFind()

    def node(schema_name: str, element_id: str) -> str:
        return f"{schema_name}::{element_id}"

    for schema_name, schema in schemata.items():
        for element in schema:
            forest.add(node(schema_name, element.element_id))
    for schema_a, element_a, schema_b, element_b in matched_pairs:
        forest.union(node(schema_a, element_a), node(schema_b, element_b))

    entries: list[VocabularyEntry] = []
    for index, (root, members) in enumerate(sorted(forest.groups().items())):
        grouped: dict[str, list[str]] = {}
        for member in members:
            schema_name, _, element_id = member.partition("::")
            grouped.setdefault(schema_name, []).append(element_id)
        first_schema = min(grouped)
        first_element = grouped[first_schema][0]
        label = (
            schemata[first_schema].element(first_element).name
            if element_label == "name"
            else first_element
        )
        entries.append(
            VocabularyEntry(entry_id=f"v{index}", members=grouped, label=label)
        )
    return ComprehensiveVocabulary(list(schemata), entries)
