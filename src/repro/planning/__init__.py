"""Decision support: COI feasibility, subsume-vs-bridge, cost estimation."""

from repro.planning.cost import CostParameters, IntegrationEstimate, estimate_integration
from repro.planning.decision import (
    CostBreakdown,
    DecisionModel,
    Option,
    Recommendation,
)
from repro.planning.feasibility import (
    FeasibilityReport,
    PairOverlap,
    assess_coi_feasibility,
)

__all__ = [
    "CostBreakdown",
    "CostParameters",
    "DecisionModel",
    "FeasibilityReport",
    "IntegrationEstimate",
    "Option",
    "PairOverlap",
    "Recommendation",
    "assess_coi_feasibility",
    "estimate_integration",
]
