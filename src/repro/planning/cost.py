"""Integration cost estimation: from match results to a contract number.

Section 2 (project planning): "how much time and money should be allocated
to these projects? ... to help the COI planners estimate the level of
programming effort required to establish the actual mappings so an
appropriate contract can be written with realistic cost estimates."

The estimate decomposes into the matching phase (priced by the
:class:`~repro.workflow.effort.EffortModel`) and the mapping-development
phase (priced per validated mapping and per coverage-gap element).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.overlap import OverlapReport
from repro.workflow.effort import SECONDS_PER_PERSON_DAY, EffortEstimate, EffortModel

__all__ = ["CostParameters", "IntegrationEstimate", "estimate_integration"]


@dataclass(frozen=True)
class CostParameters:
    """Unit prices for the mapping-development phase."""

    hours_per_mapping: float = 1.5            # code + test one element mapping
    hours_per_gap_element: float = 0.75       # decide/extend for an unmatched element
    daily_rate_dollars: float = 1200.0

    def __post_init__(self) -> None:
        for name in ("hours_per_mapping", "hours_per_gap_element", "daily_rate_dollars"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class IntegrationEstimate:
    """The full level-of-effort estimate."""

    matching_person_days: float
    mapping_person_days: float
    gap_person_days: float

    @property
    def total_person_days(self) -> float:
        return self.matching_person_days + self.mapping_person_days + self.gap_person_days

    def cost_dollars(self, parameters: CostParameters) -> float:
        return self.total_person_days * parameters.daily_rate_dollars

    def describe(self, parameters: CostParameters) -> str:
        return (
            f"matching {self.matching_person_days:.1f}pd + mapping "
            f"{self.mapping_person_days:.1f}pd + gaps {self.gap_person_days:.1f}pd "
            f"= {self.total_person_days:.1f} person-days "
            f"(~${self.cost_dollars(parameters):,.0f})"
        )


def estimate_integration(
    overlap: OverlapReport,
    matching_effort: EffortEstimate,
    parameters: CostParameters | None = None,
) -> IntegrationEstimate:
    """Price an integration project from its overlap analysis.

    ``matching_effort`` is the already-spent (or projected) matching phase;
    mapping development is priced per matched pair; coverage gaps (target
    elements without a counterpart) are priced per element, since each needs
    a vocabulary-extension or out-of-scope decision.
    """
    parameters = parameters if parameters is not None else CostParameters()
    n_mappings = len(overlap.matched_pairs) or len(overlap.intersection_target_ids)
    mapping_days = n_mappings * parameters.hours_per_mapping * 3600 / SECONDS_PER_PERSON_DAY
    gap_days = (
        overlap.target_unmatched_count
        * parameters.hours_per_gap_element
        * 3600
        / SECONDS_PER_PERSON_DAY
    )
    return IntegrationEstimate(
        matching_person_days=matching_effort.person_days,
        mapping_person_days=mapping_days,
        gap_person_days=gap_days,
    )
