"""The subsume-vs-bridge decision model of section 3.1.

The customer's choice: augment Sys(SA) to *subsume* Sys(SB), or *retain*
Sys(SB) and build an ETL bridge.  The paper states the decision logic:
"Eliminating Sys(SB) was not the clear choice if a) the set of distinct SB
elements were sufficiently large and b) the set of common elements ... were
sufficiently small."

The model prices both options from the overlap partition:

* **subsume**: every distinct SB element must be added to SA (schema change
  + migration), every common element must be mapped once for the data
  move, and SB's operations must be re-homed (fixed cost).
* **bridge**: every common element needs a mapping in the ETL bridge, plus
  bridge construction (fixed) and recurring maintenance over a planning
  horizon; distinct SB elements cost nothing (SB keeps serving them).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.metrics.overlap import OverlapReport

__all__ = ["Option", "CostBreakdown", "Recommendation", "DecisionModel"]


class Option(Enum):
    SUBSUME = "subsume"
    BRIDGE = "bridge"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CostBreakdown:
    """Priced components of one option, in person-days."""

    option: Option
    fixed: float
    per_common: float
    per_distinct: float
    recurring: float

    @property
    def total(self) -> float:
        return self.fixed + self.per_common + self.per_distinct + self.recurring


@dataclass(frozen=True)
class Recommendation:
    """The model's verdict with both priced options."""

    choice: Option
    subsume: CostBreakdown
    bridge: CostBreakdown

    @property
    def margin(self) -> float:
        """How much cheaper the chosen option is (person-days)."""
        return abs(self.subsume.total - self.bridge.total)

    def describe(self) -> str:
        return (
            f"recommend {self.choice}: subsume={self.subsume.total:.0f}pd, "
            f"bridge={self.bridge.total:.0f}pd (margin {self.margin:.0f}pd)"
        )


@dataclass(frozen=True)
class DecisionModel:
    """Unit costs in person-days; defaults are plausible integration rates."""

    days_per_added_element: float = 0.5        # schema change + migration, subsume
    days_per_mapping: float = 0.2              # one validated mapping, either option
    subsume_fixed_days: float = 60.0           # re-homing Sys(SB) operations
    bridge_fixed_days: float = 30.0            # ETL bridge construction
    bridge_yearly_maintenance_days: float = 20.0
    horizon_years: float = 3.0

    def evaluate(self, report: OverlapReport) -> Recommendation:
        """Price both options from an overlap partition and recommend."""
        n_common = len(report.intersection_target_ids)
        n_distinct = report.target_unmatched_count

        subsume = CostBreakdown(
            option=Option.SUBSUME,
            fixed=self.subsume_fixed_days,
            per_common=n_common * self.days_per_mapping,
            per_distinct=n_distinct * self.days_per_added_element,
            recurring=0.0,
        )
        bridge = CostBreakdown(
            option=Option.BRIDGE,
            fixed=self.bridge_fixed_days,
            per_common=n_common * self.days_per_mapping,
            per_distinct=0.0,
            recurring=self.bridge_yearly_maintenance_days * self.horizon_years,
        )
        choice = Option.SUBSUME if subsume.total <= bridge.total else Option.BRIDGE
        return Recommendation(choice=choice, subsume=subsume, bridge=bridge)

    def crossover_distinct_count(self) -> float:
        """The distinct-element count where the two options break even.

        Below this many distinct SB elements, subsuming wins; above it, the
        bridge wins -- the quantitative form of the paper's condition (a).
        """
        return (
            self.bridge_fixed_days
            + self.bridge_yearly_maintenance_days * self.horizon_years
            - self.subsume_fixed_days
        ) / self.days_per_added_element
