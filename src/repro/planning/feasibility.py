"""COI feasibility: should a decision maker convene this community?

Section 2: "Schema matching tools are needed to quickly estimate the extent
to which it will be feasible to generate a community vocabulary from a
collection of data sources."

Feasibility here is the mean pairwise overlap across the candidate members
(harmonic matched fractions, as in the clustering distance), with the
minimum pair reported too -- one non-overlapping member can sink a COI even
when the average looks fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING

from repro.schema.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.match.engine import HarmonyMatchEngine
    from repro.service import MatchService

__all__ = ["PairOverlap", "FeasibilityReport", "assess_coi_feasibility"]


@dataclass(frozen=True)
class PairOverlap:
    """Overlap of one candidate pair."""

    left: str
    right: str
    overlap: float


@dataclass(frozen=True)
class FeasibilityReport:
    """The feasibility assessment for a candidate COI."""

    members: tuple[str, ...]
    pair_overlaps: tuple[PairOverlap, ...]
    mean_overlap: float
    min_overlap: float

    def feasible(self, threshold: float = 0.25) -> bool:
        """A COI is worth convening when the average member pair overlaps."""
        return self.mean_overlap >= threshold

    def weakest_pair(self) -> PairOverlap:
        return min(self.pair_overlaps, key=lambda pair: pair.overlap)

    def describe(self) -> str:
        verdict = "feasible" if self.feasible() else "not feasible"
        return (
            f"COI over {len(self.members)} systems: mean overlap "
            f"{self.mean_overlap:.0%}, weakest pair {self.min_overlap:.0%} "
            f"-> {verdict}"
        )


def assess_coi_feasibility(
    schemata: dict[str, Schema],
    engine: "HarmonyMatchEngine | None" = None,
    threshold: float = 0.13,
    service: "MatchService | None" = None,
) -> FeasibilityReport:
    """Estimate community-vocabulary feasibility from pairwise overlaps.

    Pairs run through the (given or fresh) service's auto-routed MATCH
    unless an explicit ``engine`` pins the exact path; either way profiles
    are derived once per member schema.
    """
    if len(schemata) < 2:
        raise ValueError("a COI needs at least two candidate members")
    if engine is None:
        from repro.service import MatchService

        if service is None:
            service = MatchService()
    overlaps: list[PairOverlap] = []
    for left, right in combinations(sorted(schemata), 2):
        if engine is not None:
            result = engine.match(schemata[left], schemata[right])
        else:
            result = service.match_pair(schemata[left], schemata[right]).result
        source_fraction = len(result.matched_source_ids(threshold)) / max(
            len(schemata[left]), 1
        )
        target_fraction = len(result.matched_target_ids(threshold)) / max(
            len(schemata[right]), 1
        )
        if source_fraction + target_fraction == 0:
            harmonic = 0.0
        else:
            harmonic = (
                2 * source_fraction * target_fraction
                / (source_fraction + target_fraction)
            )
        overlaps.append(PairOverlap(left=left, right=right, overlap=harmonic))
    values = [pair.overlap for pair in overlaps]
    return FeasibilityReport(
        members=tuple(sorted(schemata)),
        pair_overlaps=tuple(overlaps),
        mean_overlap=sum(values) / len(values),
        min_overlap=min(values),
    )
