"""Enterprise metadata repository: schemata + match knowledge + provenance."""

from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.repository.reuse import compose_matches, reuse_candidates
from repro.repository.store import MetadataRepository, StoredMatch

__all__ = [
    "AssertionMethod",
    "MetadataRepository",
    "ProvenanceRecord",
    "StoredMatch",
    "TrustPolicy",
    "compose_matches",
    "reuse_candidates",
]
