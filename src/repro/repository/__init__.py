"""Enterprise metadata repository: schemata + match knowledge + provenance."""

from repro.repository.backends import (
    InMemoryBackend,
    PooledSqliteBackend,
    PoolStats,
    SqliteBackend,
    StorageBackend,
    open_backend,
)
from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.repository.reuse import (
    PriorAssertion,
    ReuseOutcome,
    ReusePolicy,
    compose_matches,
    reuse_candidates,
)
from repro.repository.store import MetadataRepository, StoredMatch

__all__ = [
    "AssertionMethod",
    "InMemoryBackend",
    "MetadataRepository",
    "PooledSqliteBackend",
    "PoolStats",
    "PriorAssertion",
    "ProvenanceRecord",
    "ReuseOutcome",
    "ReusePolicy",
    "SqliteBackend",
    "StorageBackend",
    "StoredMatch",
    "TrustPolicy",
    "compose_matches",
    "open_backend",
    "reuse_candidates",
]
