"""Enterprise metadata repository: schemata + match knowledge + provenance."""

from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.repository.reuse import (
    PriorAssertion,
    ReuseOutcome,
    ReusePolicy,
    compose_matches,
    reuse_candidates,
)
from repro.repository.store import MetadataRepository, StoredMatch

__all__ = [
    "AssertionMethod",
    "MetadataRepository",
    "PriorAssertion",
    "ProvenanceRecord",
    "ReuseOutcome",
    "ReusePolicy",
    "StoredMatch",
    "TrustPolicy",
    "compose_matches",
    "reuse_candidates",
]
