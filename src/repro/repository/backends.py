"""Pluggable storage backends for the metadata repository.

The memory/SQLite split that grew inside ``store.py`` is here made an
explicit contract: :class:`StorageBackend` is the protocol any store must
implement to sit under :class:`~repro.repository.store.MetadataRepository`,
and ``tests/test_backend_contract.py`` runs every method of every backend
against the same expectations, so a backend that passes the suite is a
drop-in.

Three implementations ship:

* :class:`InMemoryBackend` -- dicts and lists, the ephemeral default;
* :class:`SqliteBackend` -- the legacy single-connection store: one
  ``check_same_thread=False`` connection shared by every caller, which is
  safe *only because* the backend declares ``serialize_calls = True`` and
  the repository serialises every call under its lock;
* :class:`PooledSqliteBackend` -- WAL-mode SQLite behind a bounded
  connection pool: ``serialize_calls = False``, so concurrent reader
  threads each borrow their own connection (readers never block readers
  or the writer under WAL), writes run as ``BEGIN IMMEDIATE``
  transactions with a busy timeout, and N worker *processes* can share
  one database file -- the backend the process-pool serving tier
  (``repro serve --workers``) opens in every worker.

**Clocks are a backend concern.**  The ``generation`` /
``match_generation`` staleness clocks (and the provenance ``sequence``
counter) live in the backend, not in ``MetadataRepository``: every
mutator bumps the affected clock *in the same transaction* as the data
write, so on the SQLite backends the clocks are persisted, survive
reopen, and -- crucially -- are visible across processes.  That is what
lets a per-process :class:`~repro.server.cache.ResponseCache` stay exact
under multi-process serving: a ``store_matches`` in one process moves
``match_generation`` in the database, and every other process's next
cache lookup sees the moved clock and recomputes.  (The in-memory
backend keeps plain counters; an in-memory store cannot be shared across
processes in the first place.)
"""

from __future__ import annotations

import json
import queue
import sqlite3
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.match.correspondence import (
    Correspondence,
    MatchStatus,
    SemanticAnnotation,
)
from repro.repository.provenance import AssertionMethod, ProvenanceRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from repro.repository.store import StoredMatch

__all__ = [
    "StorageBackend",
    "InMemoryBackend",
    "SqliteBackend",
    "PooledSqliteBackend",
    "PoolStats",
    "open_backend",
]


@runtime_checkable
class StorageBackend(Protocol):
    """What a store must provide to sit under ``MetadataRepository``.

    Contract highlights (the executable version is
    ``tests/test_backend_contract.py``):

    * ``serialize_calls`` declares the backend's threading discipline:
      ``True`` means the backend is NOT safe under concurrent calls and
      the repository must serialise every call under its lock (the
      in-memory dicts; the legacy shared SQLite connection).  ``False``
      means calls may run concurrently (the pooled backend hands every
      caller its own connection).
    * ``clocks()`` returns the ``(generation, match_generation)`` pair.
      Mutators own the bumps: ``put_schema`` bumps ``generation``;
      ``delete_schema`` bumps both (its cascade may remove matches);
      ``add_matches`` bumps ``match_generation`` for a non-empty batch.
      Each bump commits atomically with its data write.
    * ``add_matches`` is all-or-nothing: either every row of the batch
      is stored (and the clock bumped once) or none is.
    * ``put_schemas`` is the bulk-ingestion write: ONE transaction per
      call that upserts every payload, stores the fingerprints provided
      alongside, drops the (now stale) stored fingerprint of every
      payload *without* one, and bumps ``generation`` by the number of
      payloads -- all atomically.  An empty batch is a no-op (no clock
      movement).  ``get_schemas`` / ``get_fingerprints`` are the bulk
      reads: present names map to their payloads, missing names are
      simply absent (never an error).
    * ``next_sequences(count)`` atomically reserves ``count`` provenance
      sequence numbers and returns the first; allocations are unique and
      increasing across threads and (for file-backed stores) processes.
      Crash between allocation and write may leave gaps -- sequence is
      logical time, gaps are harmless; going backwards is not.
    * ``schema_names`` / ``fingerprint_names`` return sorted names;
      ``all_matches`` returns insertion order.
    * ``record_requests`` / ``hot_requests`` persist per-request-hash hit
      counters -- the serving tier's cache-warming source.  Records are
      ``(key, endpoint, payload, count)``; recording the same key again
      ADDS to its count and refreshes endpoint/payload.  Like
      fingerprints, request stats are derived observability data: they
      never bump a clock.  ``hot_requests`` returns the top ``limit``
      records ordered by count (descending), key as the tiebreak.
    """

    #: True = repository must serialise every call under its own lock.
    serialize_calls: bool

    # -- clocks and sequence -------------------------------------------
    def clocks(self) -> tuple[int, int]: ...
    def next_sequences(self, count: int) -> int: ...

    # -- schemata -------------------------------------------------------
    def put_schema(self, name: str, payload: dict) -> None: ...
    def get_schema(self, name: str) -> dict | None: ...
    def get_schemas(self, names: Sequence[str]) -> dict[str, dict]: ...
    def put_schemas(
        self,
        payloads: dict[str, dict],
        fingerprints: dict[str, dict] | None = None,
    ) -> None: ...
    def schema_names(self) -> list[str]: ...
    def delete_schema(self, name: str) -> None: ...

    # -- matches --------------------------------------------------------
    def add_matches(self, matches: Sequence["StoredMatch"]) -> None: ...
    def all_matches(self) -> list["StoredMatch"]: ...
    def matches_touching(self, schema_name: str) -> list["StoredMatch"]: ...
    def matches_between(self, first: str, second: str) -> list["StoredMatch"]: ...

    # -- corpus fingerprints -------------------------------------------
    def put_fingerprint(self, name: str, payload: dict) -> None: ...
    def put_fingerprints(self, payloads: dict[str, dict]) -> None: ...
    def get_fingerprint(self, name: str) -> dict | None: ...
    def get_fingerprints(self, names: Sequence[str]) -> dict[str, dict]: ...
    def fingerprint_names(self) -> list[str]: ...
    def fingerprint_hashes(self) -> dict[str, str]: ...
    def delete_fingerprint(self, name: str) -> None: ...

    # -- request statistics (cache warming) ----------------------------
    def record_requests(
        self, records: Sequence[tuple[str, str, dict, int]]
    ) -> None: ...
    def hot_requests(self, limit: int) -> list[tuple[str, str, dict, int]]: ...

    # -- lifecycle ------------------------------------------------------
    def describe(self) -> dict: ...
    def close(self) -> None: ...


class InMemoryBackend:
    """Dict-backed storage (the ephemeral default)."""

    serialize_calls = True

    def __init__(self) -> None:
        self.schemata: dict[str, dict] = {}
        self.matches: list["StoredMatch"] = []
        self.fingerprints: dict[str, dict] = {}
        self.request_stats: dict[str, tuple[str, dict, int]] = {}
        self._generation = 0
        self._match_generation = 0
        self._sequence = 0

    # -- clocks and sequence -------------------------------------------
    def clocks(self) -> tuple[int, int]:
        return (self._generation, self._match_generation)

    def next_sequences(self, count: int) -> int:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        first = self._sequence + 1
        self._sequence += count
        return first

    # -- schemata -------------------------------------------------------
    def put_schema(self, name: str, payload: dict) -> None:
        self.schemata[name] = payload
        self._generation += 1

    def get_schema(self, name: str) -> dict | None:
        return self.schemata.get(name)

    def get_schemas(self, names: Sequence[str]) -> dict[str, dict]:
        return {
            name: self.schemata[name] for name in names if name in self.schemata
        }

    def put_schemas(
        self,
        payloads: dict[str, dict],
        fingerprints: dict[str, dict] | None = None,
    ) -> None:
        if not payloads:
            return
        fingerprints = fingerprints or {}
        for name, payload in payloads.items():
            self.schemata[name] = payload
            fingerprint = fingerprints.get(name)
            if fingerprint is None:
                self.fingerprints.pop(name, None)
            else:
                self.fingerprints[name] = fingerprint
        self._generation += len(payloads)

    def schema_names(self) -> list[str]:
        return sorted(self.schemata)

    def delete_schema(self, name: str) -> None:
        self.schemata.pop(name, None)
        self.fingerprints.pop(name, None)
        self.matches = [
            match
            for match in self.matches
            if name not in (match.source_schema, match.target_schema)
        ]
        self._generation += 1
        # The cascade may have deleted match rows; derived match
        # structures (the mapping graph) must notice even when no
        # match survived.
        self._match_generation += 1

    # -- matches --------------------------------------------------------
    def add_matches(self, matches: Sequence["StoredMatch"]) -> None:
        # Materialise BEFORE extending: an iterable that raises part-way
        # through must leave the store (and the clock) untouched.
        batch = list(matches)
        if not batch:
            return
        self.matches.extend(batch)
        self._match_generation += 1

    def all_matches(self) -> list["StoredMatch"]:
        return list(self.matches)

    def matches_touching(self, schema_name: str) -> list["StoredMatch"]:
        return [
            match
            for match in self.matches
            if schema_name in (match.source_schema, match.target_schema)
        ]

    def matches_between(self, first: str, second: str) -> list["StoredMatch"]:
        pair = {(first, second), (second, first)}
        return [
            match
            for match in self.matches
            if (match.source_schema, match.target_schema) in pair
        ]

    # -- corpus fingerprints -------------------------------------------
    def put_fingerprint(self, name: str, payload: dict) -> None:
        self.fingerprints[name] = payload

    def put_fingerprints(self, payloads: dict[str, dict]) -> None:
        self.fingerprints.update(payloads)

    def get_fingerprint(self, name: str) -> dict | None:
        return self.fingerprints.get(name)

    def get_fingerprints(self, names: Sequence[str]) -> dict[str, dict]:
        return {
            name: self.fingerprints[name]
            for name in names
            if name in self.fingerprints
        }

    def fingerprint_names(self) -> list[str]:
        return sorted(self.fingerprints)

    def fingerprint_hashes(self) -> dict[str, str]:
        return {
            name: payload.get("hash", "")
            for name, payload in self.fingerprints.items()
        }

    def delete_fingerprint(self, name: str) -> None:
        self.fingerprints.pop(name, None)

    # -- request statistics (cache warming) ----------------------------
    def record_requests(
        self, records: Sequence[tuple[str, str, dict, int]]
    ) -> None:
        for key, endpoint, payload, count in records:
            previous = self.request_stats.get(key)
            total = count + (previous[2] if previous is not None else 0)
            self.request_stats[key] = (endpoint, payload, total)

    def hot_requests(self, limit: int) -> list[tuple[str, str, dict, int]]:
        ranked = sorted(
            self.request_stats.items(), key=lambda item: (-item[1][2], item[0])
        )
        return [
            (key, endpoint, payload, count)
            for key, (endpoint, payload, count) in ranked[:limit]
        ]

    # -- lifecycle ------------------------------------------------------
    def describe(self) -> dict:
        return {"kind": "memory"}

    def close(self) -> None:  # pragma: no cover - nothing to release
        return None


# ----------------------------------------------------------------------
# Shared SQLite plumbing (schema, migrations, row codecs)
# ----------------------------------------------------------------------
_INSERT_MATCH = (
    "INSERT INTO matches (source_schema, target_schema, source_element,"
    " target_element, score, status, annotation, note, corr_asserted_by,"
    " asserted_by, method, confidence, sequence, context, prov_note)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)

_SELECT_MATCHES = (
    "SELECT source_schema, target_schema, source_element, target_element,"
    " score, status, annotation, note, corr_asserted_by, asserted_by,"
    " method, confidence, sequence, context, prov_note"
    " FROM matches"
)

_BUMP_CLOCK = "UPDATE repo_clocks SET value = value + ? WHERE name = ?"

#: Names per IN-clause for the bulk reads: SQLite's default parameter
#: limit is 999 (SQLITE_MAX_VARIABLE_NUMBER); 500 leaves headroom.
_IN_CHUNK = 500


def _chunked(names: Sequence[str], size: int = _IN_CHUNK):
    ordered = list(dict.fromkeys(names))  # dedupe, keep order
    for start in range(0, len(ordered), size):
        yield ordered[start : start + size]


def _ensure_sqlite_schema(connection: sqlite3.Connection) -> None:
    """Create/migrate the on-disk layout; idempotent on every open.

    Both SQLite backends share one file format, so a store written by the
    legacy backend opens under the pooled backend unchanged (and vice
    versa) -- the backends differ in connection discipline, not layout.
    """
    with connection:
        connection.execute(
            "CREATE TABLE IF NOT EXISTS schemata ("
            " name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS matches ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " source_schema TEXT NOT NULL, target_schema TEXT NOT NULL,"
            " source_element TEXT NOT NULL, target_element TEXT NOT NULL,"
            " score REAL NOT NULL, status TEXT NOT NULL,"
            " annotation TEXT NOT NULL, note TEXT NOT NULL,"
            " corr_asserted_by TEXT NOT NULL DEFAULT '',"
            " asserted_by TEXT NOT NULL, method TEXT NOT NULL,"
            " confidence REAL NOT NULL, sequence INTEGER NOT NULL,"
            " context TEXT NOT NULL, prov_note TEXT NOT NULL)"
        )
        # Stores created before the correspondence asserter was persisted
        # separately lack the column; add it in place (empty = "fall back
        # to the provenance asserter", the old read behaviour).
        columns = {
            row[1] for row in connection.execute("PRAGMA table_info(matches)")
        }
        if "corr_asserted_by" not in columns:
            connection.execute(
                "ALTER TABLE matches ADD COLUMN"
                " corr_asserted_by TEXT NOT NULL DEFAULT ''"
            )
        # Corpus-index fingerprints arrived after the first stores shipped;
        # CREATE IF NOT EXISTS is the in-place migration (older files gain
        # the table on open, their fingerprints rebuild lazily on demand).
        connection.execute(
            "CREATE TABLE IF NOT EXISTS corpus_fingerprints ("
            " name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        # Mapping-network-era migration: pair/touching queries (graph
        # rebuilds, reuse priors, cascade deletes) would otherwise scan the
        # whole matches table.  IF NOT EXISTS makes reopening idempotent;
        # older files gain the indexes on first open, with no data change.
        connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_matches_schema_pair"
            " ON matches (source_schema, target_schema)"
        )
        connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_matches_target_schema"
            " ON matches (target_schema)"
        )
        # Backend-era migration: the staleness clocks and the provenance
        # sequence counter move into the store so they are transactional
        # with the writes that bump them and visible across processes.
        # Older files gain the table on open with clocks at 0 and the
        # sequence seeded from the stored maximum (what MetadataRepository
        # used to recompute on every open).
        connection.execute(
            "CREATE TABLE IF NOT EXISTS repo_clocks ("
            " name TEXT PRIMARY KEY, value INTEGER NOT NULL)"
        )
        connection.execute(
            "INSERT OR IGNORE INTO repo_clocks (name, value)"
            " VALUES ('generation', 0), ('match_generation', 0)"
        )
        connection.execute(
            "INSERT OR IGNORE INTO repo_clocks (name, value)"
            " VALUES ('sequence',"
            " COALESCE((SELECT MAX(sequence) FROM matches), 0))"
        )
        # Distributed-cache-era migration: per-request-hash hit counters,
        # the serving tier's cache-warming source.  Older files gain the
        # (empty) table on open; warming simply finds nothing to warm.
        connection.execute(
            "CREATE TABLE IF NOT EXISTS request_stats ("
            " key TEXT PRIMARY KEY, endpoint TEXT NOT NULL,"
            " payload TEXT NOT NULL, count INTEGER NOT NULL)"
        )


def _match_row(match: "StoredMatch") -> tuple:
    correspondence = match.correspondence
    provenance = match.provenance
    return (
        match.source_schema,
        match.target_schema,
        correspondence.source_id,
        correspondence.target_id,
        correspondence.score,
        correspondence.status.value,
        correspondence.annotation.value,
        correspondence.note,
        correspondence.asserted_by,
        provenance.asserted_by,
        provenance.method.value,
        provenance.confidence,
        provenance.sequence,
        provenance.context,
        provenance.note,
    )


def _stored(row: tuple) -> "StoredMatch":
    from repro.repository.store import StoredMatch

    return StoredMatch(
        source_schema=row[0],
        target_schema=row[1],
        correspondence=Correspondence(
            source_id=row[2],
            target_id=row[3],
            score=row[4],
            status=MatchStatus(row[5]),
            annotation=SemanticAnnotation(row[6]),
            note=row[7],
            # Pre-migration rows stored only the provenance
            # asserter; fall back to it.
            asserted_by=row[8] or row[9],
        ),
        provenance=ProvenanceRecord(
            asserted_by=row[9],
            method=AssertionMethod(row[10]),
            confidence=row[11],
            sequence=row[12],
            context=row[13],
            note=row[14],
        ),
    )


class _SqliteQueries:
    """The SQL shared by both SQLite backends.

    Subclasses provide the connection discipline: ``_read(sql, params)``
    and ``_write(statements)`` (a list of ``(sql, params)`` executed as
    ONE transaction, committed atomically or not at all).
    """

    def _read(self, sql: str, params: tuple = ()) -> list[tuple]:
        raise NotImplementedError

    def _write(self, statements: list[tuple]) -> None:
        raise NotImplementedError

    # -- clocks and sequence -------------------------------------------
    def clocks(self) -> tuple[int, int]:
        values = dict(self._read("SELECT name, value FROM repo_clocks"))
        return (values["generation"], values["match_generation"])

    # -- schemata -------------------------------------------------------
    def put_schema(self, name: str, payload: dict) -> None:
        self._write([
            (
                "INSERT OR REPLACE INTO schemata (name, payload) VALUES (?, ?)",
                (name, json.dumps(payload)),
            ),
            (_BUMP_CLOCK, (1, "generation")),
        ])

    def get_schema(self, name: str) -> dict | None:
        rows = self._read("SELECT payload FROM schemata WHERE name = ?", (name,))
        if not rows:
            return None
        return json.loads(rows[0][0])

    def get_schemas(self, names: Sequence[str]) -> dict[str, dict]:
        found: dict[str, dict] = {}
        for chunk in _chunked(names):
            marks = ",".join("?" * len(chunk))
            rows = self._read(
                f"SELECT name, payload FROM schemata WHERE name IN ({marks})",
                tuple(chunk),
            )
            found.update((row[0], json.loads(row[1])) for row in rows)
        return found

    def put_schemas(
        self,
        payloads: dict[str, dict],
        fingerprints: dict[str, dict] | None = None,
    ) -> None:
        """Bulk upsert as ONE transaction: every payload, every provided
        fingerprint, every stale-fingerprint drop, and one generation bump
        of ``len(payloads)`` commit together or not at all."""
        if not payloads:
            return
        fingerprints = fingerprints or {}
        statements: list[tuple] = []
        for name, payload in payloads.items():
            statements.append((
                "INSERT OR REPLACE INTO schemata (name, payload) VALUES (?, ?)",
                (name, json.dumps(payload)),
            ))
            fingerprint = fingerprints.get(name)
            if fingerprint is None:
                statements.append((
                    "DELETE FROM corpus_fingerprints WHERE name = ?", (name,)
                ))
            else:
                statements.append((
                    "INSERT OR REPLACE INTO corpus_fingerprints (name, payload)"
                    " VALUES (?, ?)",
                    (name, json.dumps(fingerprint)),
                ))
        statements.append((_BUMP_CLOCK, (len(payloads), "generation")))
        self._write(statements)

    def schema_names(self) -> list[str]:
        return [row[0] for row in self._read("SELECT name FROM schemata ORDER BY name")]

    def delete_schema(self, name: str) -> None:
        self._write([
            ("DELETE FROM schemata WHERE name = ?", (name,)),
            ("DELETE FROM corpus_fingerprints WHERE name = ?", (name,)),
            (
                "DELETE FROM matches WHERE source_schema = ? OR target_schema = ?",
                (name, name),
            ),
            (_BUMP_CLOCK, (1, "generation")),
            # The cascade may have deleted match rows; derived match
            # structures (the mapping graph) must notice even when no
            # match survived.
            (_BUMP_CLOCK, (1, "match_generation")),
        ])

    # -- matches --------------------------------------------------------
    def add_matches(self, matches: Sequence["StoredMatch"]) -> None:
        """Bulk insert as ONE transaction: all rows (and the clock bump)
        commit together, or nothing does."""
        rows = [_match_row(match) for match in matches]
        if not rows:
            return
        self._write(
            [(_INSERT_MATCH, row) for row in rows]
            + [(_BUMP_CLOCK, (1, "match_generation"))]
        )

    def all_matches(self) -> list["StoredMatch"]:
        return [_stored(row) for row in self._read(_SELECT_MATCHES + " ORDER BY id")]

    def matches_touching(self, schema_name: str) -> list["StoredMatch"]:
        rows = self._read(
            _SELECT_MATCHES
            + " WHERE source_schema = ? OR target_schema = ? ORDER BY id",
            (schema_name, schema_name),
        )
        return [_stored(row) for row in rows]

    def matches_between(self, first: str, second: str) -> list["StoredMatch"]:
        rows = self._read(
            _SELECT_MATCHES
            + " WHERE (source_schema = ? AND target_schema = ?)"
            "    OR (source_schema = ? AND target_schema = ?) ORDER BY id",
            (first, second, second, first),
        )
        return [_stored(row) for row in rows]

    # -- corpus fingerprints -------------------------------------------
    def put_fingerprint(self, name: str, payload: dict) -> None:
        self._write([
            (
                "INSERT OR REPLACE INTO corpus_fingerprints (name, payload)"
                " VALUES (?, ?)",
                (name, json.dumps(payload)),
            )
        ])

    def put_fingerprints(self, payloads: dict[str, dict]) -> None:
        """Bulk write as ONE transaction (a cold index build is N schemata)."""
        self._write([
            (
                "INSERT OR REPLACE INTO corpus_fingerprints (name, payload)"
                " VALUES (?, ?)",
                (name, json.dumps(payload)),
            )
            for name, payload in payloads.items()
        ])

    def get_fingerprint(self, name: str) -> dict | None:
        rows = self._read(
            "SELECT payload FROM corpus_fingerprints WHERE name = ?", (name,)
        )
        if not rows:
            return None
        return json.loads(rows[0][0])

    def get_fingerprints(self, names: Sequence[str]) -> dict[str, dict]:
        """Bulk fingerprint read (one IN-clause query per 500 names).

        The corpus index's refresh path: rebuilding K entries costs
        ``ceil(K / 500)`` queries, not K round-trips.
        """
        found: dict[str, dict] = {}
        for chunk in _chunked(names):
            marks = ",".join("?" * len(chunk))
            rows = self._read(
                f"SELECT name, payload FROM corpus_fingerprints"
                f" WHERE name IN ({marks})",
                tuple(chunk),
            )
            found.update((row[0], json.loads(row[1])) for row in rows)
        return found

    def fingerprint_names(self) -> list[str]:
        return [
            row[0]
            for row in self._read("SELECT name FROM corpus_fingerprints ORDER BY name")
        ]

    def fingerprint_hashes(self) -> dict[str, str]:
        """name -> content hash for every fingerprint, in one query.

        The staleness probe of the corpus index; json_extract keeps it to
        one small row per schema instead of parsing whole term bags (with
        a Python-side fallback for SQLite builds without the JSON
        functions).
        """
        try:
            rows = self._read(
                "SELECT name, json_extract(payload, '$.hash')"
                " FROM corpus_fingerprints"
            )
            return {row[0]: row[1] or "" for row in rows}
        except sqlite3.OperationalError:  # pragma: no cover - exotic builds
            rows = self._read("SELECT name, payload FROM corpus_fingerprints")
            return {row[0]: json.loads(row[1]).get("hash", "") for row in rows}

    def delete_fingerprint(self, name: str) -> None:
        self._write([
            ("DELETE FROM corpus_fingerprints WHERE name = ?", (name,))
        ])

    # -- request statistics (cache warming) ----------------------------
    def record_requests(
        self, records: Sequence[tuple[str, str, dict, int]]
    ) -> None:
        """Bulk upsert of request-hash counters as ONE transaction.

        The serving tier flushes these in amortised batches off the hot
        path; an existing key's count grows, its endpoint/payload refresh.
        """
        batch = list(records)
        if not batch:
            return
        self._write([
            (
                "INSERT INTO request_stats (key, endpoint, payload, count)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(key) DO UPDATE SET"
                " endpoint = excluded.endpoint, payload = excluded.payload,"
                " count = count + excluded.count",
                (key, endpoint, json.dumps(payload), count),
            )
            for key, endpoint, payload, count in batch
        ])

    def hot_requests(self, limit: int) -> list[tuple[str, str, dict, int]]:
        rows = self._read(
            "SELECT key, endpoint, payload, count FROM request_stats"
            " ORDER BY count DESC, key LIMIT ?",
            (limit,),
        )
        return [
            (row[0], row[1], json.loads(row[2]), row[3]) for row in rows
        ]


class SqliteBackend(_SqliteQueries):
    """The legacy single-connection store: one file, one connection.

    The connection is opened ``check_same_thread=False`` -- that is THIS
    backend's threading decision, declared through
    ``serialize_calls = True``: the one connection may move between
    threads, but never concurrently, because the repository serialises
    every call under its lock.  For per-thread connections and
    concurrent readers, use :class:`PooledSqliteBackend` instead.
    """

    serialize_calls = True

    def __init__(self, path: str):
        self.path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        _ensure_sqlite_schema(self._connection)

    def _read(self, sql: str, params: tuple = ()) -> list[tuple]:
        return self._connection.execute(sql, params).fetchall()

    def _write(self, statements: list[tuple]) -> None:
        # ``with connection`` = one transaction: commit on success,
        # rollback (nothing stored, no clock moved) on any error.
        with self._connection:
            for sql, params in statements:
                self._connection.execute(sql, params)

    def next_sequences(self, count: int) -> int:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        with self._connection:
            self._connection.execute(_BUMP_CLOCK, (count, "sequence"))
            (value,) = self._connection.execute(
                "SELECT value FROM repo_clocks WHERE name = 'sequence'"
            ).fetchone()
        return value - count + 1

    def describe(self) -> dict:
        return {"kind": "sqlite", "path": self.path}

    def close(self) -> None:
        self._connection.close()


@dataclass(frozen=True)
class PoolStats:
    """Counters one :class:`PooledSqliteBackend` connection pool has seen."""

    pool_size: int      # the bound
    created: int        # connections actually opened (lazy, <= pool_size)
    acquired: int       # total check-outs
    waited: int         # check-outs that blocked on an exhausted pool
    in_use: int         # currently checked out
    high_water: int     # max simultaneously checked out

    def to_dict(self) -> dict:
        return {
            "pool_size": self.pool_size,
            "created": self.created,
            "acquired": self.acquired,
            "waited": self.waited,
            "in_use": self.in_use,
            "high_water": self.high_water,
        }


class PooledSqliteBackend(_SqliteQueries):
    """WAL-mode SQLite behind a bounded connection pool.

    The PgBouncer shape one tier down: many callers, a small fixed set of
    real connections.  Connections are created lazily up to ``pool_size``
    and recycled through a LIFO free list (the hottest connection -- warm
    page cache -- is reused first).  A caller that finds the pool
    exhausted blocks until a connection is returned (counted in
    :attr:`PoolStats.waited`; a persistently high count means the pool is
    undersized for the thread count).

    * **WAL journal** -- readers never block the writer and the writer
      never blocks readers, which is what makes one database file
      shareable by N serving processes;
    * **``BEGIN IMMEDIATE`` writes** -- the write lock is taken up front,
      so a busy database surfaces as a bounded wait (``busy_timeout``)
      instead of a mid-transaction ``SQLITE_BUSY`` after work was done;
    * **``synchronous=NORMAL``** -- the standard WAL durability point:
      transactions are atomic across crashes, the last commits may be
      rolled back by an OS-level power failure (not by a process kill).

    Connections are opened ``check_same_thread=False`` because the pool
    hands a connection to whichever thread acquires it -- exclusive use
    is guaranteed by the pool itself (a connection is in exactly one
    caller's hands between acquire and release), not by sqlite3's
    same-thread assertion.
    """

    serialize_calls = False

    def __init__(
        self,
        path: str,
        pool_size: int = 4,
        busy_timeout: float = 30.0,
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.path = path
        self.pool_size = pool_size
        self.busy_timeout = busy_timeout
        self._free: "queue.LifoQueue[sqlite3.Connection]" = queue.LifoQueue()
        self._stats_lock = threading.Lock()
        self._created = 0
        self._acquired = 0
        self._waited = 0
        self._in_use = 0
        self._high_water = 0
        self._closed = False
        # Open the first connection eagerly: it runs the migrations and
        # switches the database to WAL (a persistent, file-level setting)
        # before any concurrent caller touches the store.
        first = self._connect()
        first.execute("PRAGMA journal_mode=WAL")
        _ensure_sqlite_schema(first)
        self._free.put(first)

    def _connect(self) -> sqlite3.Connection:
        # isolation_level=None = autocommit: transaction boundaries are
        # explicit (BEGIN IMMEDIATE ... COMMIT) so reads outside a write
        # never hold a transaction open and WAL checkpoints stay cheap.
        connection = sqlite3.connect(
            self.path,
            timeout=self.busy_timeout,
            check_same_thread=False,
            isolation_level=None,
        )
        connection.execute(f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
        connection.execute("PRAGMA synchronous=NORMAL")
        with self._stats_lock:
            self._created += 1
        return connection

    def _acquire(self) -> sqlite3.Connection:
        if self._closed:
            raise RuntimeError("backend is closed")
        waited = False
        try:
            connection = self._free.get_nowait()
        except queue.Empty:
            with self._stats_lock:
                can_create = self._created < self.pool_size
            if can_create:
                connection = self._connect()
            else:
                waited = True
                connection = self._free.get()
        with self._stats_lock:
            self._acquired += 1
            self._waited += waited
            self._in_use += 1
            self._high_water = max(self._high_water, self._in_use)
        return connection

    def _release(self, connection: sqlite3.Connection) -> None:
        with self._stats_lock:
            self._in_use -= 1
        self._free.put(connection)

    def _read(self, sql: str, params: tuple = ()) -> list[tuple]:
        connection = self._acquire()
        try:
            return connection.execute(sql, params).fetchall()
        finally:
            self._release(connection)

    def _write(self, statements: list[tuple]) -> None:
        connection = self._acquire()
        try:
            connection.execute("BEGIN IMMEDIATE")
            try:
                for sql, params in statements:
                    connection.execute(sql, params)
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        finally:
            self._release(connection)

    def next_sequences(self, count: int) -> int:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        connection = self._acquire()
        try:
            connection.execute("BEGIN IMMEDIATE")
            try:
                connection.execute(_BUMP_CLOCK, (count, "sequence"))
                (value,) = connection.execute(
                    "SELECT value FROM repo_clocks WHERE name = 'sequence'"
                ).fetchone()
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        finally:
            self._release(connection)
        return value - count + 1

    def pool_stats(self) -> PoolStats:
        with self._stats_lock:
            return PoolStats(
                pool_size=self.pool_size,
                created=self._created,
                acquired=self._acquired,
                waited=self._waited,
                in_use=self._in_use,
                high_water=self._high_water,
            )

    def describe(self) -> dict:
        return {
            "kind": "pooled-wal",
            "path": self.path,
            "pool": self.pool_stats().to_dict(),
        }

    def close(self) -> None:
        """Close every pooled connection.

        Callers must have returned their connections (the repository only
        closes at shutdown); connections still checked out are the
        borrower's to close.
        """
        self._closed = True
        while True:
            try:
                self._free.get_nowait().close()
            except queue.Empty:
                return


def open_backend(
    backend: str | StorageBackend | None,
    path: str | None,
    pool_size: int = 4,
    busy_timeout: float = 30.0,
) -> StorageBackend:
    """Resolve a backend spec to an instance.

    ``None`` keeps the historical behaviour: SQLite when a path is given,
    memory otherwise.  Strings name a backend explicitly (``"memory"``,
    ``"sqlite"``, ``"pooled"``); an instance passes through untouched.
    """
    if backend is None:
        backend = "sqlite" if path is not None else "memory"
    if not isinstance(backend, str):
        return backend
    if backend == "memory":
        if path is not None:
            raise ValueError("the memory backend takes no path")
        return InMemoryBackend()
    if path is None:
        raise ValueError(f"the {backend!r} backend needs a database path")
    if backend == "sqlite":
        return SqliteBackend(path)
    if backend == "pooled":
        return PooledSqliteBackend(path, pool_size=pool_size, busy_timeout=busy_timeout)
    raise ValueError(
        f"unknown backend {backend!r} (expected 'memory', 'sqlite', or 'pooled')"
    )
