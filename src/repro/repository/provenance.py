"""Match provenance: who said X matches Y, and should you trust them?

Section 5: "A related research topic is managing matching provenance --
i.e., who said that X is the same as Y, and should I trust that assertion in
my application?"

Every stored match carries a :class:`ProvenanceRecord`; a :class:`TrustPolicy`
decides, per consuming context, whether the assertion is usable.  Timestamps
are logical sequence numbers assigned by the repository, keeping the whole
system deterministic and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["AssertionMethod", "ProvenanceRecord", "TrustPolicy"]


class AssertionMethod(Enum):
    """How a correspondence came to be asserted."""

    AUTOMATIC = "automatic"        # straight from a match engine
    HUMAN_VALIDATED = "human"      # reviewed by an integration engineer
    IMPORTED = "imported"          # loaded from an external artifact
    COMPOSED = "composed"          # derived by transitive reuse (A->B->C)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ProvenanceRecord:
    """The provenance of one match assertion."""

    asserted_by: str
    method: AssertionMethod
    confidence: float
    sequence: int = 0                      # logical time, assigned by the store
    context: str = "general"               # the context the match was made for
    note: str = ""

    def __post_init__(self) -> None:
        if not self.asserted_by:
            raise ValueError("asserted_by must be non-empty")
        if not -1.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in [-1, 1], got {self.confidence}"
            )
        if self.sequence < 0:
            raise ValueError(f"sequence must be >= 0, got {self.sequence}")

    def to_dict(self) -> dict:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "asserted_by": self.asserted_by,
            "method": self.method.value,
            "confidence": self.confidence,
            "sequence": self.sequence,
            "context": self.context,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProvenanceRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            asserted_by=payload["asserted_by"],
            method=AssertionMethod(payload.get("method", "automatic")),
            confidence=payload.get("confidence", 0.0),
            sequence=payload.get("sequence", 0),
            context=payload.get("context", "general"),
            note=payload.get("note", ""),
        )


@dataclass(frozen=True)
class TrustPolicy:
    """Context-dependent trust: "a match that supports search may not have
    sufficient precision to support a business intelligence application."

    ``min_confidence`` gates by score; ``require_human`` restricts to
    human-validated assertions; ``trusted_asserters`` (when non-empty)
    whitelists sources; ``allow_composed`` admits transitively derived
    matches.
    """

    min_confidence: float = 0.0
    require_human: bool = False
    trusted_asserters: frozenset[str] = frozenset()
    allow_composed: bool = True

    def trusts(self, record: ProvenanceRecord) -> bool:
        if record.confidence < self.min_confidence:
            return False
        if self.require_human and record.method is not AssertionMethod.HUMAN_VALIDATED:
            return False
        if self.trusted_asserters and record.asserted_by not in self.trusted_asserters:
            return False
        if not self.allow_composed and record.method is AssertionMethod.COMPOSED:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-compatible dict; inverse of :meth:`from_dict`.

        Part of the serving wire protocol: requests carrying a trust gate
        (:class:`~repro.service.requests.NetworkMatchRequest` and the reuse
        policies nested in corpus requests) must round-trip through JSON.
        """
        return {
            "min_confidence": self.min_confidence,
            "require_human": self.require_human,
            "trusted_asserters": sorted(self.trusted_asserters),
            "allow_composed": self.allow_composed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrustPolicy":
        """Rebuild a policy from :meth:`to_dict` output (defaults fill gaps)."""
        return cls(
            min_confidence=payload.get("min_confidence", 0.0),
            require_human=payload.get("require_human", False),
            trusted_asserters=frozenset(payload.get("trusted_asserters", ())),
            allow_composed=payload.get("allow_composed", True),
        )

    @classmethod
    def for_search(cls) -> "TrustPolicy":
        """Permissive: recall matters more than precision for discovery."""
        return cls(min_confidence=0.1)

    @classmethod
    def for_business_intelligence(cls) -> "TrustPolicy":
        """Strict: only high-confidence, human-validated direct assertions.

        The 0.25 gate is calibrated to the conviction-linear score scale
        (signed-square votes compress magnitudes; 0.25 corresponds to a
        decisive ensemble agreement).
        """
        return cls(min_confidence=0.25, require_human=True, allow_composed=False)
