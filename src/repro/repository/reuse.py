"""Match reuse: prior assertions as a head start for new match efforts.

Section 5 (after [7, 18]): "other developers should be able to benefit from
previous matches."  Two mechanisms realise that here:

* **Transitive composition** (:func:`compose_matches`): if the repository
  knows A.x = B.y (0.8) and B.y = C.z (0.7), a new A-to-C effort starts
  from the composed candidate A.x = C.z.  Composition takes the *minimum*
  of the leg scores (a chain is only as strong as its weakest assertion)
  and records :class:`~repro.repository.provenance.AssertionMethod.COMPOSED`
  provenance.  Stored direction does not matter: a mapping stored as
  B -> A traverses as a flipped leg.  Since the mapping network landed
  (:mod:`repro.network`), this function is the ``max_hops=1`` case of the
  general path composer -- pass ``max_hops`` > 1 for multi-pivot chains,
  or use :class:`~repro.network.graph.MappingGraph` to cache the
  adjacency across queries.
* **Scored reuse** (:class:`ReusePolicy`): when a pair is matched *again*
  -- the routine case once ``MatchService.corpus_match`` sweeps a query
  schema over the whole registry -- prior assertions are folded into the
  fresh engine output.  A fresh correspondence that a prior assertion
  confirms is *boosted* (method-weighted: a human validation is worth more
  than an old automatic run, which is worth more than a composed chain),
  and a prior pair the fresh run missed is *seeded* back in as a
  candidate.  Every boosted or seeded correspondence carries the prior's
  provenance in its note (who asserted it, how, at what score), so a
  reviewer can always see why a score moved.

The reuse semantics, default weights, and a worked example live in
``docs/repository.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.match.correspondence import Correspondence, MatchStatus
from repro.repository.provenance import AssertionMethod, TrustPolicy
from repro.repository.store import MetadataRepository, StoredMatch

__all__ = [
    "compose_matches",
    "reuse_candidates",
    "PriorAssertion",
    "ReusePolicy",
    "ReuseOutcome",
]


def compose_matches(
    repository: MetadataRepository,
    source_schema: str,
    target_schema: str,
    policy: TrustPolicy | None = None,
    pool: list[StoredMatch] | None = None,
    max_hops: int = 1,
    hop_decay: float = 1.0,
    annotate: bool = False,
) -> list[Correspondence]:
    """Candidates for source->target composed through pivot schemata.

    The default ``max_hops=1`` is the classic single-pivot composition:
    for every pivot P with stored matches source<->P and P<->target
    sharing a pivot element (either stored orientation), emit the composed
    correspondence with min leg score; duplicate compositions keep the
    strongest score.  ``max_hops`` > 1 walks longer acyclic pivot chains
    with ``hop_decay`` applied once per pivot beyond the first (see
    :func:`repro.network.graph.compose_stored`, which this delegates to).
    ``pool`` optionally supplies prefetched stored matches instead of a
    store scan; ``annotate`` records the winning pivot path in each
    correspondence's note.
    """
    from repro.network.graph import compose_stored

    matches = pool if pool is not None else repository.matches()
    return compose_stored(
        matches,
        source_schema,
        target_schema,
        max_hops=max_hops,
        hop_decay=hop_decay,
        policy=policy,
        annotate=annotate,
    )


def reuse_candidates(
    repository: MetadataRepository,
    source_schema: str,
    target_schema: str,
    asserted_by: str = "composer",
    policy: TrustPolicy | None = None,
    store: bool = False,
) -> list[Correspondence]:
    """Compose candidates and optionally store them with COMPOSED provenance."""
    candidates = compose_matches(repository, source_schema, target_schema, policy)
    if store:
        repository.store_matches(
            source_schema,
            target_schema,
            candidates,
            asserted_by=asserted_by,
            method=AssertionMethod.COMPOSED,
        )
    return candidates


# ----------------------------------------------------------------------
# Scored reuse: prior assertions folded into fresh match output
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PriorAssertion:
    """The strongest usable prior for one element pair, with its provenance."""

    source_id: str
    target_id: str
    score: float                   # the prior correspondence's raw score
    weighted_score: float          # score x the policy's method weight
    method: AssertionMethod
    asserted_by: str

    @property
    def pair(self) -> tuple[str, str]:
        return (self.source_id, self.target_id)

    def describe(self) -> str:
        """The provenance clause recorded on boosted/seeded notes."""
        return (
            f"prior {self.score:+.2f} by {self.asserted_by} ({self.method.value})"
        )


@dataclass(frozen=True)
class ReuseOutcome:
    """What :meth:`ReusePolicy.apply` did to one pair's correspondences."""

    correspondences: tuple[Correspondence, ...]
    n_boosted: int
    n_seeded: int
    n_priors: int


@dataclass(frozen=True)
class ReusePolicy:
    """How much prior assertions are worth when a pair is matched again.

    Each assertion method carries a weight in [0, 1] expressing how much
    of the prior's score survives reuse: human validations transfer almost
    fully, automatic engine output partially, composed chains least.  A
    fresh correspondence confirmed by a prior gains ``boost x weighted
    prior score``; a prior pair the fresh run missed is seeded back at
    ``seed_scale x weighted prior score`` when that product clears
    ``seed_floor``.  A pair with any direct REJECTED assertion is vetoed:
    no prior for it boosts or seeds, however strong -- an engineer's
    "spurious" verdict beats every older assertion.

    ``trust`` optionally gates which stored matches count as priors at
    all (e.g. :meth:`TrustPolicy.for_search` while exploring,
    :meth:`TrustPolicy.for_business_intelligence` when precision rules).
    """

    human_weight: float = 1.0
    automatic_weight: float = 0.5
    imported_weight: float = 0.7
    composed_weight: float = 0.35
    boost: float = 0.3
    seed_scale: float = 0.8
    seed_floor: float = 0.2
    include_composed: bool = True
    trust: TrustPolicy | None = None

    def __post_init__(self) -> None:
        for attribute in (
            "human_weight",
            "automatic_weight",
            "imported_weight",
            "composed_weight",
            "boost",
            "seed_scale",
        ):
            value = getattr(self, attribute)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attribute} must be in [0, 1], got {value}")
        if not 0.0 <= self.seed_floor <= 1.0:
            raise ValueError(f"seed_floor must be in [0, 1], got {self.seed_floor}")

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict; inverse of :meth:`from_dict`.

        Part of the serving wire protocol: corpus and network requests
        carry their reuse policy over HTTP, so the policy itself must be
        data (the nested trust gate serialises through
        :meth:`TrustPolicy.to_dict`).
        """
        return {
            "human_weight": self.human_weight,
            "automatic_weight": self.automatic_weight,
            "imported_weight": self.imported_weight,
            "composed_weight": self.composed_weight,
            "boost": self.boost,
            "seed_scale": self.seed_scale,
            "seed_floor": self.seed_floor,
            "include_composed": self.include_composed,
            "trust": self.trust.to_dict() if self.trust is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReusePolicy":
        """Rebuild a policy from :meth:`to_dict` output (defaults fill gaps)."""
        trust = payload.get("trust")
        return cls(
            human_weight=payload.get("human_weight", 1.0),
            automatic_weight=payload.get("automatic_weight", 0.5),
            imported_weight=payload.get("imported_weight", 0.7),
            composed_weight=payload.get("composed_weight", 0.35),
            boost=payload.get("boost", 0.3),
            seed_scale=payload.get("seed_scale", 0.8),
            seed_floor=payload.get("seed_floor", 0.2),
            include_composed=payload.get("include_composed", True),
            trust=TrustPolicy.from_dict(trust) if trust is not None else None,
        )

    def weight_for(self, method: AssertionMethod) -> float:
        if method is AssertionMethod.HUMAN_VALIDATED:
            return self.human_weight
        if method is AssertionMethod.IMPORTED:
            return self.imported_weight
        if method is AssertionMethod.COMPOSED:
            return self.composed_weight
        return self.automatic_weight

    # -- gathering priors -----------------------------------------------
    def priors(
        self,
        repository: MetadataRepository,
        source_schema: str,
        target_schema: str,
        pool: list[StoredMatch] | None = None,
        composed: Sequence[Correspondence] | None = None,
    ) -> dict[tuple[str, str], PriorAssertion]:
        """The strongest usable prior per element pair, both directions.

        Direct assertions (either orientation of the schema pair) are
        gathered first; when :attr:`include_composed` is set, transitive
        compositions through pivot schemata join at composed weight.  Per
        pair, the prior with the highest *weighted* score wins -- except
        that a pair with any direct REJECTED assertion is vetoed outright
        (an engineer's "spurious" verdict beats every older prior).

        ``pool`` optionally supplies the prefetched full match list so a
        corpus-match sweep scans the store once, not once per candidate.
        ``composed`` optionally supplies already-composed candidates (the
        mapping network's multi-hop routes) in place of the single-pivot
        composition this method would otherwise derive itself; they join
        at composed weight and stay subject to the rejection veto.
        """
        candidates: list[PriorAssertion] = []
        rejected: set[tuple[str, str]] = set()
        direct: list[tuple[StoredMatch, bool]] = []
        if pool is not None:
            direct_pool = pool
        elif composed is not None or not self.include_composed:
            # No pool and no composition to derive: the indexed pair query
            # beats a full store scan.
            direct_pool = repository.matches_between(source_schema, target_schema)
        else:
            pool = repository.matches()  # one scan, reused for composition
            direct_pool = pool
        for match in direct_pool:
            if (match.source_schema, match.target_schema) == (
                source_schema,
                target_schema,
            ):
                direct.append((match, False))
            elif (match.source_schema, match.target_schema) == (
                target_schema,
                source_schema,
            ):
                direct.append((match, True))
        for match, flipped in direct:
            correspondence = match.correspondence
            source_id, target_id = (
                (correspondence.target_id, correspondence.source_id)
                if flipped
                else (correspondence.source_id, correspondence.target_id)
            )
            if correspondence.status is MatchStatus.REJECTED:
                rejected.add((source_id, target_id))
                continue
            if self.trust is not None and not self.trust.trusts(match.provenance):
                continue
            weight = self.weight_for(match.provenance.method)
            candidates.append(
                PriorAssertion(
                    source_id=source_id,
                    target_id=target_id,
                    score=correspondence.score,
                    weighted_score=weight * correspondence.score,
                    method=match.provenance.method,
                    asserted_by=match.provenance.asserted_by,
                )
            )
        if composed is None and self.include_composed:
            composed = compose_matches(
                repository, source_schema, target_schema, self.trust, pool=pool
            )
        for derived in composed or ():
            candidates.append(
                PriorAssertion(
                    source_id=derived.source_id,
                    target_id=derived.target_id,
                    score=derived.score,
                    weighted_score=self.composed_weight * derived.score,
                    method=AssertionMethod.COMPOSED,
                    asserted_by=derived.asserted_by,
                )
            )
        best: dict[tuple[str, str], PriorAssertion] = {}
        for prior in candidates:
            if prior.pair in rejected:
                continue
            incumbent = best.get(prior.pair)
            if incumbent is None or prior.weighted_score > incumbent.weighted_score:
                best[prior.pair] = prior
        return best

    # -- applying priors ------------------------------------------------
    def apply(
        self,
        fresh: Sequence[Correspondence],
        priors: dict[tuple[str, str], PriorAssertion],
    ) -> ReuseOutcome:
        """Fold priors into fresh correspondences (boost, then seed).

        Returns the adjusted list sorted by descending score.  Boosted
        and seeded correspondences record the prior's provenance in their
        ``note``; untouched correspondences pass through unchanged.
        """
        adjusted: list[Correspondence] = []
        seen: set[tuple[str, str]] = set()
        n_boosted = 0
        for correspondence in fresh:
            seen.add(correspondence.pair)
            prior = priors.get(correspondence.pair)
            if prior is None or prior.weighted_score <= 0.0:
                adjusted.append(correspondence)
                continue
            boosted_score = min(
                1.0, correspondence.score + self.boost * prior.weighted_score
            )
            note = f"reuse-boosted: {prior.describe()}"
            if correspondence.note:
                note = f"{correspondence.note}; {note}"
            adjusted.append(
                Correspondence(
                    source_id=correspondence.source_id,
                    target_id=correspondence.target_id,
                    score=boosted_score,
                    status=correspondence.status,
                    annotation=correspondence.annotation,
                    asserted_by=correspondence.asserted_by,
                    note=note,
                )
            )
            n_boosted += 1
        n_seeded = 0
        for pair, prior in priors.items():
            if pair in seen:
                continue
            seeded_score = self.seed_scale * prior.weighted_score
            if seeded_score < self.seed_floor:
                continue
            adjusted.append(
                Correspondence(
                    source_id=prior.source_id,
                    target_id=prior.target_id,
                    score=min(1.0, seeded_score),
                    status=MatchStatus.CANDIDATE,
                    asserted_by="reuse",
                    note=f"reuse-seeded: {prior.describe()}",
                )
            )
            n_seeded += 1
        adjusted.sort(key=lambda c: (-c.score, c.source_id, c.target_id))
        return ReuseOutcome(
            correspondences=tuple(adjusted),
            n_boosted=n_boosted,
            n_seeded=n_seeded,
            n_priors=len(priors),
        )

    def rematch(
        self,
        repository: MetadataRepository,
        source_schema: str,
        target_schema: str,
        fresh: Iterable[Correspondence],
        pool: list[StoredMatch] | None = None,
    ) -> ReuseOutcome:
        """Gather priors for a registered pair and apply them in one step."""
        priors = self.priors(repository, source_schema, target_schema, pool=pool)
        return self.apply(list(fresh), priors)
