"""Transitive match reuse: composing stored matches into new candidates.

Section 5 (after [7, 18]): "other developers should be able to benefit from
previous matches."  If the repository knows A.x = B.y (0.8) and B.y = C.z
(0.7), a new A-to-C matching effort should start from the composed candidate
A.x = C.z rather than from nothing.  Composition takes the *minimum* of the
leg scores (a chain is only as strong as its weakest assertion) and records
:class:`~repro.repository.provenance.AssertionMethod.COMPOSED` provenance.
"""

from __future__ import annotations

from repro.match.correspondence import Correspondence, MatchStatus
from repro.repository.provenance import AssertionMethod, TrustPolicy
from repro.repository.store import MetadataRepository, StoredMatch

__all__ = ["compose_matches", "reuse_candidates"]


def _directed_legs(
    repository: MetadataRepository, schema_name: str, policy: TrustPolicy | None
) -> list[tuple[str, str, str, float]]:
    """Matches touching ``schema_name`` as (other_schema, own_el, other_el, score)."""
    legs: list[tuple[str, str, str, float]] = []
    for match in repository.matches_touching(schema_name):
        if policy is not None and not policy.trusts(match.provenance):
            continue
        correspondence = match.correspondence
        if correspondence.status is MatchStatus.REJECTED:
            continue
        if match.source_schema == schema_name:
            legs.append(
                (
                    match.target_schema,
                    correspondence.source_id,
                    correspondence.target_id,
                    correspondence.score,
                )
            )
        else:
            legs.append(
                (
                    match.source_schema,
                    correspondence.target_id,
                    correspondence.source_id,
                    correspondence.score,
                )
            )
    return legs


def compose_matches(
    repository: MetadataRepository,
    source_schema: str,
    target_schema: str,
    policy: TrustPolicy | None = None,
) -> list[Correspondence]:
    """Candidates for source->target composed through any pivot schema.

    For every pivot P with stored matches source<->P and P<->target sharing
    a pivot element, emit the composed correspondence with min leg score.
    Duplicate compositions keep the strongest score.
    """
    source_legs = _directed_legs(repository, source_schema, policy)
    target_legs = _directed_legs(repository, target_schema, policy)

    # pivot (schema, element) -> list of (source element, score)
    via: dict[tuple[str, str], list[tuple[str, float]]] = {}
    for pivot_schema, own_element, pivot_element, score in source_legs:
        if pivot_schema == target_schema:
            continue
        via.setdefault((pivot_schema, pivot_element), []).append((own_element, score))

    best: dict[tuple[str, str], float] = {}
    for pivot_schema, own_element, pivot_element, score in target_legs:
        if pivot_schema == source_schema:
            continue
        for source_element, source_score in via.get((pivot_schema, pivot_element), []):
            pair = (source_element, own_element)
            composed = min(source_score, score)
            if composed > best.get(pair, float("-inf")):
                best[pair] = composed

    return [
        Correspondence(
            source_id=source_element,
            target_id=target_element,
            score=score,
            status=MatchStatus.CANDIDATE,
            asserted_by="composer",
        )
        for (source_element, target_element), score in sorted(
            best.items(), key=lambda item: (-item[1], item[0])
        )
    ]


def reuse_candidates(
    repository: MetadataRepository,
    source_schema: str,
    target_schema: str,
    asserted_by: str = "composer",
    policy: TrustPolicy | None = None,
    store: bool = False,
) -> list[Correspondence]:
    """Compose candidates and optionally store them with COMPOSED provenance."""
    candidates = compose_matches(repository, source_schema, target_schema, policy)
    if store:
        repository.store_matches(
            source_schema,
            target_schema,
            candidates,
            asserted_by=asserted_by,
            method=AssertionMethod.COMPOSED,
        )
    return candidates
