"""The enterprise metadata repository: schemata and matches as knowledge.

Section 5: "Large enterprises can have hundreds to thousands of schemata,
illustrating the need to manage schemata as data themselves ... Several
commercial repository tools are available, but these ignore the importance
of schema matches as knowledge artifacts."

:class:`MetadataRepository` stores both: registered schemata and asserted
matches with full provenance, filterable by trust policy.  Storage is
pluggable behind the :class:`~repro.repository.backends.StorageBackend`
protocol; three backends ship (see ``repro/repository/backends.py``):
in-memory (default), single-connection SQLite (persistent, stdlib
``sqlite3``), and pooled WAL-mode SQLite (persistent AND shareable by
many threads and processes at once -- what ``repro serve --workers``
opens in every worker).

Beyond schemata and matches, the backends persist *corpus fingerprints* --
per-schema term statistics that :class:`~repro.corpus.index.CorpusIndex`
derives once and reloads on reopen, so indexing a registered corpus does
not re-profile every schema (see ``docs/repository.md``).  The repository
also exposes two monotone staleness clocks, owned by the backend:
:attr:`MetadataRepository.generation` (bumped on register/unregister --
the corpus index's rebuild trigger) and
:attr:`MetadataRepository.match_generation` (bumped whenever stored
matches change -- what the :class:`~repro.network.graph.MappingGraph`
adjacency cache and the serving tier's response cache key on).  On the
SQLite backends the clocks are persisted and move in the same transaction
as the write that bumps them, so they are exact across reopens and across
processes.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass

from repro.match.correspondence import Correspondence
from repro.repository.backends import StorageBackend, open_backend
from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.schema.schema import Schema
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.telemetry import span

__all__ = ["StoredMatch", "MetadataRepository"]


@dataclass(frozen=True)
class StoredMatch:
    """One match assertion between elements of two registered schemata."""

    source_schema: str
    target_schema: str
    correspondence: Correspondence
    provenance: ProvenanceRecord


class MetadataRepository:
    """Schemata + match knowledge with provenance and trust filtering.

    One repository may be shared across threads (the serving tier binds a
    single instance under a ``ThreadingHTTPServer``).  The locking
    discipline follows the backend's declaration: a backend with
    ``serialize_calls = True`` (memory dicts; the legacy single SQLite
    connection, opened cross-thread-shareable for exactly this purpose)
    has every call serialised under one internal lock, while a
    ``serialize_calls = False`` backend (the pooled WAL store, which
    hands each caller its own connection) runs reads concurrently and
    only composite read-modify-write operations -- register's no-op
    check, the registered-name guards of ``store_match`` -- serialise.

    Parameters
    ----------
    path:
        In-memory by default; pass a file path for SQLite persistence.
    backend:
        ``None`` (historical default: SQLite when ``path`` is given,
        memory otherwise), a backend name (``"memory"``, ``"sqlite"``,
        ``"pooled"``), or a ready :class:`StorageBackend` instance.
    pool_size / busy_timeout:
        Pooled-backend tuning (connections per process; seconds a write
        waits for a busy database) -- ignored by the other backends.
    """

    def __init__(
        self,
        path: str | None = None,
        backend: str | StorageBackend | None = None,
        pool_size: int = 4,
        busy_timeout: float = 30.0,
    ):
        self._backend = open_backend(
            backend, path, pool_size=pool_size, busy_timeout=busy_timeout
        )
        self._lock = threading.RLock()
        #: Write listeners: called with the post-write ``(generation,
        #: match_generation)`` after every mutation, OUTSIDE the
        #: repository lock.  The serving tier's cache nudge (see
        #: ``repro.server.distcache``) hangs here -- listeners are a
        #: best-effort broadcast, never a correctness dependency, so a
        #: listener that raises is swallowed.
        self._write_listeners: list = []
        #: Plain reads go through this guard: the real lock for backends
        #: that demand serialised calls, a no-op for backends that handle
        #: their own concurrency (nullcontext is reentrant-safe: it holds
        #: no state).
        self._read_guard = (
            self._lock if self._backend.serialize_calls else nullcontext()
        )

    @property
    def backend(self) -> StorageBackend:
        """The live storage backend (pool stats live on the pooled one)."""
        return self._backend

    def describe_backend(self) -> dict:
        """Operational identity of the backend (kind, path, pool stats)."""
        with self._read_guard:
            return self._backend.describe()

    # ------------------------------------------------------------------
    # Staleness clocks (owned by the backend; see backends.py)
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone registration clock: bumped on register/unregister.

        Derived structures (the corpus index) compare the generation they
        were built at against the current one to detect staleness without
        diffing the whole registry on every query.  The clock is owned by
        the backend: in-memory it is a per-instance counter; on the
        SQLite backends it is persisted and bumped in the same
        transaction as the write, so it survives reopen and is visible
        to every process sharing the database file.
        """
        return self._backend_clocks()[0]

    @property
    def match_generation(self) -> int:
        """Monotone match-knowledge clock: bumped whenever stored matches
        change (store_match / store_matches, and unregister's cascade).

        The :class:`~repro.network.graph.MappingGraph` adjacency cache
        and the serving tier's :class:`~repro.server.cache.ResponseCache`
        compare this clock (together with :attr:`generation`) to decide
        staleness.  Persistence follows :attr:`generation`: in-memory it
        is per-instance; on SQLite it is transactional with the write and
        shared across processes.
        """
        return self._backend_clocks()[1]

    def clocks(self) -> tuple[int, int]:
        """The ``(generation, match_generation)`` pair in ONE backend call.

        Cache-invalidation checks (the mapping graph, the response cache)
        need both clocks; this reads them together instead of paying two
        backend round-trips per check.
        """
        return self._backend_clocks()

    def _backend_clocks(self) -> tuple[int, int]:
        with self._read_guard:
            return self._backend.clocks()

    # ------------------------------------------------------------------
    # Write broadcast (the distributed-cache nudge; see server/distcache)
    # ------------------------------------------------------------------
    def add_write_listener(self, listener) -> None:
        """Call ``listener(clocks)`` after every mutation commits.

        ``clocks`` is the post-write ``(generation, match_generation)``
        pair.  Listeners run outside the repository lock and exceptions
        are swallowed: the broadcast is a latency optimisation (it lets a
        cache tier evict stale entries *proactively*); the lazy per-lookup
        clock check remains the correctness backstop when a nudge is lost.
        """
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener) -> None:
        """Detach a listener previously added (missing is a no-op)."""
        try:
            self._write_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_write(self) -> None:
        if not self._write_listeners:
            return
        clocks = self._backend_clocks()
        for listener in list(self._write_listeners):
            try:
                listener(clocks)
            except Exception:
                # Best-effort by contract: a dead cache tier must never
                # fail (or slow) the write that tried to nudge it.
                pass

    # ------------------------------------------------------------------
    # Schemata
    # ------------------------------------------------------------------
    def register(self, schema: Schema, name: str | None = None) -> str:
        """Store a schema (serialised); returns the registered name.

        Re-registering an *identical* schema under its existing name is a
        no-op: the stored payload, the derived corpus fingerprint, and the
        generation clock all stay put, so workflows that re-register their
        whole corpus on every run (the ``corpus-match --db`` CLI) keep the
        persisted index warm.  A *changed* payload replaces the schema,
        drops the stale fingerprint, and bumps the generation.
        """
        schema_name = name if name is not None else schema.name
        payload = schema_to_dict(schema)
        with span("repository.write", op="register"):
            with self._lock:
                if self._backend.get_schema(schema_name) == payload:
                    return schema_name
                self._backend.put_schema(schema_name, payload)
                self._backend.delete_fingerprint(schema_name)
            self._notify_write()
        return schema_name

    def bulk_register_schemas(
        self,
        schemata,
        chunk_size: int = 256,
        fingerprints: dict[str, dict] | None = None,
    ) -> int:
        """Register many schemata in chunked single-transaction writes.

        The bulk-ingestion path (``repro ingest``; see
        ``docs/repository.md``): where :meth:`register` pays two backend
        write transactions per schema (the payload upsert and the
        stale-fingerprint drop), this writes one
        :meth:`~repro.repository.backends.StorageBackend.put_schemas`
        transaction per ``chunk_size`` schemata -- on SQLite one ``BEGIN
        IMMEDIATE``/``COMMIT`` per chunk, the same shape as
        :meth:`store_matches`' one-commit batch.

        ``schemata`` is an iterable of :class:`Schema` objects and/or
        ``(name, payload_dict)`` pairs (the serialised form, as ingest
        loaders produce).  Per-schema semantics match :meth:`register`
        exactly: an identical already-registered payload is skipped (no
        write, no clock movement, fingerprint kept warm); a changed or
        new payload is upserted with its fingerprint dropped -- unless
        ``fingerprints`` carries a precomputed fingerprint for the name,
        which is then persisted in the same transaction (what lets a bulk
        ingest hand the corpus index a fully warm store).  Duplicate
        names within one call collapse to the last occurrence.  Returns
        the number of schemata actually written.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        fingerprints = fingerprints or {}
        pairs: dict[str, dict] = {}
        for item in schemata:
            if isinstance(item, Schema):
                pairs[item.name] = schema_to_dict(item)
            else:
                name, payload = item
                pairs[name] = (
                    schema_to_dict(payload) if isinstance(payload, Schema) else payload
                )
        ordered = list(pairs.items())
        written = 0
        with self._lock:
            for start in range(0, len(ordered), chunk_size):
                chunk = ordered[start : start + chunk_size]
                existing = self._backend.get_schemas([name for name, _ in chunk])
                payloads = {
                    name: payload
                    for name, payload in chunk
                    if existing.get(name) != payload
                }
                if not payloads:
                    continue
                self._backend.put_schemas(
                    payloads,
                    {
                        name: fingerprints[name]
                        for name in payloads
                        if name in fingerprints
                    },
                )
                written += len(payloads)
        if written:
            self._notify_write()
        return written

    def schema(self, name: str) -> Schema:
        with span("repository.read", op="schema"):
            with self._read_guard:
                payload = self._backend.get_schema(name)
            if payload is None:
                raise KeyError(f"schema {name!r} is not registered")
            return schema_from_dict(payload)

    def schema_names(self) -> list[str]:
        with self._read_guard:
            return self._backend.schema_names()

    def schema_payload(self, name: str) -> dict:
        """The stored serialised form, without rebuilding the Schema.

        The corpus index hashes this payload to validate fingerprints; it
        is cheaper than :meth:`schema` because no object graph is rebuilt.
        """
        with span("repository.read", op="schema_payload"):
            with self._read_guard:
                payload = self._backend.get_schema(name)
            if payload is None:
                raise KeyError(f"schema {name!r} is not registered")
            return payload

    def schema_payloads(self, names) -> dict[str, dict]:
        """Bulk :meth:`schema_payload`: present names map to payloads,
        missing names are absent (a mid-scan unregister is the caller's
        race to tolerate, not an error)."""
        with self._read_guard:
            return self._backend.get_schemas(list(names))

    def unregister(self, name: str) -> None:
        """Remove a schema, its fingerprint, and every match touching it.

        The backend bumps BOTH clocks with the cascade (derived match
        structures must notice even when no match survived the delete).
        """
        with span("repository.write", op="unregister"):
            with self._lock:
                self._backend.delete_schema(name)
            self._notify_write()

    def __contains__(self, name: str) -> bool:
        with self._read_guard:
            return self._backend.get_schema(name) is not None

    def __len__(self) -> int:
        with self._read_guard:
            return len(self._backend.schema_names())

    # ------------------------------------------------------------------
    # Corpus fingerprints (derived data owned by repro.corpus.CorpusIndex)
    # ------------------------------------------------------------------
    def put_fingerprint(self, name: str, payload: dict) -> None:
        """Persist one schema's derived term statistics (JSON payload)."""
        with self._read_guard:
            self._backend.put_fingerprint(name, payload)

    def put_fingerprints(self, payloads: dict[str, dict]) -> None:
        """Bulk variant of :meth:`put_fingerprint`; one SQLite transaction."""
        with self._read_guard:
            self._backend.put_fingerprints(payloads)

    def get_fingerprint(self, name: str) -> dict | None:
        with self._read_guard:
            return self._backend.get_fingerprint(name)

    def get_fingerprints(self, names) -> dict[str, dict]:
        """Bulk :meth:`get_fingerprint`; missing names are simply absent."""
        with self._read_guard:
            return self._backend.get_fingerprints(list(names))

    def fingerprint_names(self) -> list[str]:
        with self._read_guard:
            return self._backend.fingerprint_names()

    def fingerprint_hashes(self) -> dict[str, str]:
        """name -> fingerprint content hash (the index staleness probe)."""
        with self._read_guard:
            return self._backend.fingerprint_hashes()

    # ------------------------------------------------------------------
    # Request statistics (derived observability data; no clock movement)
    # ------------------------------------------------------------------
    def record_requests(self, records) -> None:
        """Persist per-request-hash hit counters (the cache-warming source).

        ``records`` is an iterable of ``(key, endpoint, payload, count)``;
        an existing key's count grows by ``count``.  Like fingerprints,
        request stats bump no clock -- recording a request can never
        invalidate a cache.
        """
        with self._read_guard:
            self._backend.record_requests(list(records))

    def hot_requests(self, limit: int = 64) -> list[tuple[str, str, dict, int]]:
        """The ``limit`` hottest recorded requests, count-descending.

        What a starting replica replays through its service to warm its
        cache tier (see ``repro.server.distcache.warm_cache``).
        """
        with self._read_guard:
            return self._backend.hot_requests(limit)

    # ------------------------------------------------------------------
    # Matches as knowledge artifacts
    # ------------------------------------------------------------------
    def store_match(
        self,
        source_schema: str,
        target_schema: str,
        correspondence: Correspondence,
        asserted_by: str,
        method: AssertionMethod = AssertionMethod.AUTOMATIC,
        context: str = "general",
        note: str = "",
    ) -> StoredMatch:
        """Assert one correspondence with provenance (sequence = logical time)."""
        with self._lock:
            for name in (source_schema, target_schema):
                if name not in self:
                    raise KeyError(f"schema {name!r} is not registered")
            sequence = self._backend.next_sequences(1)
            stored = StoredMatch(
                source_schema=source_schema,
                target_schema=target_schema,
                correspondence=correspondence,
                provenance=ProvenanceRecord(
                    asserted_by=asserted_by,
                    method=method,
                    confidence=correspondence.score,
                    sequence=sequence,
                    context=context,
                    note=note,
                ),
            )
            self._backend.add_matches([stored])
        self._notify_write()
        return stored

    def store_matches(
        self,
        source_schema: str,
        target_schema: str,
        correspondences,
        asserted_by: str,
        method: AssertionMethod = AssertionMethod.AUTOMATIC,
        context: str = "general",
    ) -> int:
        """Bulk variant of :meth:`store_match`; returns the count stored.

        The whole batch is written as ONE backend transaction (a single
        commit on SQLite): either every correspondence is stored -- and
        the match-generation clock moves with it -- or none is.  Sequence
        numbers are reserved atomically up front; a batch that fails to
        write leaves a gap in the sequence, which is harmless (sequence
        is logical time, only monotonicity matters).  See
        ``docs/repository.md`` for the guarantee.
        """
        batch = list(correspondences)
        with span("repository.write", op="store_matches"), self._lock:
            for name in (source_schema, target_schema):
                if name not in self:
                    raise KeyError(f"schema {name!r} is not registered")
            if not batch:
                return 0
            first_sequence = self._backend.next_sequences(len(batch))
            stored = [
                StoredMatch(
                    source_schema=source_schema,
                    target_schema=target_schema,
                    correspondence=correspondence,
                    provenance=ProvenanceRecord(
                        asserted_by=asserted_by,
                        method=method,
                        confidence=correspondence.score,
                        sequence=first_sequence + offset,
                        context=context,
                        note="",
                    ),
                )
                for offset, correspondence in enumerate(batch)
            ]
            self._backend.add_matches(stored)
        self._notify_write()
        return len(stored)

    def matches(
        self,
        source_schema: str | None = None,
        target_schema: str | None = None,
        policy: TrustPolicy | None = None,
    ) -> list[StoredMatch]:
        """Query stored matches, optionally trust-filtered."""
        with span("repository.read", op="matches"), self._read_guard:
            found = self._backend.all_matches()
        if source_schema is not None:
            found = [m for m in found if m.source_schema == source_schema]
        if target_schema is not None:
            found = [m for m in found if m.target_schema == target_schema]
        if policy is not None:
            found = [m for m in found if policy.trusts(m.provenance)]
        return found

    def matches_touching(self, schema_name: str) -> list[StoredMatch]:
        """All matches with this schema on either side (index-backed on SQLite)."""
        with self._read_guard:
            return self._backend.matches_touching(schema_name)

    def matches_between(self, first: str, second: str) -> list[StoredMatch]:
        """All matches between two schemata, either orientation.

        The direct-priors query of the reuse layer; on the SQLite backend
        this is an indexed lookup, not a full table scan.
        """
        with self._read_guard:
            return self._backend.matches_between(first, second)

    def close(self) -> None:
        with self._lock:
            self._backend.close()

    def __enter__(self) -> "MetadataRepository":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
