"""The enterprise metadata repository: schemata and matches as knowledge.

Section 5: "Large enterprises can have hundreds to thousands of schemata,
illustrating the need to manage schemata as data themselves ... Several
commercial repository tools are available, but these ignore the importance
of schema matches as knowledge artifacts."

:class:`MetadataRepository` stores both: registered schemata and asserted
matches with full provenance, filterable by trust policy.  Two backends
share one interface: in-memory (default) and SQLite (persistent, stdlib
``sqlite3``).

Beyond schemata and matches, the backends persist *corpus fingerprints* --
per-schema term statistics that :class:`~repro.corpus.index.CorpusIndex`
derives once and reloads on reopen, so indexing a registered corpus does
not re-profile every schema (see ``docs/repository.md``).  The repository
also exposes two monotone staleness clocks: :attr:`MetadataRepository.generation`
(bumped on register/unregister -- the corpus index's rebuild trigger) and
:attr:`MetadataRepository.match_generation` (bumped whenever stored
matches change -- what the :class:`~repro.network.graph.MappingGraph`
adjacency cache keys on).
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass

from repro.match.correspondence import (
    Correspondence,
    MatchStatus,
    SemanticAnnotation,
)
from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.schema.schema import Schema
from repro.schema.serialize import schema_from_dict, schema_to_dict

__all__ = ["StoredMatch", "MetadataRepository"]


@dataclass(frozen=True)
class StoredMatch:
    """One match assertion between elements of two registered schemata."""

    source_schema: str
    target_schema: str
    correspondence: Correspondence
    provenance: ProvenanceRecord


class _InMemoryBackend:
    """Dict-backed storage (the default)."""

    def __init__(self) -> None:
        self.schemata: dict[str, dict] = {}
        self.matches: list[StoredMatch] = []
        self.fingerprints: dict[str, dict] = {}

    def put_schema(self, name: str, payload: dict) -> None:
        self.schemata[name] = payload

    def get_schema(self, name: str) -> dict | None:
        return self.schemata.get(name)

    def schema_names(self) -> list[str]:
        return list(self.schemata)

    def delete_schema(self, name: str) -> None:
        self.schemata.pop(name, None)
        self.fingerprints.pop(name, None)
        self.matches = [
            match
            for match in self.matches
            if name not in (match.source_schema, match.target_schema)
        ]

    def add_match(self, match: StoredMatch) -> None:
        self.matches.append(match)

    def add_matches(self, matches: list[StoredMatch]) -> None:
        self.matches.extend(matches)

    def all_matches(self) -> list[StoredMatch]:
        return list(self.matches)

    def matches_touching(self, schema_name: str) -> list[StoredMatch]:
        return [
            match
            for match in self.matches
            if schema_name in (match.source_schema, match.target_schema)
        ]

    def matches_between(self, first: str, second: str) -> list[StoredMatch]:
        pair = {(first, second), (second, first)}
        return [
            match
            for match in self.matches
            if (match.source_schema, match.target_schema) in pair
        ]

    def put_fingerprint(self, name: str, payload: dict) -> None:
        self.fingerprints[name] = payload

    def put_fingerprints(self, payloads: dict[str, dict]) -> None:
        self.fingerprints.update(payloads)

    def get_fingerprint(self, name: str) -> dict | None:
        return self.fingerprints.get(name)

    def fingerprint_names(self) -> list[str]:
        return list(self.fingerprints)

    def fingerprint_hashes(self) -> dict[str, str]:
        return {
            name: payload.get("hash", "")
            for name, payload in self.fingerprints.items()
        }

    def delete_fingerprint(self, name: str) -> None:
        self.fingerprints.pop(name, None)

    def close(self) -> None:  # pragma: no cover - nothing to release
        return None


class _SqliteBackend:
    """SQLite-backed storage; single-file, stdlib-only persistence."""

    def __init__(self, path: str):
        # The serving tier calls into one repository from many handler
        # threads; MetadataRepository serialises every backend call under
        # its own lock, so sharing the connection across threads is safe.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS schemata ("
            " name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS matches ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " source_schema TEXT NOT NULL, target_schema TEXT NOT NULL,"
            " source_element TEXT NOT NULL, target_element TEXT NOT NULL,"
            " score REAL NOT NULL, status TEXT NOT NULL,"
            " annotation TEXT NOT NULL, note TEXT NOT NULL,"
            " corr_asserted_by TEXT NOT NULL DEFAULT '',"
            " asserted_by TEXT NOT NULL, method TEXT NOT NULL,"
            " confidence REAL NOT NULL, sequence INTEGER NOT NULL,"
            " context TEXT NOT NULL, prov_note TEXT NOT NULL)"
        )
        # Stores created before the correspondence asserter was persisted
        # separately lack the column; add it in place (empty = "fall back
        # to the provenance asserter", the old read behaviour).
        columns = {
            row[1]
            for row in self._connection.execute("PRAGMA table_info(matches)")
        }
        if "corr_asserted_by" not in columns:
            self._connection.execute(
                "ALTER TABLE matches ADD COLUMN"
                " corr_asserted_by TEXT NOT NULL DEFAULT ''"
            )
        # Corpus-index fingerprints arrived after the first stores shipped;
        # CREATE IF NOT EXISTS is the in-place migration (older files gain
        # the table on open, their fingerprints rebuild lazily on demand).
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS corpus_fingerprints ("
            " name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        # Mapping-network-era migration: pair/touching queries (graph
        # rebuilds, reuse priors, cascade deletes) would otherwise scan the
        # whole matches table.  IF NOT EXISTS makes reopening idempotent;
        # older files gain the indexes on first open, with no data change.
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_matches_schema_pair"
            " ON matches (source_schema, target_schema)"
        )
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_matches_target_schema"
            " ON matches (target_schema)"
        )
        self._connection.commit()

    def put_schema(self, name: str, payload: dict) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO schemata (name, payload) VALUES (?, ?)",
            (name, json.dumps(payload)),
        )
        self._connection.commit()

    def get_schema(self, name: str) -> dict | None:
        row = self._connection.execute(
            "SELECT payload FROM schemata WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def schema_names(self) -> list[str]:
        rows = self._connection.execute(
            "SELECT name FROM schemata ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

    def delete_schema(self, name: str) -> None:
        self._connection.execute("DELETE FROM schemata WHERE name = ?", (name,))
        self._connection.execute(
            "DELETE FROM corpus_fingerprints WHERE name = ?", (name,)
        )
        self._connection.execute(
            "DELETE FROM matches WHERE source_schema = ? OR target_schema = ?",
            (name, name),
        )
        self._connection.commit()

    @staticmethod
    def _match_row(match: StoredMatch) -> tuple:
        correspondence = match.correspondence
        provenance = match.provenance
        return (
            match.source_schema,
            match.target_schema,
            correspondence.source_id,
            correspondence.target_id,
            correspondence.score,
            correspondence.status.value,
            correspondence.annotation.value,
            correspondence.note,
            correspondence.asserted_by,
            provenance.asserted_by,
            provenance.method.value,
            provenance.confidence,
            provenance.sequence,
            provenance.context,
            provenance.note,
        )

    _INSERT_MATCH = (
        "INSERT INTO matches (source_schema, target_schema, source_element,"
        " target_element, score, status, annotation, note, corr_asserted_by,"
        " asserted_by, method, confidence, sequence, context, prov_note)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )

    def add_match(self, match: StoredMatch) -> None:
        self._connection.execute(self._INSERT_MATCH, self._match_row(match))
        self._connection.commit()

    def add_matches(self, matches: list[StoredMatch]) -> None:
        """Bulk insert as ONE transaction: all rows commit or none do."""
        with self._connection:
            self._connection.executemany(
                self._INSERT_MATCH, [self._match_row(match) for match in matches]
            )

    _SELECT_MATCHES = (
        "SELECT source_schema, target_schema, source_element, target_element,"
        " score, status, annotation, note, corr_asserted_by, asserted_by,"
        " method, confidence, sequence, context, prov_note"
        " FROM matches"
    )

    @staticmethod
    def _stored(row: tuple) -> StoredMatch:
        return StoredMatch(
            source_schema=row[0],
            target_schema=row[1],
            correspondence=Correspondence(
                source_id=row[2],
                target_id=row[3],
                score=row[4],
                status=MatchStatus(row[5]),
                annotation=SemanticAnnotation(row[6]),
                note=row[7],
                # Pre-migration rows stored only the provenance
                # asserter; fall back to it.
                asserted_by=row[8] or row[9],
            ),
            provenance=ProvenanceRecord(
                asserted_by=row[9],
                method=AssertionMethod(row[10]),
                confidence=row[11],
                sequence=row[12],
                context=row[13],
                note=row[14],
            ),
        )

    def all_matches(self) -> list[StoredMatch]:
        rows = self._connection.execute(
            self._SELECT_MATCHES + " ORDER BY id"
        ).fetchall()
        return [self._stored(row) for row in rows]

    def matches_touching(self, schema_name: str) -> list[StoredMatch]:
        rows = self._connection.execute(
            self._SELECT_MATCHES
            + " WHERE source_schema = ? OR target_schema = ? ORDER BY id",
            (schema_name, schema_name),
        ).fetchall()
        return [self._stored(row) for row in rows]

    def matches_between(self, first: str, second: str) -> list[StoredMatch]:
        rows = self._connection.execute(
            self._SELECT_MATCHES
            + " WHERE (source_schema = ? AND target_schema = ?)"
            "    OR (source_schema = ? AND target_schema = ?) ORDER BY id",
            (first, second, second, first),
        ).fetchall()
        return [self._stored(row) for row in rows]

    def put_fingerprint(self, name: str, payload: dict) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO corpus_fingerprints (name, payload)"
            " VALUES (?, ?)",
            (name, json.dumps(payload)),
        )
        self._connection.commit()

    def put_fingerprints(self, payloads: dict[str, dict]) -> None:
        """Bulk write as ONE transaction (a cold index build is N schemata)."""
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO corpus_fingerprints (name, payload)"
                " VALUES (?, ?)",
                [(name, json.dumps(payload)) for name, payload in payloads.items()],
            )

    def get_fingerprint(self, name: str) -> dict | None:
        row = self._connection.execute(
            "SELECT payload FROM corpus_fingerprints WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def fingerprint_names(self) -> list[str]:
        rows = self._connection.execute(
            "SELECT name FROM corpus_fingerprints ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

    def fingerprint_hashes(self) -> dict[str, str]:
        """name -> content hash for every fingerprint, in one query.

        The staleness probe of the corpus index; json_extract keeps it to
        one small row per schema instead of parsing whole term bags (with
        a Python-side fallback for SQLite builds without the JSON
        functions).
        """
        try:
            rows = self._connection.execute(
                "SELECT name, json_extract(payload, '$.hash')"
                " FROM corpus_fingerprints"
            ).fetchall()
            return {row[0]: row[1] or "" for row in rows}
        except sqlite3.OperationalError:  # pragma: no cover - exotic builds
            rows = self._connection.execute(
                "SELECT name, payload FROM corpus_fingerprints"
            ).fetchall()
            return {
                row[0]: json.loads(row[1]).get("hash", "") for row in rows
            }

    def delete_fingerprint(self, name: str) -> None:
        self._connection.execute(
            "DELETE FROM corpus_fingerprints WHERE name = ?", (name,)
        )
        self._connection.commit()

    def close(self) -> None:
        self._connection.close()


class MetadataRepository:
    """Schemata + match knowledge with provenance and trust filtering.

    One repository may be shared across threads (the serving tier binds a
    single instance under a ``ThreadingHTTPServer``): every backend call
    and every clock/sequence bump happens under one internal lock, so
    concurrent registers, match stores, and reads serialise cleanly on
    both backends (the SQLite connection is opened cross-thread-shareable
    for exactly this reason).
    """

    def __init__(self, path: str | None = None):
        """In-memory by default; pass a file path for SQLite persistence."""
        self._backend = _SqliteBackend(path) if path is not None else _InMemoryBackend()
        self._sequence = max(
            (match.provenance.sequence for match in self._backend.all_matches()),
            default=0,
        )
        self._generation = 0
        self._match_generation = 0
        self._lock = threading.RLock()

    @property
    def generation(self) -> int:
        """Monotone registration clock: bumped on register/unregister.

        Derived structures (the corpus index) compare the generation they
        were built at against the current one to detect staleness without
        diffing the whole registry on every query.  The counter is
        per-process (it restarts at 0 on reopen); persisted fingerprints
        carry content hashes, so a fresh process still avoids re-deriving
        unchanged schemata.
        """
        return self._generation

    @property
    def match_generation(self) -> int:
        """Monotone match-knowledge clock: bumped whenever stored matches
        change (store_match / store_matches, and unregister's cascade).

        The :class:`~repro.network.graph.MappingGraph` adjacency cache
        compares this clock (together with :attr:`generation`) to decide
        staleness, so warm routing queries never re-scan the store.  Like
        :attr:`generation` it is per-process and restarts at 0 on reopen.
        """
        return self._match_generation

    # ------------------------------------------------------------------
    # Schemata
    # ------------------------------------------------------------------
    def register(self, schema: Schema, name: str | None = None) -> str:
        """Store a schema (serialised); returns the registered name.

        Re-registering an *identical* schema under its existing name is a
        no-op: the stored payload, the derived corpus fingerprint, and the
        generation clock all stay put, so workflows that re-register their
        whole corpus on every run (the ``corpus-match --db`` CLI) keep the
        persisted index warm.  A *changed* payload replaces the schema,
        drops the stale fingerprint, and bumps the generation.
        """
        schema_name = name if name is not None else schema.name
        payload = schema_to_dict(schema)
        with self._lock:
            if self._backend.get_schema(schema_name) == payload:
                return schema_name
            self._backend.put_schema(schema_name, payload)
            self._backend.delete_fingerprint(schema_name)
            self._generation += 1
            return schema_name

    def schema(self, name: str) -> Schema:
        with self._lock:
            payload = self._backend.get_schema(name)
        if payload is None:
            raise KeyError(f"schema {name!r} is not registered")
        return schema_from_dict(payload)

    def schema_names(self) -> list[str]:
        with self._lock:
            return self._backend.schema_names()

    def schema_payload(self, name: str) -> dict:
        """The stored serialised form, without rebuilding the Schema.

        The corpus index hashes this payload to validate fingerprints; it
        is cheaper than :meth:`schema` because no object graph is rebuilt.
        """
        with self._lock:
            payload = self._backend.get_schema(name)
        if payload is None:
            raise KeyError(f"schema {name!r} is not registered")
        return payload

    def unregister(self, name: str) -> None:
        """Remove a schema, its fingerprint, and every match touching it."""
        with self._lock:
            self._backend.delete_schema(name)
            self._generation += 1
            # The cascade may have deleted match rows; derived match
            # structures (the mapping graph) must notice even when no
            # match survived.
            self._match_generation += 1

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return self._backend.get_schema(name) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._backend.schema_names())

    # ------------------------------------------------------------------
    # Corpus fingerprints (derived data owned by repro.corpus.CorpusIndex)
    # ------------------------------------------------------------------
    def put_fingerprint(self, name: str, payload: dict) -> None:
        """Persist one schema's derived term statistics (JSON payload)."""
        with self._lock:
            self._backend.put_fingerprint(name, payload)

    def put_fingerprints(self, payloads: dict[str, dict]) -> None:
        """Bulk variant of :meth:`put_fingerprint`; one SQLite transaction."""
        with self._lock:
            self._backend.put_fingerprints(payloads)

    def get_fingerprint(self, name: str) -> dict | None:
        with self._lock:
            return self._backend.get_fingerprint(name)

    def fingerprint_names(self) -> list[str]:
        with self._lock:
            return self._backend.fingerprint_names()

    def fingerprint_hashes(self) -> dict[str, str]:
        """name -> fingerprint content hash (the index staleness probe)."""
        with self._lock:
            return self._backend.fingerprint_hashes()

    # ------------------------------------------------------------------
    # Matches as knowledge artifacts
    # ------------------------------------------------------------------
    def store_match(
        self,
        source_schema: str,
        target_schema: str,
        correspondence: Correspondence,
        asserted_by: str,
        method: AssertionMethod = AssertionMethod.AUTOMATIC,
        context: str = "general",
        note: str = "",
    ) -> StoredMatch:
        """Assert one correspondence with provenance (sequence = logical time)."""
        with self._lock:
            for name in (source_schema, target_schema):
                if name not in self:
                    raise KeyError(f"schema {name!r} is not registered")
            self._sequence += 1
            stored = StoredMatch(
                source_schema=source_schema,
                target_schema=target_schema,
                correspondence=correspondence,
                provenance=ProvenanceRecord(
                    asserted_by=asserted_by,
                    method=method,
                    confidence=correspondence.score,
                    sequence=self._sequence,
                    context=context,
                    note=note,
                ),
            )
            self._backend.add_match(stored)
            self._match_generation += 1
            return stored

    def store_matches(
        self,
        source_schema: str,
        target_schema: str,
        correspondences,
        asserted_by: str,
        method: AssertionMethod = AssertionMethod.AUTOMATIC,
        context: str = "general",
    ) -> int:
        """Bulk variant of :meth:`store_match`; returns the count stored.

        The whole batch is written as ONE backend transaction (a single
        commit on SQLite): either every correspondence is stored or none
        is, and the sequence counter only advances on success.  See
        ``docs/repository.md`` for the guarantee.
        """
        with self._lock:
            for name in (source_schema, target_schema):
                if name not in self:
                    raise KeyError(f"schema {name!r} is not registered")
            stored: list[StoredMatch] = []
            for offset, correspondence in enumerate(correspondences, start=1):
                stored.append(
                    StoredMatch(
                        source_schema=source_schema,
                        target_schema=target_schema,
                        correspondence=correspondence,
                        provenance=ProvenanceRecord(
                            asserted_by=asserted_by,
                            method=method,
                            confidence=correspondence.score,
                            sequence=self._sequence + offset,
                            context=context,
                            note="",
                        ),
                    )
                )
            self._backend.add_matches(stored)
            self._sequence += len(stored)
            if stored:
                self._match_generation += 1
            return len(stored)

    def matches(
        self,
        source_schema: str | None = None,
        target_schema: str | None = None,
        policy: TrustPolicy | None = None,
    ) -> list[StoredMatch]:
        """Query stored matches, optionally trust-filtered."""
        with self._lock:
            found = self._backend.all_matches()
        if source_schema is not None:
            found = [m for m in found if m.source_schema == source_schema]
        if target_schema is not None:
            found = [m for m in found if m.target_schema == target_schema]
        if policy is not None:
            found = [m for m in found if policy.trusts(m.provenance)]
        return found

    def matches_touching(self, schema_name: str) -> list[StoredMatch]:
        """All matches with this schema on either side (index-backed on SQLite)."""
        with self._lock:
            return self._backend.matches_touching(schema_name)

    def matches_between(self, first: str, second: str) -> list[StoredMatch]:
        """All matches between two schemata, either orientation.

        The direct-priors query of the reuse layer; on the SQLite backend
        this is an indexed lookup, not a full table scan.
        """
        with self._lock:
            return self._backend.matches_between(first, second)

    def close(self) -> None:
        with self._lock:
            self._backend.close()

    def __enter__(self) -> "MetadataRepository":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
