"""Schema model: elements, schemata, type lattice, and importers.

A :class:`~repro.schema.schema.Schema` is an ordered forest of
:class:`~repro.schema.element.SchemaElement` nodes.  Importers build them
from SQL DDL (:func:`parse_ddl`) and XML Schema (:func:`parse_xsd`);
:mod:`repro.synthetic` generates them programmatically.
"""

from repro.schema.datatypes import DataType, compatibility, parse_sql_type, parse_xsd_type
from repro.schema.diff import RenamedElement, SchemaDiff, diff_schemas
from repro.schema.element import ElementKind, SchemaElement
from repro.schema.errors import (
    DuplicateElementError,
    ParseError,
    SchemaError,
    UnknownElementError,
)
from repro.schema.relational import load_ddl_file, parse_ddl
from repro.schema.schema import Schema
from repro.schema.serialize import dump_schema, load_schema, schema_from_dict, schema_to_dict
from repro.schema.xmlschema import load_xsd_file, parse_xsd

__all__ = [
    "DataType",
    "DuplicateElementError",
    "RenamedElement",
    "SchemaDiff",
    "ElementKind",
    "ParseError",
    "Schema",
    "SchemaElement",
    "SchemaError",
    "UnknownElementError",
    "compatibility",
    "diff_schemas",
    "dump_schema",
    "load_ddl_file",
    "load_schema",
    "load_xsd_file",
    "parse_ddl",
    "parse_sql_type",
    "parse_xsd",
    "parse_xsd_type",
    "schema_from_dict",
    "schema_to_dict",
]
