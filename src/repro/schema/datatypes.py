"""A unified data-type lattice spanning relational and XML type systems.

The case study in the CIDR 2009 paper matches a relational schema against an
XML Schema, so type evidence must be comparable across both systems.  Every
concrete type (``VARCHAR(30)``, ``xs:dateTime``...) is normalised into one of
a small set of :class:`DataType` families, and a compatibility matrix scores
how strongly two families suggest (or contradict) a correspondence.

Compatibility is *soft* evidence: two STRING columns say little; a STRING and
a BOOLEAN mildly contradict; identical temporal families reinforce.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache

import numpy as np

__all__ = [
    "DataType",
    "parse_sql_type",
    "parse_xsd_type",
    "compatibility",
    "compatibility_matrix",
    "family_table",
]


class DataType(Enum):
    """Normalised type families shared by all importers."""

    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    BOOLEAN = "boolean"
    DATE = "date"
    TIME = "time"
    DATETIME = "datetime"
    BINARY = "binary"
    IDENTIFIER = "identifier"  # keys, UUIDs, codes used as surrogate ids
    COMPLEX = "complex"        # containers: tables, XSD complex types
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SQL_TYPE_FAMILIES: dict[str, DataType] = {
    "char": DataType.STRING,
    "varchar": DataType.STRING,
    "varchar2": DataType.STRING,
    "nvarchar": DataType.STRING,
    "nchar": DataType.STRING,
    "text": DataType.STRING,
    "clob": DataType.STRING,
    "string": DataType.STRING,
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "smallint": DataType.INTEGER,
    "bigint": DataType.INTEGER,
    "tinyint": DataType.INTEGER,
    "serial": DataType.IDENTIFIER,
    "decimal": DataType.DECIMAL,
    "numeric": DataType.DECIMAL,
    "number": DataType.DECIMAL,
    "float": DataType.DECIMAL,
    "real": DataType.DECIMAL,
    "double": DataType.DECIMAL,
    "money": DataType.DECIMAL,
    "bool": DataType.BOOLEAN,
    "boolean": DataType.BOOLEAN,
    "bit": DataType.BOOLEAN,
    "date": DataType.DATE,
    "time": DataType.TIME,
    "timestamp": DataType.DATETIME,
    "datetime": DataType.DATETIME,
    "blob": DataType.BINARY,
    "binary": DataType.BINARY,
    "varbinary": DataType.BINARY,
    "bytea": DataType.BINARY,
    "uuid": DataType.IDENTIFIER,
    "guid": DataType.IDENTIFIER,
}

_XSD_TYPE_FAMILIES: dict[str, DataType] = {
    "string": DataType.STRING,
    "normalizedstring": DataType.STRING,
    "token": DataType.STRING,
    "anyuri": DataType.STRING,
    "language": DataType.STRING,
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "long": DataType.INTEGER,
    "short": DataType.INTEGER,
    "byte": DataType.INTEGER,
    "nonnegativeinteger": DataType.INTEGER,
    "positiveinteger": DataType.INTEGER,
    "unsignedint": DataType.INTEGER,
    "unsignedlong": DataType.INTEGER,
    "decimal": DataType.DECIMAL,
    "float": DataType.DECIMAL,
    "double": DataType.DECIMAL,
    "boolean": DataType.BOOLEAN,
    "date": DataType.DATE,
    "time": DataType.TIME,
    "datetime": DataType.DATETIME,
    "gyear": DataType.DATE,
    "gyearmonth": DataType.DATE,
    "duration": DataType.TIME,
    "base64binary": DataType.BINARY,
    "hexbinary": DataType.BINARY,
    "id": DataType.IDENTIFIER,
    "idref": DataType.IDENTIFIER,
    "ncname": DataType.IDENTIFIER,
}


def parse_sql_type(declared: str) -> DataType:
    """Map a declared SQL type (``VARCHAR(30)``, ``NUMBER(10,2)``) to a family.

    >>> parse_sql_type("VARCHAR(30)")
    <DataType.STRING: 'string'>
    """
    base = declared.strip().lower().split("(")[0].strip()
    return _SQL_TYPE_FAMILIES.get(base, DataType.UNKNOWN)


def parse_xsd_type(declared: str) -> DataType:
    """Map an XSD type reference (``xs:dateTime``) to a family.

    Unqualified or foreign-namespace references fall back to UNKNOWN unless
    the local name matches a built-in.
    """
    local = declared.strip().lower().split(":")[-1]
    return _XSD_TYPE_FAMILIES.get(local, DataType.UNKNOWN)


# Pairwise compatibility in [0, 1]: 1 = strongly reinforcing, 0.5 = neutral,
# 0 = contradicting.  Symmetric by construction.
_COMPAT: dict[frozenset[DataType], float] = {}


def _set_compat(left: DataType, right: DataType, value: float) -> None:
    _COMPAT[frozenset((left, right))] = value


for _family in DataType:
    _set_compat(_family, _family, 1.0)
_set_compat(DataType.DATE, DataType.DATETIME, 0.9)
_set_compat(DataType.TIME, DataType.DATETIME, 0.8)
_set_compat(DataType.DATE, DataType.TIME, 0.4)
_set_compat(DataType.INTEGER, DataType.DECIMAL, 0.8)
_set_compat(DataType.INTEGER, DataType.IDENTIFIER, 0.6)
_set_compat(DataType.STRING, DataType.IDENTIFIER, 0.6)
_set_compat(DataType.STRING, DataType.DATE, 0.35)
_set_compat(DataType.STRING, DataType.DATETIME, 0.35)
_set_compat(DataType.STRING, DataType.TIME, 0.35)
_set_compat(DataType.STRING, DataType.INTEGER, 0.3)
_set_compat(DataType.STRING, DataType.DECIMAL, 0.3)
_set_compat(DataType.STRING, DataType.BOOLEAN, 0.25)
_set_compat(DataType.BOOLEAN, DataType.INTEGER, 0.4)
_set_compat(DataType.COMPLEX, DataType.COMPLEX, 1.0)


def compatibility(left: DataType, right: DataType) -> float:
    """Soft compatibility score in [0, 1] between two type families.

    UNKNOWN against anything is neutral (0.5): absence of type information
    must not push a confidence score either way.  COMPLEX against a scalar is
    contradicting (containers do not match leaves).
    """
    if left is DataType.UNKNOWN or right is DataType.UNKNOWN:
        return 0.5
    if (left is DataType.COMPLEX) != (right is DataType.COMPLEX):
        return 0.05
    return _COMPAT.get(frozenset((left, right)), 0.15)


@lru_cache(maxsize=1)
def family_table() -> tuple[np.ndarray, dict[DataType, int]]:
    """The dense family-by-family compatibility table plus the index mapping.

    Built once; the batch fast path gathers from it directly.  Treat the
    returned array as read-only.
    """
    families = list(DataType)
    family_index = {family: position for position, family in enumerate(families)}
    table = np.empty((len(families), len(families)))
    for row, left in enumerate(families):
        for col, right in enumerate(families):
            table[row, col] = compatibility(left, right)
    return table, family_index


def compatibility_matrix(
    left_types: list[DataType], right_types: list[DataType]
) -> np.ndarray:
    """Vectorised compatibility for all pairs of two type lists."""
    table, family_index = family_table()
    left_ids = np.array([family_index[family] for family in left_types], dtype=int)
    right_ids = np.array([family_index[family] for family in right_types], dtype=int)
    if left_ids.size == 0 or right_ids.size == 0:
        return np.zeros((left_ids.size, right_ids.size))
    return table[np.ix_(left_ids, right_ids)]
