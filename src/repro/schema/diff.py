"""Schema version diffing: what changed between Sys(SA).v3 and Sys(SA).v4?

The case study's trigger is a version transition: "Sys(SA) is currently
being redesigned into version 4" (section 3.1) -- and planners need to know
what the redesign adds, drops and renames before deciding what the new
version can subsume.  :func:`diff_schemas` produces exactly that inventory:

* **added** / **removed** -- elements present in only one version;
* **renamed** -- removed/added pairs whose *match score* clears a threshold
  (the match engine doing rename detection);
* **retyped** -- same id, different normalised type family;
* **redocumented** -- same id, changed documentation.

Elements are aligned by id first (ids are stable within a system's
lineage); the engine only arbitrates the leftovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.schema.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (schema <- match)
    from repro.match.engine import HarmonyMatchEngine
    from repro.service import MatchService

__all__ = ["SchemaDiff", "RenamedElement", "diff_schemas"]


@dataclass(frozen=True)
class RenamedElement:
    """A probable rename: old element, new element, and the match score."""

    old_id: str
    new_id: str
    old_name: str
    new_name: str
    score: float


@dataclass
class SchemaDiff:
    """The change inventory between two schema versions."""

    old_version: str
    new_version: str
    added_ids: list[str] = field(default_factory=list)
    removed_ids: list[str] = field(default_factory=list)
    renamed: list[RenamedElement] = field(default_factory=list)
    retyped_ids: list[str] = field(default_factory=list)
    redocumented_ids: list[str] = field(default_factory=list)
    unchanged_ids: list[str] = field(default_factory=list)

    @property
    def churn(self) -> int:
        """Total changed elements (a planning workload indicator)."""
        return (
            len(self.added_ids)
            + len(self.removed_ids)
            + len(self.renamed)
            + len(self.retyped_ids)
        )

    def summary_lines(self) -> list[str]:
        return [
            f"{self.old_version} -> {self.new_version}:",
            f"  unchanged:     {len(self.unchanged_ids)}",
            f"  added:         {len(self.added_ids)}",
            f"  removed:       {len(self.removed_ids)}",
            f"  renamed:       {len(self.renamed)}",
            f"  retyped:       {len(self.retyped_ids)}",
            f"  redocumented:  {len(self.redocumented_ids)}",
        ]


def diff_schemas(
    old: Schema,
    new: Schema,
    engine: "HarmonyMatchEngine | None" = None,
    rename_threshold: float = 0.03,
    service: "MatchService | None" = None,
) -> SchemaDiff:
    """Diff two versions of a schema (see module docstring).

    ``rename_threshold`` gates the engine-backed rename detection between
    the id-orphaned elements; renames must also agree on tree depth (a
    column does not become a table in a rename).  The rename pass restricts
    both grid sides, so it always runs on the exact engine -- obtained from
    ``service`` (sharing its profile cache) unless an ``engine`` is given.
    """
    # Imported here to keep the schema package import-cycle free (the match
    # and service packages build on schema, not the other way around).
    from repro.match.selection import StableMarriageSelection

    old_ids = {element.element_id for element in old}
    new_ids = {element.element_id for element in new}

    diff = SchemaDiff(old_version=old.name, new_version=new.name)

    for element_id in sorted(old_ids & new_ids):
        old_element = old.element(element_id)
        new_element = new.element(element_id)
        changed = False
        if old_element.data_type is not new_element.data_type:
            diff.retyped_ids.append(element_id)
            changed = True
        if old_element.documentation != new_element.documentation:
            diff.redocumented_ids.append(element_id)
            changed = True
        if not changed:
            diff.unchanged_ids.append(element_id)

    removed = sorted(old_ids - new_ids)
    added = sorted(new_ids - old_ids)
    if removed and added:
        if engine is None:
            from repro.service import MatchService

            engine = (service if service is not None else MatchService()).engine()
        result = engine.match(
            old, new, source_element_ids=removed, target_element_ids=added
        )
        candidates = StableMarriageSelection(threshold=rename_threshold).select(
            result.matrix
        )
        matched_old: set[str] = set()
        matched_new: set[str] = set()
        for candidate in candidates:
            if old.depth(candidate.source_id) != new.depth(candidate.target_id):
                continue
            diff.renamed.append(
                RenamedElement(
                    old_id=candidate.source_id,
                    new_id=candidate.target_id,
                    old_name=old.element(candidate.source_id).name,
                    new_name=new.element(candidate.target_id).name,
                    score=candidate.score,
                )
            )
            matched_old.add(candidate.source_id)
            matched_new.add(candidate.target_id)
        diff.removed_ids = [eid for eid in removed if eid not in matched_old]
        diff.added_ids = [eid for eid in added if eid not in matched_new]
    else:
        diff.removed_ids = removed
        diff.added_ids = added

    return diff
