"""Schema elements: the atoms that match voters compare.

An element is anything nameable in a schema: a relation, a column, an XSD
complex type, an element declaration, an attribute.  The CIDR 2009 paper
counts all of these uniformly ("Schema A ... contains 1378 elements"), so the
model makes no structural distinction beyond the parent/child tree and an
:class:`ElementKind` tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.schema.datatypes import DataType

__all__ = ["ElementKind", "SchemaElement"]


class ElementKind(Enum):
    """What role the element plays in its host schema."""

    TABLE = "table"
    VIEW = "view"
    COLUMN = "column"
    COMPLEX_TYPE = "complex_type"
    ELEMENT = "element"        # XSD element declaration
    ATTRIBUTE = "attribute"    # XSD attribute
    GENERIC = "generic"

    def is_container(self) -> bool:
        """Containers hold other elements; leaves carry values."""
        return self in (ElementKind.TABLE, ElementKind.VIEW, ElementKind.COMPLEX_TYPE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SchemaElement:
    """One node in a schema tree.

    Attributes
    ----------
    element_id:
        Unique within the host schema.  Importers derive it from the path
        (e.g. ``all_event_vitals.date_begin_156``); generators assign it.
    name:
        The surface name as written in the schema source.
    kind:
        Structural role (table, column, XSD element...).
    parent_id:
        Id of the containing element, or None for a root.
    documentation:
        Free-text description (DDL comments, ``xs:documentation``).  Harmony
        leans on this text heavily, see CIDR 2009 section 3.2.
    data_type:
        Normalised type family; COMPLEX for containers.
    declared_type:
        The raw type string from the source (``VARCHAR(30)``, ``xs:date``).
    nullable / is_key:
        Constraint hints; neutral defaults when unknown.
    """

    element_id: str
    name: str
    kind: ElementKind = ElementKind.GENERIC
    parent_id: str | None = None
    documentation: str = ""
    data_type: DataType = DataType.UNKNOWN
    declared_type: str = ""
    nullable: bool = True
    is_key: bool = False

    def __post_init__(self) -> None:
        if not self.element_id:
            raise ValueError("element_id must be non-empty")
        if not self.name:
            raise ValueError(f"element {self.element_id!r} must have a name")
        if self.parent_id == self.element_id:
            raise ValueError(f"element {self.element_id!r} cannot be its own parent")

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def with_documentation(self, documentation: str) -> "SchemaElement":
        """Return a copy carrying new documentation text."""
        return replace(self, documentation=documentation)

    def describing_text(self) -> str:
        """Name plus documentation -- the full linguistic evidence string."""
        if self.documentation:
            return f"{self.name} {self.documentation}"
        return self.name
