"""Exception hierarchy for the schema model and importers."""

from __future__ import annotations

__all__ = ["SchemaError", "DuplicateElementError", "UnknownElementError", "ParseError"]


class SchemaError(Exception):
    """Base class for all schema-model errors."""


class DuplicateElementError(SchemaError):
    """An element id or path was registered twice within one schema."""


class UnknownElementError(SchemaError, KeyError):
    """A lookup referenced an element id that does not exist in the schema."""


class ParseError(SchemaError):
    """An importer could not parse its input (DDL, XSD, JSON...)."""

    def __init__(self, message: str, line: int | None = None):
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
