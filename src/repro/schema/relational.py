"""SQL DDL importer: ``CREATE TABLE`` scripts -> :class:`Schema`.

The case study's Schema A "is relational, contains 1378 elements" (CIDR 2009,
section 3.1).  This importer accepts the practical dialect-neutral subset of
DDL that schema dumps in large organisations actually contain:

* ``CREATE TABLE name (col TYPE [constraints], ... [, PRIMARY KEY (...)])``
* ``CREATE VIEW name AS SELECT col [, col ...] FROM ...`` (columns shallow)
* trailing ``--`` line comments attached as documentation to the element they
  follow
* ``COMMENT ON TABLE|COLUMN x IS '...'`` statements (Oracle/Postgres style)

It is a tolerant recursive-descent-ish parser over statements split on
semicolons outside string literals; anything unrecognised raises
:class:`~repro.schema.errors.ParseError` with the offending line.
"""

from __future__ import annotations

import re

from repro.schema.datatypes import DataType, parse_sql_type
from repro.schema.element import ElementKind, SchemaElement
from repro.schema.errors import ParseError
from repro.schema.schema import Schema

__all__ = ["parse_ddl", "load_ddl_file"]

_CREATE_TABLE_RE = re.compile(
    r"^\s*CREATE\s+TABLE\s+(?P<name>[\w$#.]+)\s*\((?P<body>.*)\)\s*$",
    re.IGNORECASE | re.DOTALL,
)
_CREATE_VIEW_RE = re.compile(
    r"^\s*CREATE\s+(?:OR\s+REPLACE\s+)?VIEW\s+(?P<name>[\w$#.]+)\s+AS\s+"
    r"SELECT\s+(?P<cols>.*?)\s+FROM\s+",
    re.IGNORECASE | re.DOTALL,
)
_COMMENT_ON_RE = re.compile(
    r"^\s*COMMENT\s+ON\s+(?P<scope>TABLE|COLUMN)\s+(?P<target>[\w$#.]+)\s+IS\s+"
    r"'(?P<text>(?:[^']|'')*)'\s*$",
    re.IGNORECASE | re.DOTALL,
)
_CONSTRAINT_PREFIXES = (
    "primary key",
    "foreign key",
    "unique",
    "check",
    "constraint",
    "key ",
    "index ",
)
_COLUMN_RE = re.compile(
    r"^(?P<name>[\w$#]+)\s+(?P<type>[\w]+(?:\s*\([^)]*\))?)(?P<rest>.*)$",
    re.DOTALL,
)


def _split_statements(ddl: str) -> list[tuple[str, int]]:
    """Split on semicolons outside single-quoted strings.

    Returns (statement_text, starting_line_number) pairs; line numbers are
    1-based and refer to the original input for error reporting.
    """
    statements: list[tuple[str, int]] = []
    buffer: list[str] = []
    in_string = False
    line = 1
    start_line = 1
    for char in ddl:
        if char == "\n":
            line += 1
        if char == "'":
            in_string = not in_string
        if char == ";" and not in_string:
            text = "".join(buffer)
            if text.strip():
                statements.append((text, start_line))
            buffer = []
            start_line = line
            continue
        buffer.append(char)
    tail = "".join(buffer)
    if tail.strip():
        statements.append((tail, start_line))
    return statements


def _extract_line_comments(body: str) -> tuple[str, dict[int, str]]:
    """Strip ``--`` comments, returning cleaned text and comments per line.

    The comment on physical line *i* of the body documents whatever column
    definition occupies that line.
    """
    cleaned_lines: list[str] = []
    comments: dict[int, str] = {}
    for index, raw_line in enumerate(body.split("\n")):
        if "--" in raw_line:
            code, _, comment = raw_line.partition("--")
            cleaned_lines.append(code)
            text = comment.strip()
            if text:
                comments[index] = text
        else:
            cleaned_lines.append(raw_line)
    return "\n".join(cleaned_lines), comments


def _split_columns(body: str) -> list[str]:
    """Split a CREATE TABLE body on commas outside parentheses/strings."""
    parts: list[str] = []
    depth = 0
    in_string = False
    buffer: list[str] = []
    for char in body:
        if char == "'":
            in_string = not in_string
        if not in_string:
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            elif char == "," and depth == 0:
                parts.append("".join(buffer))
                buffer = []
                continue
        buffer.append(char)
    parts.append("".join(buffer))
    return [part for part in parts if part.strip()]


def _primary_key_columns(definition: str) -> list[str]:
    match = re.search(r"primary\s+key\s*\(([^)]*)\)", definition, re.IGNORECASE)
    if not match:
        return []
    return [col.strip().lower() for col in match.group(1).split(",") if col.strip()]


def _parse_table(
    schema: Schema, name: str, body: str, line: int
) -> None:
    cleaned, _ = _extract_line_comments(body)
    # Re-run comment extraction per column chunk: map comments by searching
    # the original body for each column's source line.
    table_name = name.split(".")[-1]
    table = schema.add_root(
        table_name,
        kind=ElementKind.TABLE,
        data_type=DataType.COMPLEX,
    )

    deferred_keys: list[str] = []
    for chunk in _split_columns(cleaned):
        stripped = chunk.strip()
        lowered = stripped.lower()
        if any(lowered.startswith(prefix) for prefix in _CONSTRAINT_PREFIXES):
            deferred_keys.extend(_primary_key_columns(stripped))
            continue
        column_match = _COLUMN_RE.match(stripped)
        if not column_match:
            raise ParseError(
                f"cannot parse column definition {stripped[:60]!r} "
                f"in table {table_name}",
                line=line,
            )
        column_name = column_match.group("name")
        declared = column_match.group("type").strip()
        rest = column_match.group("rest").lower()
        documentation = _documentation_for_column(body, column_name)
        schema.add_child(
            table,
            column_name,
            kind=ElementKind.COLUMN,
            documentation=documentation,
            data_type=parse_sql_type(declared),
            declared_type=declared,
            nullable="not null" not in rest and "primary key" not in rest,
            is_key="primary key" in rest,
        )

    for key_column in deferred_keys:
        for child in schema.children(table):
            if child.name.lower() == key_column:
                schema.replace_element(
                    SchemaElement(
                        element_id=child.element_id,
                        name=child.name,
                        kind=child.kind,
                        parent_id=child.parent_id,
                        documentation=child.documentation,
                        data_type=child.data_type,
                        declared_type=child.declared_type,
                        nullable=False,
                        is_key=True,
                    )
                )


def _documentation_for_column(body: str, column_name: str) -> str:
    """Find a trailing ``--`` comment on the line defining ``column_name``."""
    pattern = re.compile(
        rf"^\s*{re.escape(column_name)}\s+.*?--\s*(?P<text>.+?)\s*$",
        re.IGNORECASE | re.MULTILINE,
    )
    match = pattern.search(body)
    if match:
        return match.group("text").rstrip(",").strip()
    return ""


def _parse_view(schema: Schema, name: str, columns_clause: str) -> None:
    view_name = name.split(".")[-1]
    view = schema.add_root(
        view_name,
        kind=ElementKind.VIEW,
        data_type=DataType.COMPLEX,
    )
    if columns_clause.strip() == "*":
        return
    for column_expression in columns_clause.split(","):
        expression = column_expression.strip()
        if not expression:
            continue
        alias_match = re.search(r"\bas\s+([\w$#]+)\s*$", expression, re.IGNORECASE)
        if alias_match:
            column_name = alias_match.group(1)
        else:
            column_name = expression.split(".")[-1].strip()
        if not re.fullmatch(r"[\w$#]+", column_name):
            continue
        schema.add_child(view, column_name, kind=ElementKind.COLUMN)


def _apply_comment(schema: Schema, scope: str, target: str, text: str) -> None:
    text = text.replace("''", "'")
    parts = target.split(".")
    if scope.upper() == "TABLE":
        table_name = parts[-1]
        for element in schema.find_by_name(table_name):
            if element.kind in (ElementKind.TABLE, ElementKind.VIEW):
                schema.replace_element(element.with_documentation(text))
                return
        raise ParseError(f"COMMENT ON TABLE references unknown table {target!r}")
    # COLUMN scope: last two parts are table.column
    if len(parts) < 2:
        raise ParseError(f"COMMENT ON COLUMN needs table.column, got {target!r}")
    table_name, column_name = parts[-2], parts[-1]
    for element in schema.find_by_name(column_name):
        parent = schema.parent(element)
        if parent is not None and parent.name.lower() == table_name.lower():
            schema.replace_element(element.with_documentation(text))
            return
    raise ParseError(f"COMMENT ON COLUMN references unknown column {target!r}")


def parse_ddl(ddl: str, name: str = "relational_schema") -> Schema:
    """Parse a DDL script into a :class:`Schema`.

    >>> schema = parse_ddl("CREATE TABLE t (a INT, b VARCHAR(10));")
    >>> [e.name for e in schema]
    ['t', 'a', 'b']
    """
    schema = Schema(name, kind="relational")
    for statement, line in _split_statements(ddl):
        table_match = _CREATE_TABLE_RE.match(statement)
        if table_match:
            _parse_table(
                schema, table_match.group("name"), table_match.group("body"), line
            )
            continue
        view_match = _CREATE_VIEW_RE.match(statement)
        if view_match:
            _parse_view(schema, view_match.group("name"), view_match.group("cols"))
            continue
        comment_match = _COMMENT_ON_RE.match(statement)
        if comment_match:
            _apply_comment(
                schema,
                comment_match.group("scope"),
                comment_match.group("target"),
                comment_match.group("text"),
            )
            continue
        head = statement.strip().split(None, 2)[:2]
        raise ParseError(
            f"unsupported DDL statement starting with {' '.join(head)!r}", line=line
        )
    schema.validate()
    return schema


def load_ddl_file(path: str, name: str | None = None) -> Schema:
    """Read a ``.sql`` file and parse it; schema name defaults to the stem."""
    with open(path, "r", encoding="utf-8") as handle:
        ddl = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_ddl(ddl, name=name)
