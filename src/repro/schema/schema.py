"""The :class:`Schema` container: an ordered forest of schema elements.

A schema is a named collection of :class:`~repro.schema.element.SchemaElement`
nodes arranged in a forest (tables/types at depth 1, columns/sub-elements at
depth 2 and below -- matching the paper's depth-filter semantics: "in a
relational model, relations appear at a depth of one and attributes at a
depth of two").

The container maintains parent/child indexes and supports the traversals the
rest of the system is built on: depth queries (depth filter), subtree
extraction (sub-tree filter / incremental matching), leaf iteration
(structural voters) and stable element ordering (similarity matrices index
rows and columns by this order).
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator

from repro.schema.element import ElementKind, SchemaElement
from repro.schema.errors import DuplicateElementError, SchemaError, UnknownElementError

__all__ = ["Schema", "SchemaKind"]

# Schema "kind" is a free-form tag, but these two matter to importers/benches.
SchemaKind = str
_ID_SANITIZE_RE = re.compile(r"[^a-z0-9_.]+")


def _sanitize(fragment: str) -> str:
    return _ID_SANITIZE_RE.sub("_", fragment.lower()).strip("_") or "x"


class Schema:
    """An ordered forest of schema elements with parent/child indexes.

    Elements must be added parents-first; ids are unique.  Iteration order is
    insertion order, which importers keep equal to source order so matrices
    and exports are stable and reproducible.
    """

    def __init__(self, name: str, kind: SchemaKind = "generic", documentation: str = ""):
        if not name:
            raise ValueError("schema name must be non-empty")
        self.name = name
        self.kind = kind
        self.documentation = documentation
        self._elements: dict[str, SchemaElement] = {}
        self._children: dict[str, list[str]] = {}
        self._roots: list[str] = []
        self._depths: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, element: SchemaElement) -> SchemaElement:
        """Add an element; its parent (if any) must already be present."""
        if element.element_id in self._elements:
            raise DuplicateElementError(
                f"duplicate element id {element.element_id!r} in schema {self.name!r}"
            )
        if element.parent_id is not None:
            if element.parent_id not in self._elements:
                raise SchemaError(
                    f"parent {element.parent_id!r} of {element.element_id!r} "
                    f"not found in schema {self.name!r} (add parents first)"
                )
            self._children.setdefault(element.parent_id, []).append(element.element_id)
            self._depths[element.element_id] = self._depths[element.parent_id] + 1
        else:
            self._roots.append(element.element_id)
            self._depths[element.element_id] = 1
        self._elements[element.element_id] = element
        self._children.setdefault(element.element_id, [])
        return element

    def add_root(
        self,
        name: str,
        kind: ElementKind = ElementKind.GENERIC,
        documentation: str = "",
        element_id: str | None = None,
        **extra,
    ) -> SchemaElement:
        """Convenience: create and add a root element, deriving its id."""
        derived = element_id if element_id is not None else self._unique_id(_sanitize(name))
        return self.add(
            SchemaElement(
                element_id=derived,
                name=name,
                kind=kind,
                documentation=documentation,
                **extra,
            )
        )

    def add_child(
        self,
        parent: SchemaElement | str,
        name: str,
        kind: ElementKind = ElementKind.GENERIC,
        documentation: str = "",
        element_id: str | None = None,
        **extra,
    ) -> SchemaElement:
        """Convenience: create and add a child under ``parent``."""
        parent_id = parent.element_id if isinstance(parent, SchemaElement) else parent
        if parent_id not in self._elements:
            raise UnknownElementError(parent_id)
        derived = (
            element_id
            if element_id is not None
            else self._unique_id(f"{parent_id}.{_sanitize(name)}")
        )
        return self.add(
            SchemaElement(
                element_id=derived,
                name=name,
                kind=kind,
                parent_id=parent_id,
                documentation=documentation,
                **extra,
            )
        )

    def _unique_id(self, base: str) -> str:
        if base not in self._elements:
            return base
        suffix = 2
        while f"{base}_{suffix}" in self._elements:
            suffix += 1
        return f"{base}_{suffix}"

    def replace_element(self, element: SchemaElement) -> None:
        """Swap in a modified copy of an existing element (same id/parent)."""
        current = self.element(element.element_id)
        if current.parent_id != element.parent_id:
            raise SchemaError(
                f"replace_element cannot re-parent {element.element_id!r}"
            )
        self._elements[element.element_id] = element

    # ------------------------------------------------------------------
    # Lookup / traversal
    # ------------------------------------------------------------------
    def element(self, element_id: str) -> SchemaElement:
        try:
            return self._elements[element_id]
        except KeyError:
            raise UnknownElementError(
                f"no element {element_id!r} in schema {self.name!r}"
            ) from None

    def __contains__(self, element_id: str) -> bool:
        return element_id in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[SchemaElement]:
        return iter(self._elements.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({self.name!r}, kind={self.kind!r}, elements={len(self)})"

    @property
    def element_ids(self) -> list[str]:
        """All element ids in insertion order."""
        return list(self._elements)

    def roots(self) -> list[SchemaElement]:
        """Depth-1 elements (tables, views, top-level types) in order."""
        return [self._elements[element_id] for element_id in self._roots]

    def children(self, element: SchemaElement | str) -> list[SchemaElement]:
        element_id = element.element_id if isinstance(element, SchemaElement) else element
        if element_id not in self._elements:
            raise UnknownElementError(element_id)
        return [self._elements[child_id] for child_id in self._children[element_id]]

    def parent(self, element: SchemaElement | str) -> SchemaElement | None:
        element_id = element.element_id if isinstance(element, SchemaElement) else element
        parent_id = self.element(element_id).parent_id
        if parent_id is None:
            return None
        return self._elements[parent_id]

    def depth(self, element: SchemaElement | str) -> int:
        """Depth of an element; roots are depth 1 (the paper's convention)."""
        element_id = element.element_id if isinstance(element, SchemaElement) else element
        if element_id not in self._depths:
            raise UnknownElementError(element_id)
        return self._depths[element_id]

    def max_depth(self) -> int:
        return max(self._depths.values(), default=0)

    def elements_at_depth(self, depth: int) -> list[SchemaElement]:
        return [
            self._elements[element_id]
            for element_id, element_depth in self._depths.items()
            if element_depth == depth
        ]

    def subtree(self, root: SchemaElement | str) -> list[SchemaElement]:
        """The element and all descendants, in depth-first pre-order.

        This is the unit of the paper's sub-tree filter and of incremental
        concept-at-a-time matching.
        """
        root_id = root.element_id if isinstance(root, SchemaElement) else root
        if root_id not in self._elements:
            raise UnknownElementError(root_id)
        ordered: list[SchemaElement] = []
        stack = [root_id]
        while stack:
            current = stack.pop()
            ordered.append(self._elements[current])
            stack.extend(reversed(self._children[current]))
        return ordered

    def descendants(self, root: SchemaElement | str) -> list[SchemaElement]:
        """Strict descendants of ``root`` (subtree minus the root itself)."""
        return self.subtree(root)[1:]

    def ancestors(self, element: SchemaElement | str) -> list[SchemaElement]:
        """Ancestors from immediate parent up to the root."""
        chain: list[SchemaElement] = []
        current = self.parent(element)
        while current is not None:
            chain.append(current)
            current = self.parent(current)
        return chain

    def leaves(self) -> list[SchemaElement]:
        """Elements without children (columns, scalar XSD elements)."""
        return [
            element
            for element in self
            if not self._children[element.element_id]
        ]

    def path(self, element: SchemaElement | str) -> str:
        """Human-readable root-to-element path, e.g. ``Vehicle/Reg/No``."""
        element_id = element.element_id if isinstance(element, SchemaElement) else element
        node = self.element(element_id)
        parts = [node.name]
        parts.extend(ancestor.name for ancestor in self.ancestors(element_id))
        return "/".join(reversed(parts))

    def find_by_name(self, name: str) -> list[SchemaElement]:
        """All elements whose surface name equals ``name`` (case-insensitive)."""
        needle = name.lower()
        return [element for element in self if element.name.lower() == needle]

    def filter_elements(
        self, predicate: Callable[[SchemaElement], bool]
    ) -> list[SchemaElement]:
        return [element for element in self if predicate(element)]

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`SchemaError` on failure.

        Invariants: every non-root parent exists; depths are consistent;
        the child index matches parent pointers; no cycles (guaranteed by
        parents-first construction but re-checked here for safety).
        """
        for element in self:
            if element.parent_id is not None:
                if element.parent_id not in self._elements:
                    raise SchemaError(
                        f"dangling parent {element.parent_id!r} for "
                        f"{element.element_id!r}"
                    )
                parent_depth = self._depths[element.parent_id]
                if self._depths[element.element_id] != parent_depth + 1:
                    raise SchemaError(
                        f"inconsistent depth for {element.element_id!r}"
                    )
                if element.element_id not in self._children[element.parent_id]:
                    raise SchemaError(
                        f"child index missing {element.element_id!r}"
                    )
            seen: set[str] = set()
            cursor: str | None = element.element_id
            while cursor is not None:
                if cursor in seen:
                    raise SchemaError(f"cycle through {cursor!r}")
                seen.add(cursor)
                cursor = self._elements[cursor].parent_id

    def stats(self) -> dict[str, int]:
        """Size summary used in reports: total, roots, leaves, max depth."""
        return {
            "elements": len(self),
            "roots": len(self._roots),
            "leaves": len(self.leaves()),
            "max_depth": self.max_depth(),
        }
