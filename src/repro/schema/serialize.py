"""JSON serialization for schemata.

The metadata repository persists schemata as JSON documents; this module
defines the canonical dict form and round-trip helpers.  The format is
versioned so stored repositories stay readable across library upgrades.
"""

from __future__ import annotations

import json
from typing import Any

from repro.schema.datatypes import DataType
from repro.schema.element import ElementKind, SchemaElement
from repro.schema.errors import ParseError
from repro.schema.schema import Schema

__all__ = ["schema_to_dict", "schema_from_dict", "dump_schema", "load_schema"]

_FORMAT_VERSION = 1


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Canonical JSON-compatible dict for a schema (stable element order)."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": schema.name,
        "kind": schema.kind,
        "documentation": schema.documentation,
        "elements": [
            {
                "id": element.element_id,
                "name": element.name,
                "kind": element.kind.value,
                "parent": element.parent_id,
                "documentation": element.documentation,
                "data_type": element.data_type.value,
                "declared_type": element.declared_type,
                "nullable": element.nullable,
                "is_key": element.is_key,
            }
            for element in schema
        ],
    }


def schema_from_dict(payload: dict[str, Any]) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ParseError(f"unsupported schema format version {version!r}")
    schema = Schema(
        payload["name"],
        kind=payload.get("kind", "generic"),
        documentation=payload.get("documentation", ""),
    )
    for entry in payload["elements"]:
        schema.add(
            SchemaElement(
                element_id=entry["id"],
                name=entry["name"],
                kind=ElementKind(entry.get("kind", "generic")),
                parent_id=entry.get("parent"),
                documentation=entry.get("documentation", ""),
                data_type=DataType(entry.get("data_type", "unknown")),
                declared_type=entry.get("declared_type", ""),
                nullable=entry.get("nullable", True),
                is_key=entry.get("is_key", False),
            )
        )
    schema.validate()
    return schema


def dump_schema(schema: Schema, path: str) -> None:
    """Write a schema to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schema_to_dict(schema), handle, indent=2, sort_keys=False)


def load_schema(path: str) -> Schema:
    """Read a schema from a JSON file produced by :func:`dump_schema`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return schema_from_dict(payload)
