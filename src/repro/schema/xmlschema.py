"""XML Schema (XSD) importer -> :class:`Schema`.

The case study's Schema B "is an XML Schema, contains 784 elements" (CIDR
2009, section 3.1).  This importer covers the subset of XSD that data-model
dumps use in practice:

* global ``xs:element`` declarations (anonymous or named complex types)
* global named ``xs:complexType`` definitions
* ``xs:sequence`` / ``xs:all`` / ``xs:choice`` content models (flattened)
* ``xs:attribute`` declarations
* ``xs:annotation`` / ``xs:documentation`` text attached as documentation
* ``type="..."`` references to global complex types -- the *reference is
  expanded one level*: the referring element gains the referenced type's
  children as its own children (sufficient for matching; recursive types are
  cut off rather than infinitely expanded)

Namespaces are handled by local-name matching, so ``xsd:``/``xs:``/default
namespace documents all parse identically.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.schema.datatypes import DataType, parse_xsd_type
from repro.schema.element import ElementKind
from repro.schema.errors import ParseError
from repro.schema.schema import Schema

__all__ = ["parse_xsd", "load_xsd_file"]

_XS = "{http://www.w3.org/2001/XMLSchema}"


def _local(tag: str) -> str:
    """Local name of a possibly namespace-qualified tag."""
    return tag.rsplit("}", 1)[-1]


def _documentation_of(node: ET.Element) -> str:
    """Collect xs:annotation/xs:documentation text under ``node``."""
    texts: list[str] = []
    for child in node:
        if _local(child.tag) != "annotation":
            continue
        for doc in child:
            if _local(doc.tag) == "documentation" and doc.text:
                texts.append(" ".join(doc.text.split()))
    return " ".join(texts)


def _content_particles(type_node: ET.Element) -> list[ET.Element]:
    """Element/attribute declarations inside a complexType, flattened.

    Walks sequence/all/choice groups recursively; ignores annotations.
    """
    particles: list[ET.Element] = []
    for child in type_node:
        local = _local(child.tag)
        if local in ("sequence", "all", "choice"):
            particles.extend(_content_particles(child))
        elif local in ("element", "attribute"):
            particles.append(child)
        elif local in ("complexContent", "simpleContent"):
            for grandchild in child:
                if _local(grandchild.tag) in ("extension", "restriction"):
                    particles.extend(_content_particles(grandchild))
    return particles


class _XsdBuilder:
    """Stateful walk over a parsed XSD document building a Schema."""

    def __init__(self, root: ET.Element, schema: Schema):
        self._schema = schema
        self._global_types: dict[str, ET.Element] = {}
        for child in root:
            if _local(child.tag) == "complexType" and child.get("name"):
                self._global_types[child.get("name")] = child
        self._root_node = root

    def build(self) -> None:
        for child in self._root_node:
            local = _local(child.tag)
            if local == "element":
                self._add_global_element(child)
            elif local == "complexType" and child.get("name"):
                self._add_global_type(child)
            elif local in ("annotation", "import", "include", "simpleType", "attribute"):
                continue

    def _add_global_element(self, node: ET.Element) -> None:
        name = node.get("name")
        if not name:
            raise ParseError("global xs:element without a name")
        root = self._schema.add_root(
            name,
            kind=ElementKind.ELEMENT,
            documentation=_documentation_of(node),
            data_type=DataType.COMPLEX,
        )
        self._add_children(root.element_id, node, expanded=set())

    def _add_global_type(self, node: ET.Element) -> None:
        name = node.get("name")
        root = self._schema.add_root(
            name,
            kind=ElementKind.COMPLEX_TYPE,
            documentation=_documentation_of(node),
            data_type=DataType.COMPLEX,
        )
        self._add_particles(root.element_id, node, expanded={name})

    def _add_children(
        self, parent_id: str, element_node: ET.Element, expanded: set[str]
    ) -> None:
        """Children of an xs:element: inline complexType or type reference."""
        type_ref = element_node.get("type")
        if type_ref is not None:
            local_type = type_ref.split(":")[-1]
            referenced = self._global_types.get(local_type)
            if referenced is not None and local_type not in expanded:
                self._add_particles(
                    parent_id, referenced, expanded | {local_type}
                )
            return
        for child in element_node:
            if _local(child.tag) == "complexType":
                self._add_particles(parent_id, child, expanded)

    def _add_particles(
        self, parent_id: str, type_node: ET.Element, expanded: set[str]
    ) -> None:
        for particle in _content_particles(type_node):
            local = _local(particle.tag)
            name = particle.get("name") or particle.get("ref", "").split(":")[-1]
            if not name:
                continue
            declared = particle.get("type", "")
            is_attribute = local == "attribute"
            type_is_complex = (
                not is_attribute
                and (
                    declared.split(":")[-1] in self._global_types
                    or any(_local(c.tag) == "complexType" for c in particle)
                )
            )
            data_type = (
                DataType.COMPLEX if type_is_complex else parse_xsd_type(declared)
            )
            element = self._schema.add_child(
                parent_id,
                name,
                kind=ElementKind.ATTRIBUTE if is_attribute else ElementKind.ELEMENT,
                documentation=_documentation_of(particle),
                data_type=data_type,
                declared_type=declared,
                nullable=particle.get("minOccurs", "1") == "0"
                or particle.get("use", "") == "optional",
            )
            if type_is_complex and not is_attribute:
                self._add_children(element.element_id, particle, expanded)


def parse_xsd(document: str, name: str = "xml_schema") -> Schema:
    """Parse an XSD document string into a :class:`Schema`.

    >>> xsd = '''<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
    ...   <xs:element name="Person">
    ...     <xs:complexType><xs:sequence>
    ...       <xs:element name="Name" type="xs:string"/>
    ...     </xs:sequence></xs:complexType>
    ...   </xs:element>
    ... </xs:schema>'''
    >>> [e.name for e in parse_xsd(xsd)]
    ['Person', 'Name']
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    if _local(root.tag) != "schema":
        raise ParseError(f"root element is {_local(root.tag)!r}, expected 'schema'")
    schema = Schema(name, kind="xml")
    _XsdBuilder(root, schema).build()
    schema.validate()
    return schema


def load_xsd_file(path: str, name: str | None = None) -> Schema:
    """Read an ``.xsd`` file and parse it; schema name defaults to the stem."""
    with open(path, "r", encoding="utf-8") as handle:
        document = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_xsd(document, name=name)
