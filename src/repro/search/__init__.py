"""Schema search: registry indexing, query forms, BM25 ranking."""

from repro.search.index import IndexedSchema, SchemaIndex
from repro.search.query import KeywordQuery, PredicateQuery, SchemaQuery
from repro.search.rank import FragmentHit, SchemaSearchEngine, SearchHit

__all__ = [
    "FragmentHit",
    "IndexedSchema",
    "KeywordQuery",
    "PredicateQuery",
    "SchemaIndex",
    "SchemaQuery",
    "SchemaSearchEngine",
    "SearchHit",
]
