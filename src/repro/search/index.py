"""Inverted index over schema term bags: the registry search substrate.

Section 5: "Complementary search tools are needed to locate potential match
candidates from a larger pool of schemata."  The index treats each schema as
a document of pipeline-normalised terms (names + documentation) and keeps
per-root sub-documents so fragment search can return schema *sub-trees*,
which the paper calls out as the more sophisticated variant.

Two kinds of callers feed the index:

* ad-hoc registries (the CLI ``search`` command, examples) call
  :meth:`SchemaIndex.add` with live :class:`~repro.schema.schema.Schema`
  objects and get the full feature set, including fragment search and
  predicate gating;
* :class:`repro.corpus.CorpusIndex` -- the persistent index over a
  :class:`~repro.repository.store.MetadataRepository` that prunes
  candidates for ``MatchService.corpus_match`` -- calls
  :meth:`SchemaIndex.add_entry` with term statistics reloaded from stored
  fingerprints, so indexing a registered corpus does not re-profile (or
  even deserialise) every schema.

Entries added via :meth:`~SchemaIndex.add_entry` may be *schema-less*
(``entry.schema is None``): they rank in whole-schema search but are
skipped by predicate gating and fragment search, both of which need the
live schema.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.matchers.profile import build_profile
from repro.schema.schema import Schema

__all__ = ["IndexedSchema", "SchemaIndex", "schema_terms"]


def schema_terms(schema: Schema) -> tuple[Counter, dict[str, Counter]]:
    """A schema's term bag and per-root sub-bags (the index document).

    One linguistic-pipeline pass over the schema profile; this is the
    derivation :class:`repro.corpus.CorpusIndex` fingerprints persist so it
    runs once per registered schema, not once per process.
    """
    profile = build_profile(schema)
    terms: Counter = Counter()
    root_terms: dict[str, Counter] = {}
    root_of_position: list[str | None] = []
    for position, element_id in enumerate(profile.element_ids):
        cursor = position
        while profile.parent_index[cursor] != -1:
            cursor = profile.parent_index[cursor]
        root_of_position.append(profile.element_ids[cursor])
    for position in range(len(profile)):
        element_terms = profile.text_terms[position]
        terms.update(element_terms)
        root_id = root_of_position[position]
        root_terms.setdefault(root_id, Counter()).update(element_terms)
    return terms, root_terms


@dataclass
class IndexedSchema:
    """Cached term statistics for one registered schema.

    ``schema`` is ``None`` for entries rebuilt from persisted fingerprints
    (see module docstring); ``root_terms`` may be empty for the same
    reason.
    """

    name: str
    schema: Schema | None
    terms: Counter
    n_terms: int
    root_terms: dict[str, Counter] = field(default_factory=dict)


class SchemaIndex:
    """An inverted index from terms to the schemata (and roots) using them."""

    def __init__(self) -> None:
        self._schemata: dict[str, IndexedSchema] = {}
        self._postings: dict[str, set[str]] = {}
        #: Running sum of every entry's n_terms: average_length in O(1)
        #: (exact -- an integer sum, not a float accumulator).
        self._total_terms = 0

    def add(self, schema: Schema, name: str | None = None) -> IndexedSchema:
        """Index one live schema; re-adding a name replaces the old entry."""
        schema_name = name if name is not None else schema.name
        terms, root_terms = schema_terms(schema)
        return self.add_entry(schema_name, terms, root_terms=root_terms, schema=schema)

    def add_entry(
        self,
        name: str,
        terms: Counter,
        root_terms: dict[str, Counter] | None = None,
        schema: Schema | None = None,
    ) -> IndexedSchema:
        """Index precomputed term statistics (the fingerprint-reload path)."""
        if name in self._schemata:
            self.remove(name)
        entry = IndexedSchema(
            name=name,
            schema=schema,
            terms=terms,
            n_terms=sum(terms.values()),
            root_terms=root_terms if root_terms is not None else {},
        )
        self._schemata[name] = entry
        self._total_terms += entry.n_terms
        for term in terms:
            self._postings.setdefault(term, set()).add(name)
        return entry

    def remove(self, name: str) -> None:
        entry = self._schemata.pop(name, None)
        if entry is None:
            return
        self._total_terms -= entry.n_terms
        for term in entry.terms:
            posting = self._postings.get(term)
            if posting is not None:
                posting.discard(name)
                if not posting:
                    del self._postings[term]

    def entry(self, name: str) -> IndexedSchema:
        try:
            return self._schemata[name]
        except KeyError:
            raise KeyError(f"schema {name!r} is not indexed") from None

    def __len__(self) -> int:
        return len(self._schemata)

    def __contains__(self, name: str) -> bool:
        return name in self._schemata

    @property
    def names(self) -> list[str]:
        return list(self._schemata)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def posting(self, term: str) -> frozenset[str] | set[str]:
        """The names using a term (the live set -- callers must not mutate).

        The sharded corpus scorer walks postings directly to merge shard
        statistics without copying; everyone else should prefer
        :meth:`candidates`.
        """
        return self._postings.get(term, frozenset())

    def candidates(self, terms: Counter) -> set[str]:
        """Schemata sharing at least one query term (posting union)."""
        found: set[str] = set()
        for term in terms:
            found |= self._postings.get(term, set())
        return found

    def total_terms(self) -> int:
        """Exact sum of every entry's term count (integer, O(1))."""
        return self._total_terms

    def average_length(self) -> float:
        if not self._schemata:
            return 0.0
        return self._total_terms / len(self._schemata)

    def clone(self) -> "SchemaIndex":
        """A structurally independent copy sharing the (immutable) entries.

        Entries are never mutated in place (re-adding a name builds a new
        :class:`IndexedSchema`), so the copy shares them; the posting sets
        are copied so adds/removes on either index never leak into the
        other.  This is the rebuild-aside half of the corpus index's
        atomic-publish refresh: clone, mutate the clone, swap.
        """
        copied = SchemaIndex()
        copied._schemata = dict(self._schemata)
        copied._postings = {
            term: set(names) for term, names in self._postings.items()
        }
        copied._total_terms = self._total_terms
        return copied
