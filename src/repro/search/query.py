"""Query specifications for schema search.

Section 5: "These would take, as input, a query specification (e.g., an
example schema, predicates over schema characteristics, example instance
values)."  Three query forms:

* :class:`KeywordQuery` -- free text ("blood test patient");
* :class:`SchemaQuery` -- schema-as-query: "simply use one's target schema
  as the 'query term'" (section 2);
* :class:`PredicateQuery` -- structural predicates (size band, kind) that
  gate the candidate set before ranking.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.matchers.profile import build_profile
from repro.schema.schema import Schema
from repro.text.pipeline import LinguisticPipeline

__all__ = ["KeywordQuery", "SchemaQuery", "PredicateQuery"]


@dataclass(frozen=True)
class KeywordQuery:
    """Free-text search terms, run through the documentation pipeline."""

    text: str

    def terms(self) -> Counter:
        pipeline = LinguisticPipeline.for_documentation()
        return Counter(pipeline.terms(self.text))


class SchemaQuery:
    """Use a whole schema (names + documentation) as the query term."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def terms(self) -> Counter:
        profile = build_profile(self.schema)
        counts: Counter = Counter()
        for element_terms in profile.text_terms:
            counts.update(element_terms)
        return counts


@dataclass(frozen=True)
class PredicateQuery:
    """Structural predicates over schema characteristics.

    Any field left at None is unconstrained.  Used to gate candidates, not
    to rank them; combine with a keyword or schema query for ranking.
    """

    min_elements: int | None = None
    max_elements: int | None = None
    kind: str | None = None

    def admits(self, schema: Schema) -> bool:
        if self.min_elements is not None and len(schema) < self.min_elements:
            return False
        if self.max_elements is not None and len(schema) > self.max_elements:
            return False
        if self.kind is not None and schema.kind != self.kind:
            return False
        return True
