"""Ranking: BM25 scoring of registry schemata against a query.

"A simple search tool would return a list of schemata sorted by relevance to
the query; a more sophisticated one could return relevant schema fragments"
(section 5).  Both are provided: :meth:`SchemaSearchEngine.search` ranks
whole schemata, :meth:`SchemaSearchEngine.search_fragments` ranks sub-trees.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.search.index import SchemaIndex
from repro.search.query import KeywordQuery, PredicateQuery, SchemaQuery

__all__ = ["SearchHit", "FragmentHit", "SchemaSearchEngine"]


@dataclass(frozen=True)
class SearchHit:
    """One ranked schema."""

    schema_name: str
    score: float


@dataclass(frozen=True)
class FragmentHit:
    """One ranked sub-tree (root element) within a schema."""

    schema_name: str
    root_id: str
    root_name: str
    score: float


class SchemaSearchEngine:
    """BM25 search over a :class:`~repro.search.index.SchemaIndex`."""

    def __init__(self, index: SchemaIndex, k1: float = 1.5, b: float = 0.75):
        if k1 <= 0:
            raise ValueError(f"k1 must be positive, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.index = index
        self.k1 = k1
        self.b = b

    def _idf(self, term: str) -> float:
        n = len(self.index)
        df = self.index.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def _bm25(self, query_terms: Counter, document: Counter, doc_length: int) -> float:
        average_length = self.index.average_length() or 1.0
        score = 0.0
        for term, query_count in query_terms.items():
            term_frequency = document.get(term, 0)
            if term_frequency == 0:
                continue
            idf = self._idf(term)
            numerator = term_frequency * (self.k1 + 1)
            denominator = term_frequency + self.k1 * (
                1 - self.b + self.b * doc_length / average_length
            )
            score += idf * numerator / denominator * min(query_count, 3)
        return score

    def search(
        self,
        query: KeywordQuery | SchemaQuery,
        limit: int = 10,
        predicate: PredicateQuery | None = None,
        exclude: str | None = None,
    ) -> list[SearchHit]:
        """Rank registry schemata; ``exclude`` drops the query schema itself."""
        query_terms = query.terms()
        hits: list[SearchHit] = []
        for name in self.index.candidates(query_terms):
            if name == exclude:
                continue
            entry = self.index.entry(name)
            if predicate is not None:
                if entry.schema is None:
                    raise ValueError(
                        f"predicate gating needs a live schema, but {name!r} "
                        "was indexed from a fingerprint (schema-less entry)"
                    )
                if not predicate.admits(entry.schema):
                    continue
            score = self._bm25(query_terms, entry.terms, entry.n_terms)
            if score > 0:
                hits.append(SearchHit(schema_name=name, score=score))
        hits.sort(key=lambda hit: (-hit.score, hit.schema_name))
        return hits[:limit]

    def search_fragments(
        self,
        query: KeywordQuery | SchemaQuery,
        limit: int = 10,
        exclude: str | None = None,
    ) -> list[FragmentHit]:
        """Rank sub-trees (concept roots) across the whole registry."""
        query_terms = query.terms()
        hits: list[FragmentHit] = []
        for name in self.index.candidates(query_terms):
            if name == exclude:
                continue
            entry = self.index.entry(name)
            if entry.schema is None:
                continue  # fragment hits need root names from the live schema
            for root_id, root_counter in entry.root_terms.items():
                score = self._bm25(
                    query_terms, root_counter, sum(root_counter.values())
                )
                if score > 0:
                    hits.append(
                        FragmentHit(
                            schema_name=name,
                            root_id=root_id,
                            root_name=entry.schema.element(root_id).name,
                            score=score,
                        )
                    )
        hits.sort(key=lambda hit: (-hit.score, hit.schema_name, hit.root_id))
        return hits[:limit]
