"""The serving tier: MATCH as shared, continuously available infrastructure.

The paper's enterprise framing demands more than a library -- matching is
a *service* many users and applications hit concurrently against one
repository.  This package is that tier, stdlib-only:

* :class:`MatchServer` -- a ``ThreadingHTTPServer`` JSON API over one
  shared :class:`~repro.service.MatchService` (``/match``,
  ``/corpus-match``, ``/network-match``, ``/schemas``, ``/healthz``,
  ``/metrics``), with the typed request/response envelopes as the wire
  protocol;
* :class:`ResponseCache` -- generation-aware caching: responses are keyed
  on the canonical request hash and invalidated by the repository's
  ``generation`` / ``match_generation`` clocks, so repeated queries are
  O(lookup) and writes can never be answered stale;
* :class:`MatchServiceClient` -- the urllib client speaking the same
  typed envelopes;
* :func:`serve_until_shutdown` -- SIGINT/SIGTERM graceful shutdown that
  drains in-flight requests (wrapped by the ``repro serve`` CLI);
* :func:`serve_process_pool` -- prefork process-pool serving: N workers
  share one listening socket and one pooled-WAL SQLite store, with the
  DB-backed clocks keeping every worker's response cache exact
  (``repro serve --workers N``);
* :mod:`repro.server.distcache` -- the distributed cache tier: the
  :class:`CacheBackend` protocol, a shared loopback TCP cache server
  (``repro cache-serve``) any number of replicas mount via
  :class:`RemoteCache` or the two-level :class:`TieredCache`, write
  nudges that evict by clock watermark fleet-wide, and cache warming
  from the repository's hottest recorded request hashes (bench E22).

The tier is fully instrumented by :mod:`repro.telemetry`: every POST runs
under an (optional) span tree surfaced via ``X-Harmonia-Trace`` and the
envelope's ``trace`` block, ``/metrics`` reports per-endpoint and per-span
latency histograms (p50/p95/p99), slow requests export as JSONL trace
logs (``repro serve --trace-log``), and prefork pools aggregate all
workers' counters through one mmap-backed fleet-stats file -- see
``docs/observability.md``.

Bench E19 measures the tier (multi-client throughput, cold-vs-warm-cache
speedup, invalidation correctness); ``docs/serving.md`` documents the
endpoints, cache semantics, and deployment notes.
"""

from repro.server.app import MatchServer, ServerMetrics, serve_until_shutdown
from repro.server.cache import CacheStats, ResponseCache, canonical_request_key
from repro.server.client import MatchServerError, MatchServiceClient
from repro.server.distcache import (
    CacheBackend,
    CacheServer,
    RemoteCache,
    TieredCache,
    attach_cache_nudge,
    build_cache,
    warm_cache,
)
from repro.server.procpool import serve_process_pool

__all__ = [
    "CacheBackend",
    "CacheServer",
    "CacheStats",
    "MatchServer",
    "MatchServerError",
    "MatchServiceClient",
    "RemoteCache",
    "ResponseCache",
    "ServerMetrics",
    "TieredCache",
    "attach_cache_nudge",
    "build_cache",
    "canonical_request_key",
    "serve_process_pool",
    "serve_until_shutdown",
    "warm_cache",
]
