"""Match-as-a-service: the concurrent HTTP front of the MatchService.

Smith et al. frame enterprise schema matching as shared infrastructure --
"hundreds to thousands of schemata" served to many users and applications
continuously, not a desktop tool run once.  :class:`MatchServer` is that
serving tier, stdlib-only (``http.server.ThreadingHTTPServer``):

============  ======  ====================================================
endpoint      method  body / response
============  ======  ====================================================
``/match``          POST    :class:`~repro.service.requests.MatchRequest`
                            ``.to_dict()`` in, ``MatchResponse`` envelope out
``/corpus-match``   POST    ``CorpusMatchRequest`` in, ``CorpusMatchResponse`` out
``/network-match``  POST    ``NetworkMatchRequest`` in, ``NetworkMatchResponse`` out
``/schemas``        GET     the registered schema names
``/healthz``        GET     liveness + version + repository clocks + cache stats
``/metrics``        GET     per-endpoint request/latency/cache counters
============  ======  ====================================================

Every worker thread shares ONE :class:`~repro.service.MatchService` --
one profile cache, one feature space, one corpus index, one mapping graph
-- which is exactly why those caches are lock-protected.  Responses are
cached in a generation-aware :class:`~repro.server.cache.ResponseCache`:
repeated and near-repeated queries are one dict lookup, while any write to
the bound repository (register, unregister, store_matches) moves a clock
and lazily sweeps the stale entries.  The ``X-Harmonia-Cache`` response
header says whether a POST was served ``hit`` or ``miss``.

Error mapping: undecodable JSON or an invalid request body is 400, an
unregistered schema name is 404, an unknown path is 404, anything
unexpected is 500 -- always as an ``{"error": ...}`` JSON body.

:func:`serve_until_shutdown` runs a server with SIGINT/SIGTERM graceful
shutdown: the listener stops accepting, in-flight handler threads are
drained (``daemon_threads = False`` + ``block_on_close``), then the socket
closes.  The ``repro serve`` CLI wraps it; see ``docs/serving.md``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro import __version__
from repro.server.cache import ResponseCache, canonical_request_key
from repro.service import (
    CorpusMatchRequest,
    MatchRequest,
    MatchService,
    NetworkMatchRequest,
)
from repro.telemetry import (
    BUCKET_BOUNDS_SECONDS,
    FleetStats,
    StatsBoard,
    Trace,
    TraceLogWriter,
    Tracer,
    activate_trace,
    span,
)

__all__ = [
    "MatchServer",
    "ServerMetrics",
    "endpoint_clocks",
    "endpoint_executor",
    "serve_until_shutdown",
]


def endpoint_clocks(repository, endpoint: str) -> tuple:
    """The staleness watermark a response of this endpoint depends on.

    ``/match`` output is a function of the registry contents only
    (``generation``); corpus and network matching also fold stored
    matches in (``match_generation``).  Without a repository nothing a
    response depends on can change, so the watermark is constant.

    Shared between the live request path (:meth:`MatchServer.clocks`)
    and cache warming (:func:`repro.server.distcache.warm_cache`) so a
    warmed entry is watermarked exactly as a served one would be.
    """
    if repository is None:
        return (None, None)
    generation, match_generation = repository.clocks()
    if endpoint == "/match":
        return (generation, None)
    return (generation, match_generation)


def endpoint_executor(service: MatchService, endpoint: str):
    """The service method serving one POST endpoint (None if unknown)."""
    return {
        "/match": service.match,
        "/corpus-match": service.corpus_match,
        "/network-match": service.network_match,
    }.get(endpoint)


class ServerMetrics:
    """Thread-safe per-endpoint metrics over a telemetry stats board.

    The flat counters of earlier versions (requests, errors,
    seconds_total, cache_hits, cache_misses) are preserved per endpoint,
    now joined by a fixed-bucket latency histogram (``latency`` block
    with p50/p95/p99) and per-span-kind histograms.  Storage is a
    :class:`repro.telemetry.StatsBoard` -- a private in-memory region for
    a threaded server, or a worker's region of the shared fleet stats
    file under prefork serving, which is what lets any worker's
    ``/metrics`` report exact fleet totals.
    """

    def __init__(self, board: StatsBoard | None = None) -> None:
        self.board = board if board is not None else StatsBoard()

    def record(
        self,
        endpoint: str,
        seconds: float,
        status: int,
        cache: str | None = None,
    ) -> None:
        self.board.record_endpoint(
            endpoint, seconds, error=status >= 400, cache=cache
        )

    def record_trace(self, payload: Mapping[str, Any]) -> None:
        """Fold one serialised trace into the per-span-kind histograms."""
        self.board.record_trace(payload)

    def to_dict(self) -> dict[str, dict[str, float]]:
        return self.board.snapshot()["endpoints"]


class MatchServer(ThreadingHTTPServer):
    """The threaded JSON front of one shared :class:`MatchService`.

    Parameters
    ----------
    service:
        The service every handler thread shares.  Bind it to a
        :class:`~repro.repository.store.MetadataRepository` for by-name
        requests, ``/corpus-match``, ``/network-match``, and cache
        invalidation on writes.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (the actual one
        is on :attr:`port` / :attr:`url`).  A port already in use raises
        ``OSError`` here, which the CLI maps to exit status 2.
    cache_size:
        LRU bound of the response cache.
    cache:
        A ready :class:`~repro.server.distcache.CacheBackend` to serve
        from instead of a private in-process LRU -- how a replica joins
        the distributed cache tier (``serve --cache-url`` builds a
        :class:`~repro.server.distcache.TieredCache` here).  When given,
        ``cache_size`` is ignored.
    warm_limit:
        Replay this many of the repository's hottest recorded requests
        into the cache before serving (0 = no warming; see
        :func:`~repro.server.distcache.warm_cache`).
    hot_flush_every:
        Flush accumulated request-hash counters to the repository's
        ``request_stats`` table after this many POSTs (and always on
        close), keeping the warming source fresh without a database
        write per request.
    quiet:
        Suppress the per-request access log (default); set False to log
        to stderr as ``http.server`` normally does.
    trace_log / slow_ms:
        When ``trace_log`` names a path, requests slower than ``slow_ms``
        milliseconds append their serialised span tree there as JSONL
        (``repro trace`` summarizes the file).  Server-side traces are
        sampled through the service's tracer whether or not the client
        opted in via ``MatchOptions.trace``.
    trace_sample:
        Replace the service's tracer with one sampling this fraction of
        requests (applies to both client opt-ins and the slow-request
        log); ``None`` keeps the service's tracer as-is.
    fleet / fleet_index:
        A :class:`repro.telemetry.FleetStats` mapping (and this worker's
        region index) under prefork serving: metrics record into the
        shared region and ``/metrics`` reports per-worker blocks plus
        exact fleet totals.  ``None`` keeps metrics process-private.
    listen_socket:
        An already-bound, already-listening socket to adopt instead of
        binding ``host:port``.  This is how process-pool workers share
        ONE listening socket: the parent binds before forking, every
        worker adopts the inherited socket, and the kernel's accept queue
        load-balances connections across workers (see
        :mod:`repro.server.procpool`).
    """

    #: Graceful shutdown: in-flight handler threads are joined by
    #: ``server_close`` instead of being killed with the process.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        service: MatchService,
        host: str = "127.0.0.1",
        port: int = 8765,
        cache_size: int = 1024,
        quiet: bool = True,
        listen_socket: socket.socket | None = None,
        cache=None,
        warm_limit: int = 0,
        hot_flush_every: int = 64,
        trace_log: str | None = None,
        slow_ms: float = 250.0,
        trace_sample: float | None = None,
        fleet: FleetStats | None = None,
        fleet_index: int = 0,
    ):
        from repro.server.distcache import attach_cache_nudge, warm_cache

        self.service = service
        self.cache = cache if cache is not None else ResponseCache(
            max_entries=cache_size
        )
        if trace_sample is not None:
            service.tracer = Tracer(sample_rate=trace_sample)
        self.trace_writer = (
            TraceLogWriter(trace_log, slow_ms=slow_ms)
            if trace_log is not None
            else None
        )
        self.fleet = fleet
        self.fleet_index = fleet_index
        if fleet is not None:
            board = fleet.worker_board(fleet_index)
            board.set_pid(os.getpid())
            self.metrics = ServerMetrics(board)
        else:
            self.metrics = ServerMetrics()
        self.quiet = quiet
        self.started_at = time.perf_counter()
        # Operators correlate this with external logs; it never enters a
        # duration computation (uptime uses perf_counter above).
        self.started_at_unix = time.time()  # wall clock on purpose
        # Hot-request tracking: per-key counters accumulate in memory and
        # flush to the repository in batches -- the warming source for
        # the NEXT replica to start.
        self.hot_flush_every = hot_flush_every
        self._hot_lock = threading.Lock()
        self._hot_requests: dict[str, list] = {}
        self._hot_pending = 0
        # Nudge: writes through THIS process's repository broadcast their
        # post-write clocks into the cache tier (shared tiers are thereby
        # swept for the whole fleet).  Lost nudges are safe: every lookup
        # still validates clocks.
        self._nudge = None
        if service.repository is not None:
            self._nudge = attach_cache_nudge(service.repository, self.cache)
        self.warmed_entries = warm_cache(service, self.cache, warm_limit)
        if listen_socket is None:
            super().__init__((host, port), MatchRequestHandler)
        else:
            address = listen_socket.getsockname()[:2]
            super().__init__(address, MatchRequestHandler, bind_and_activate=False)
            # Adopt the shared socket: close the unbound placeholder the
            # TCPServer constructor made, take over the inherited one, and
            # fill in what server_bind would have derived.  No activate --
            # the parent already called listen().
            self.socket.close()
            self.socket = listen_socket
            self.server_name, self.server_port = address

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def clocks(self, endpoint: str) -> tuple:
        """The staleness watermark a response of this endpoint depends on.

        ``/match`` output is a function of the registry contents only
        (``generation``); corpus and network matching also fold stored
        matches in (``match_generation``).  Without a repository nothing a
        response depends on can change, so the watermark is constant.

        The clocks come from the repository *backend* -- on a file-backed
        store they are persisted and transactional with writes, so under
        process-pool serving a write in ANY process moves the watermark
        every worker reads, and no worker's cache can serve stale.
        """
        return endpoint_clocks(self.service.repository, endpoint)

    # ------------------------------------------------------------------
    # Hot-request tracking (the cache-warming source)
    # ------------------------------------------------------------------
    def note_request(self, key: str, endpoint: str, payload: dict) -> None:
        """Count one request hash; flush to the repository in batches."""
        if self.service.repository is None:
            return
        with self._hot_lock:
            record = self._hot_requests.get(key)
            if record is None:
                self._hot_requests[key] = [endpoint, payload, 1]
            else:
                record[2] += 1
            self._hot_pending += 1
            due = self._hot_pending >= self.hot_flush_every
        if due:
            self.flush_hot_requests()

    def flush_hot_requests(self) -> None:
        """Write accumulated request counters to the repository now.

        One bulk upsert per flush, outside the counter lock; a flush that
        fails (store closing under us at shutdown) re-queues nothing --
        request stats are best-effort observability, never worth failing
        a request or a shutdown over.
        """
        repository = self.service.repository
        if repository is None:
            return
        with self._hot_lock:
            if not self._hot_requests:
                return
            batch = [
                (key, endpoint, payload, count)
                for key, (endpoint, payload, count) in self._hot_requests.items()
            ]
            self._hot_requests = {}
            self._hot_pending = 0
        try:
            repository.record_requests(batch)
        except Exception:
            pass

    def server_close(self) -> None:
        """Flush warming counters, detach the nudge, release the cache."""
        try:
            self.flush_hot_requests()
        finally:
            if self._nudge is not None and self.service.repository is not None:
                self.service.repository.remove_write_listener(self._nudge)
            if self.trace_writer is not None:
                self.trace_writer.close()
            if self.fleet is not None:
                self.fleet.close()
            self.cache.close()
            super().server_close()

    def sync_gauges(self) -> None:
        """Mirror cache/cascade/corpus gauges into the fleet stats region.

        A no-op without a fleet mapping: the threaded server reads those
        blocks live, only prefork workers need them published where other
        workers can sum them.
        """
        if self.fleet is None:
            return
        stats = self.cache.stats.to_dict()
        stats["entries"] = len(self.cache)
        corpus = self.service.corpus_status()
        self.metrics.board.set_gauges(
            cache=stats,
            cascade=self.service.cascade_status(),
            corpus={
                "initialized": 1 if corpus.get("initialized") else 0,
                "n_indexed": corpus.get("n_indexed", 0),
            },
        )

    def cache_payload(self) -> dict[str, Any]:
        """The cache block of /healthz and /metrics: aggregate + per-tier."""
        stats = self.cache.stats
        return {
            "entries": len(self.cache),
            **stats.to_dict(),
            "warm_hit_ratio": stats.hit_rate,
            "warmed_entries": self.warmed_entries,
            "tier": self.cache.describe(),
        }

    # ------------------------------------------------------------------
    # Endpoint payloads (called by the handler; all return JSON dicts)
    # ------------------------------------------------------------------
    def healthz_payload(self) -> dict[str, Any]:
        repository = self.service.repository
        generation, match_generation = (
            repository.clocks() if repository is not None else (None, None)
        )
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.perf_counter() - self.started_at,
            "started_at_unix": self.started_at_unix,
            "repository": {
                "bound": repository is not None,
                "n_registered": len(repository) if repository is not None else 0,
                "generation": generation,
                "match_generation": match_generation,
                "backend": (
                    repository.describe_backend() if repository is not None else None
                ),
            },
            "cache": self.cache_payload(),
            "corpus": self.service.corpus_status(),
            "cascade": self.service.cascade_status(),
        }

    def metrics_payload(self) -> dict[str, Any]:
        self.sync_gauges()
        snapshot = self.metrics.board.snapshot()
        payload = {
            "endpoints": snapshot["endpoints"],
            "spans": snapshot["spans"],
            "latency_bucket_bounds": list(BUCKET_BOUNDS_SECONDS),
            "cache": self.cache_payload(),
            "corpus": self.service.corpus_status(),
            "cascade": self.service.cascade_status(),
        }
        if self.fleet is not None:
            payload["fleet"] = self.fleet.payload()
        return payload

    def schemas_payload(self) -> dict[str, Any]:
        repository = self.service.repository
        names = sorted(repository.schema_names()) if repository is not None else []
        return {"n_registered": len(names), "names": names}


class _RequestError(Exception):
    """An error with a definite HTTP status (raised by decode/execute)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths onto the shared service, with caching."""

    server: MatchServer
    #: Keep-alive with explicit Content-Length on every response.
    protocol_version = "HTTP/1.1"
    #: Socket timeout: an idle keep-alive connection releases its handler
    #: thread after this long, bounding how long graceful shutdown (which
    #: joins every handler thread) can wait on a silent client.
    timeout = 10

    _GET_ROUTES = {
        "/healthz": "healthz_payload",
        "/metrics": "metrics_payload",
        "/schemas": "schemas_payload",
    }

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _respond(
        self,
        status: int,
        payload: dict,
        cache: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if cache is not None:
            self.send_header("X-Harmonia-Cache", cache)
        if trace_id is not None:
            self.send_header("X-Harmonia-Trace", trace_id)
        self.end_headers()
        self.wfile.write(body)

    # -- GET ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        path = self.path.split("?", 1)[0]
        route = self._GET_ROUTES.get(path)
        if route is None:
            status, payload = 404, {"error": f"unknown endpoint {path!r}"}
        else:
            status, payload = 200, getattr(self.server, route)()
        # Record before responding: once the client has the reply, a
        # follow-up /metrics read must already see this request counted.
        # Unknown paths bucket under one key so a URL-sweeping client
        # cannot grow the metrics map without bound.
        self.server.metrics.record(
            path if route is not None else "(unknown)",
            time.perf_counter() - started,
            status,
        )
        self._respond(status, payload)

    # -- POST -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        path = self.path.split("?", 1)[0]
        cache_status: str | None = None
        ambient: Trace | None = None
        try:
            status, payload, cache_status, ambient = self._execute(path)
        except _RequestError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # pragma: no cover - defensive 500
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - started
        endpoint = (
            path if self._post_executor(path) is not None else "(unknown)"
        )
        # Record before responding (see do_GET); unknown paths bucket.
        self.server.metrics.record(endpoint, elapsed, status, cache=cache_status)
        # The trace to report.  A cache hit replays the STORED envelope's
        # trace (that is the execution the response describes -- the
        # ambient hit-path trace is a lone cache.get and is never folded
        # anywhere).  On fresh executions the ambient trace is preferred:
        # the envelope's trace block is a snapshot taken BEFORE the
        # response was cached, so only the ambient copy (the same trace,
        # serialised later) carries the cache.put span.
        trace_payload: dict | None = None
        envelope_trace = (
            payload.get("trace")
            if status == 200 and isinstance(payload, Mapping)
            else None
        )
        if cache_status == "hit" and envelope_trace:
            trace_payload = envelope_trace
        elif ambient is not None and len(ambient):
            trace_payload = ambient.to_dict()
        elif envelope_trace:
            trace_payload = envelope_trace
        if trace_payload is not None and cache_status != "hit":
            # Fresh executions only: a cache hit replays a STORED trace --
            # folding it into histograms or the slow log again would count
            # work that did not run.
            self.server.metrics.record_trace(trace_payload)
            if self.server.trace_writer is not None:
                self.server.trace_writer.maybe_write(
                    endpoint, trace_payload, elapsed
                )
        self.server.sync_gauges()
        self._respond(
            status,
            payload,
            cache=cache_status,
            trace_id=(
                trace_payload.get("trace_id") if trace_payload is not None else None
            ),
        )

    def _execute(
        self, path: str
    ) -> tuple[int, dict, str | None, "Trace | None"]:
        executor = self._post_executor(path)
        if executor is None:
            # Drain the body first: with keep-alive, leaving declared
            # Content-Length bytes unread would desynchronise the next
            # request on this connection.
            self._read_body()
            raise _RequestError(404, f"unknown endpoint {path!r}")
        request = self._decode_request(path)
        normalised = request.to_dict()
        key = canonical_request_key(path, normalised)
        # Counted hit or miss: warming replays what clients actually ask.
        self.server.note_request(key, path, normalised)
        # Captured BEFORE execution: a write landing mid-computation makes
        # the stored watermark stale, so the entry invalidates on its next
        # lookup instead of serving pre-write knowledge.
        clocks = self.server.clocks(path)
        # Server-side sampling: with a slow-request log configured, open a
        # trace for this request whether or not the client opted in -- the
        # service reuses it, and every span site below records into it.
        ambient: Trace | None = None
        if (
            self.server.trace_writer is not None
            and self.server.service.tracer.sample()
        ):
            ambient = Trace()
        with activate_trace(ambient):
            with span("cache.get"):
                cached = self.server.cache.get(key, clocks)
            if cached is not None:
                return 200, cached, "hit", ambient
            try:
                envelope = executor(request).to_dict()
            except KeyError as exc:
                raise _RequestError(404, f"not registered: {exc}") from exc
            except (ValueError, TypeError) as exc:
                raise _RequestError(400, str(exc)) from exc
            with span("cache.put"):
                self.server.cache.put(key, envelope, clocks)
        return 200, envelope, "miss", ambient

    def _post_executor(self, path: str) -> Callable | None:
        return endpoint_executor(self.server.service, path)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _decode_request(self, path: str):
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _RequestError(400, f"request body is not JSON: {exc}") from exc
        request_type = {
            "/match": MatchRequest,
            "/corpus-match": CorpusMatchRequest,
            "/network-match": NetworkMatchRequest,
        }[path]
        try:
            request = request_type.from_dict(payload)
            if not isinstance(payload, Mapping) or "options" not in payload:
                # A body that names no options inherits the SERVER's
                # defaults (what `repro serve --threshold` configures),
                # not the library defaults from_dict would fill in.
                request = replace(request, options=self.server.service.options)
            return request
        except (KeyError, TypeError, ValueError) as exc:
            raise _RequestError(
                400, f"invalid {request_type.__name__} body: {exc}"
            ) from exc


def serve_until_shutdown(
    server: MatchServer,
    install_signals: bool = True,
    announce: Callable[[MatchServer], None] | None = None,
) -> None:
    """Run ``server`` until SIGINT/SIGTERM, then drain and close it.

    The accept loop runs on a worker thread while this (main) thread waits
    on a stop event set by the signal handlers -- ``shutdown()`` must not
    be called from the thread running ``serve_forever``.  On stop, the
    listener closes first, then every in-flight handler thread is joined
    (``daemon_threads = False``), so accepted requests always get their
    response before the process exits.  ``install_signals=False`` (for
    callers not on the main thread, e.g. tests) leaves signal handlers
    alone; trigger shutdown with ``server.shutdown()`` instead.
    """
    stop = threading.Event()
    previous: dict[int, Any] = {}
    if install_signals:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, lambda *_: stop.set())
    worker = threading.Thread(
        target=server.serve_forever, name="harmonia-serve", daemon=True
    )
    worker.start()
    try:
        if announce is not None:
            announce(server)
        stop.wait()
    finally:
        server.shutdown()
        worker.join()
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
