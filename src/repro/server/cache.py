"""Generation-aware response caching for the serving tier.

The paper's section-5 workload is *repetitive*: the same registered pairs
are matched again and again by different users and applications, and the
repository changes far less often than it is queried.  The serving tier
exploits that with a response cache that is

* **keyed on the canonical request hash** -- the SHA-256 of the endpoint
  plus the request's normalised ``to_dict()`` form, serialised with sorted
  keys.  Two requests that differ only in JSON formatting, key order, or
  explicitly-spelled-out defaults hash identically, so *near-repeated*
  queries hit too;
* **invalidated by the repository's monotone clocks** -- every entry
  records the ``(generation, match_generation)`` pair it was computed
  under (captured *before* execution, so a write racing the computation
  can only over-invalidate, never serve stale).  A lookup whose current
  clocks differ evicts the entry and recomputes: a freshly registered
  schema or a newly stored match set can never be answered with pre-write
  knowledge;
* **bounded** -- least-recently-used entries are evicted beyond
  ``max_entries``.

The cache stores plain response dicts (the JSON envelopes), never live
objects, so a hit is one lock-protected dict lookup plus serialisation.
Cache semantics are documented for operators in ``docs/serving.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, NamedTuple

__all__ = [
    "CacheStats",
    "ResponseCache",
    "canonical_request_key",
    "clocks_outdated",
]

#: The staleness watermark an entry is stored under: the repository's
#: ``(generation, match_generation)`` at compute time.  ``None`` components
#: mean "this endpoint/service does not depend on that clock" (e.g. a
#: repository-less service), which compares equal forever -- exactly right,
#: since nothing those responses depend on can change.
Clocks = tuple


def canonical_request_key(endpoint: str, payload: dict) -> str:
    """The cache key for one request: SHA-256 over canonical JSON.

    ``payload`` should be the *normalised* request form (a parsed request's
    ``to_dict()``), not the raw wire bytes, so equivalent requests collide.
    """
    canonical = json.dumps(
        {"endpoint": endpoint, "request": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters one cache backend has accumulated.

    ``errors`` counts transport failures talking to a *remote* tier (see
    :mod:`repro.server.distcache`); the in-process cache never errors, so
    it stays 0 here.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0     # entries evicted because a clock moved
    evictions: int = 0         # entries evicted by the LRU bound
    errors: int = 0            # degraded lookups (remote tier unreachable)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheStats":
        """Rebuild from :meth:`to_dict` (the cache-server wire form)."""
        return cls(
            hits=payload.get("hits", 0),
            misses=payload.get("misses", 0),
            invalidations=payload.get("invalidations", 0),
            evictions=payload.get("evictions", 0),
            errors=payload.get("errors", 0),
        )


class _Entry(NamedTuple):
    value: Any
    clocks: Clocks


def clocks_outdated(entry_clocks: Clocks, watermark: Clocks) -> bool:
    """True if an entry stored under ``entry_clocks`` predates ``watermark``.

    Component-wise: a ``None`` on either side means "does not depend on /
    does not constrain that clock" and never outdates.  This is the
    *eviction* predicate of the nudge broadcast -- per-lookup validation
    stays exact equality (``entry.clocks != clocks``), which also catches
    clock regressions from a restored-from-backup store.
    """
    return any(
        entry is not None and mark is not None and entry < mark
        for entry, mark in zip(entry_clocks, watermark)
    )


class ResponseCache:
    """A lock-protected, clock-validated, LRU-bounded response cache.

    This is also the in-process implementation of the
    :class:`~repro.server.distcache.CacheBackend` protocol (``get`` /
    ``put`` / ``evict_watermark`` / ``stats`` / ``describe``), the local
    tier of the distributed cache, and the store inside the shared
    ``repro cache-serve`` server.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: Per-live-entry hit counts (dropped with the entry, so the map
        #: is bounded by max_entries) -- the ``hot_keys`` observability.
        self._hits_by_key: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def lookup(self, key: str, clocks: Clocks) -> Any | None:
        """The cached value, or None on miss / clock-invalidated entry.

        An entry computed under different clocks is *deleted* on sight
        (counted as an invalidation), so one write sweeps stale answers
        out lazily as they are asked for again.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats = replace(self._stats, misses=self._stats.misses + 1)
                return None
            if entry.clocks != clocks:
                del self._entries[key]
                self._hits_by_key.pop(key, None)
                self._stats = replace(
                    self._stats,
                    misses=self._stats.misses + 1,
                    invalidations=self._stats.invalidations + 1,
                )
                return None
            self._entries.move_to_end(key)
            self._hits_by_key[key] = self._hits_by_key.get(key, 0) + 1
            self._stats = replace(self._stats, hits=self._stats.hits + 1)
            return entry.value

    def store(self, key: str, value: Any, clocks: Clocks) -> None:
        """Insert (or refresh) one entry; trims LRU entries beyond the bound."""
        with self._lock:
            self._entries[key] = _Entry(value, clocks)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                dropped, _ = self._entries.popitem(last=False)
                self._hits_by_key.pop(dropped, None)
                evicted += 1
            if evicted:
                self._stats = replace(
                    self._stats, evictions=self._stats.evictions + evicted
                )

    # -- the CacheBackend protocol spellings ---------------------------
    #: ``get``/``put`` are the protocol names (repro.server.distcache);
    #: ``lookup``/``store`` remain as the historical in-process spelling.
    get = lookup
    put = store

    def evict_watermark(self, watermark: Clocks) -> int:
        """Drop every entry stored under clocks older than ``watermark``.

        The receiving end of the write nudge: a repository write
        broadcasts its post-write clocks and each tier sweeps the entries
        that write could have changed *now*, instead of waiting for each
        to be looked up again.  Returns the number evicted (counted as
        invalidations).  A lost nudge costs nothing but that eagerness --
        per-lookup clock validation remains the correctness backstop.
        """
        watermark = tuple(watermark)
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if clocks_outdated(entry.clocks, watermark)
            ]
            for key in stale:
                del self._entries[key]
                self._hits_by_key.pop(key, None)
            if stale:
                self._stats = replace(
                    self._stats,
                    invalidations=self._stats.invalidations + len(stale),
                )
            return len(stale)

    def hot_keys(self, limit: int = 64) -> list[tuple[str, int]]:
        """The ``limit`` most-hit live keys as ``(key, hits)``, hottest first."""
        with self._lock:
            ranked = sorted(
                self._hits_by_key.items(), key=lambda item: (-item[1], item[0])
            )
            return ranked[:limit]

    def clear(self) -> None:
        """Drop every entry (stats survive)."""
        with self._lock:
            self._entries.clear()
            self._hits_by_key.clear()

    def describe(self) -> dict[str, Any]:
        """Operational identity + counters (the /metrics ``tier`` block)."""
        with self._lock:
            return {
                "kind": "local",
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "stats": self._stats.to_dict(),
            }

    def close(self) -> None:
        """Nothing to release (protocol symmetry with the remote tiers)."""
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A point-in-time snapshot of the counters."""
        with self._lock:
            return self._stats
