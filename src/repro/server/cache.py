"""Generation-aware response caching for the serving tier.

The paper's section-5 workload is *repetitive*: the same registered pairs
are matched again and again by different users and applications, and the
repository changes far less often than it is queried.  The serving tier
exploits that with a response cache that is

* **keyed on the canonical request hash** -- the SHA-256 of the endpoint
  plus the request's normalised ``to_dict()`` form, serialised with sorted
  keys.  Two requests that differ only in JSON formatting, key order, or
  explicitly-spelled-out defaults hash identically, so *near-repeated*
  queries hit too;
* **invalidated by the repository's monotone clocks** -- every entry
  records the ``(generation, match_generation)`` pair it was computed
  under (captured *before* execution, so a write racing the computation
  can only over-invalidate, never serve stale).  A lookup whose current
  clocks differ evicts the entry and recomputes: a freshly registered
  schema or a newly stored match set can never be answered with pre-write
  knowledge;
* **bounded** -- least-recently-used entries are evicted beyond
  ``max_entries``.

The cache stores plain response dicts (the JSON envelopes), never live
objects, so a hit is one lock-protected dict lookup plus serialisation.
Cache semantics are documented for operators in ``docs/serving.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, NamedTuple

__all__ = ["CacheStats", "ResponseCache", "canonical_request_key"]

#: The staleness watermark an entry is stored under: the repository's
#: ``(generation, match_generation)`` at compute time.  ``None`` components
#: mean "this endpoint/service does not depend on that clock" (e.g. a
#: repository-less service), which compares equal forever -- exactly right,
#: since nothing those responses depend on can change.
Clocks = tuple


def canonical_request_key(endpoint: str, payload: dict) -> str:
    """The cache key for one request: SHA-256 over canonical JSON.

    ``payload`` should be the *normalised* request form (a parsed request's
    ``to_dict()``), not the raw wire bytes, so equivalent requests collide.
    """
    canonical = json.dumps(
        {"endpoint": endpoint, "request": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters one :class:`ResponseCache` has accumulated."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0     # entries evicted because a clock moved
    evictions: int = 0         # entries evicted by the LRU bound

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _Entry(NamedTuple):
    value: Any
    clocks: Clocks


class ResponseCache:
    """A lock-protected, clock-validated, LRU-bounded response cache."""

    def __init__(self, max_entries: int = 1024):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def lookup(self, key: str, clocks: Clocks) -> Any | None:
        """The cached value, or None on miss / clock-invalidated entry.

        An entry computed under different clocks is *deleted* on sight
        (counted as an invalidation), so one write sweeps stale answers
        out lazily as they are asked for again.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats = replace(self._stats, misses=self._stats.misses + 1)
                return None
            if entry.clocks != clocks:
                del self._entries[key]
                self._stats = replace(
                    self._stats,
                    misses=self._stats.misses + 1,
                    invalidations=self._stats.invalidations + 1,
                )
                return None
            self._entries.move_to_end(key)
            self._stats = replace(self._stats, hits=self._stats.hits + 1)
            return entry.value

    def store(self, key: str, value: Any, clocks: Clocks) -> None:
        """Insert (or refresh) one entry; trims LRU entries beyond the bound."""
        with self._lock:
            self._entries[key] = _Entry(value, clocks)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            if evicted:
                self._stats = replace(
                    self._stats, evictions=self._stats.evictions + evicted
                )

    def clear(self) -> None:
        """Drop every entry (stats survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A point-in-time snapshot of the counters."""
        with self._lock:
            return self._stats
