"""A stdlib client for the match server: typed requests over the wire.

The client half of the serving tier's contract: it serialises the typed
request objects (:meth:`to_dict`), POSTs them as JSON, and rebuilds the
typed response envelopes (:meth:`from_dict`) -- so calling a remote
:class:`~repro.server.app.MatchServer` looks exactly like calling a local
:class:`~repro.service.MatchService`, minus the live ``result`` attachment
(envelopes never serialise dense matrices).

Only :mod:`urllib` is used; there is nothing to install.  Errors the
server reports (4xx/5xx with an ``{"error": ...}`` body) surface as
:class:`MatchServerError` carrying the HTTP status and message.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.service import (
    CorpusMatchRequest,
    CorpusMatchResponse,
    MatchRequest,
    MatchResponse,
    NetworkMatchRequest,
    NetworkMatchResponse,
)

__all__ = ["MatchServerError", "MatchServiceClient"]


class MatchServerError(RuntimeError):
    """A non-2xx server reply, with the HTTP status and the error message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"server returned {status}: {message}")
        self.status = status
        self.message = message


class MatchServiceClient:
    """One server's typed front: ``client.match(request) -> MatchResponse``.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``http://127.0.0.1:8765`` (a
        :attr:`MatchServer.url`).
    timeout:
        Per-request socket timeout in seconds.

    After every request, :attr:`last_cache_status` holds the server's
    ``X-Harmonia-Cache`` header (``"hit"`` / ``"miss"`` for POSTs, None
    otherwise) -- how the bench distinguishes cached from computed
    responses without touching the payload -- and :attr:`last_trace_id`
    holds ``X-Harmonia-Trace`` when the request was traced.  The typed
    MATCH helpers also stamp both onto the returned envelope
    (``response.cache_status`` / ``response.trace_id``), so callers do not
    have to reach back into the client for per-response transport facts.
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.last_cache_status: str | None = None
        self.last_trace_id: str | None = None

    # -- transport ------------------------------------------------------
    def get_json(self, path: str) -> dict[str, Any]:
        """GET a JSON endpoint (raises :class:`MatchServerError` on 4xx/5xx)."""
        return self._request("GET", path, None)

    def post_json(self, path: str, payload: dict) -> dict[str, Any]:
        """POST a JSON body, return the JSON reply (the raw envelope dict)."""
        return self._request("POST", path, payload)

    def _request(
        self, method: str, path: str, payload: dict | None
    ) -> dict[str, Any]:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if data is not None else {}
        request = urlrequest.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        self.last_cache_status = None
        self.last_trace_id = None
        try:
            with urlrequest.urlopen(request, timeout=self.timeout) as reply:
                self.last_cache_status = reply.headers.get("X-Harmonia-Cache")
                self.last_trace_id = reply.headers.get("X-Harmonia-Trace")
                return json.loads(reply.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (UnicodeDecodeError, json.JSONDecodeError):
                message = str(exc.reason)
            raise MatchServerError(exc.code, message) from exc

    # -- operational endpoints ------------------------------------------
    def health(self) -> dict[str, Any]:
        return self.get_json("/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.get_json("/metrics")

    def schemas(self) -> dict[str, Any]:
        return self.get_json("/schemas")

    # -- the MATCH operations -------------------------------------------
    def _stamp(self, response):
        """Copy this reply's transport headers onto the envelope.

        ``cache_status`` / ``trace_id`` are transport-only fields (never
        serialised, excluded from equality), so stamping keeps the
        envelope round-trip identical to the wire payload.
        """
        return replace(
            response,
            cache_status=self.last_cache_status,
            trace_id=self.last_trace_id,
        )

    def match(self, request: MatchRequest) -> MatchResponse:
        """One MATCH through the server; the typed envelope back."""
        return self._stamp(
            MatchResponse.from_dict(self.post_json("/match", request.to_dict()))
        )

    def corpus_match(self, request: CorpusMatchRequest) -> CorpusMatchResponse:
        """One repository-scale top-k MATCH through the server."""
        return self._stamp(
            CorpusMatchResponse.from_dict(
                self.post_json("/corpus-match", request.to_dict())
            )
        )

    def network_match(self, request: NetworkMatchRequest) -> NetworkMatchResponse:
        """One mapping-network routing query through the server."""
        return self._stamp(
            NetworkMatchResponse.from_dict(
                self.post_json("/network-match", request.to_dict())
            )
        )
