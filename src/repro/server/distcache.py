"""The distributed response-cache tier: one cache for a whole fleet.

PR 5's :class:`~repro.server.cache.ResponseCache` is per-process: every
``repro serve`` replica pays its own misses, and a ``store_matches`` on
one replica cannot sweep another's entries -- it can only wait for the
lazy per-lookup clock check.  This module makes the cache a *shared
tier*, stdlib-only:

* :class:`CacheBackend` -- the protocol a response cache must satisfy to
  sit under a :class:`~repro.server.app.MatchServer`: ``get`` / ``put``
  (clock-watermarked entries), ``evict_watermark`` (the nudge receiver),
  ``stats`` / ``describe`` / ``hot_keys`` (observability), ``clear`` /
  ``close``.  Three implementations ship and one contract suite
  (``tests/test_cache_contract.py``) holds them to identical semantics;
* :class:`~repro.server.cache.ResponseCache` -- the existing in-process
  LRU, unchanged semantics, now speaking the protocol;
* :class:`RemoteCache` -- the client of a shared loopback TCP cache
  server (:class:`CacheServer`, the ``repro cache-serve`` CLI): one
  cache process a whole prefork fleet shares, speaking newline-delimited
  JSON.  **Degradation is built in**: every call has a bounded timeout,
  any transport failure reads as a miss (never a wrong answer), errors
  are counted on ``/metrics``, and the next call simply reconnects -- a
  killed or hung cache server costs latency and hit rate, never
  correctness;
* :class:`TieredCache` -- local-LRU-over-shared composition: hits served
  from process memory when possible, shared lookups populate the local
  tier, writes and nudges go to both.

**Invalidation is a broadcast plus a backstop.**  Every repository write
bumps the DB-backed ``(generation, match_generation)`` clocks
transactionally (PR 6); :func:`attach_cache_nudge` additionally hangs a
write listener on the repository that calls ``evict_watermark`` with the
post-write clocks, so entries computed under older clocks are evicted
*everywhere, immediately* -- on the shared tier that one nudge serves
the whole fleet.  The nudge is best-effort by contract: if it is lost
(cache down, listener never attached, writer is an unrelated process),
the per-lookup clock equality check still refuses every stale entry.
Zero staleness never depends on the broadcast arriving.

**Warming closes the cold-start gap.**  Serving replicas persist their
hottest request hashes (key, endpoint, payload, hit count) into the
repository's ``request_stats`` table; :func:`warm_cache` replays the top
of that table through a fresh replica's service at startup so the first
real client finds the tier already hot.

Bench E22 (``benchmarks/test_e22_distcache.py``) pins the tier: N
replicas over one pooled store, the shared tier beating per-process
caches on aggregate warm hit ratio, scores exact to 1e-9, zero stale
across replicas under an interleaved write/read sweep.  Topology and
sizing notes live in ``docs/serving.md``.
"""

from __future__ import annotations

import json
import queue
import socket
import socketserver
import threading
from typing import Any, Protocol, runtime_checkable

from repro.server.cache import CacheStats, Clocks, ResponseCache

__all__ = [
    "CacheBackend",
    "CacheServer",
    "CacheUnavailable",
    "RemoteCache",
    "TieredCache",
    "attach_cache_nudge",
    "build_cache",
    "warm_cache",
]


@runtime_checkable
class CacheBackend(Protocol):
    """What a response cache must provide to sit under a MatchServer.

    Contract highlights (the executable version is
    ``tests/test_cache_contract.py``, run over all three backends):

    * ``get(key, clocks)`` returns the cached value only if the entry was
      stored under EXACTLY these clocks; anything else -- absent entry,
      moved clocks, corrupt payload, unreachable tier -- is ``None``.  A
      cache can be slow or cold, never wrong.
    * ``put(key, value, clocks)`` watermarks the entry with the clocks it
      was computed under (captured *before* execution by the caller).
    * ``evict_watermark(clocks)`` drops every entry whose watermark is
      component-wise older (``None`` never outdates) and returns the
      count -- the receiving end of the repository write nudge.  It is an
      optimisation hook: a backend that lost the nudge must still refuse
      stale entries per-``get``.
    * ``stats`` is the aggregate :class:`CacheStats`; ``describe()`` adds
      per-tier structure for ``/metrics``; ``hot_keys(limit)`` ranks live
      keys by hits.
    * All methods must be thread-safe: one backend instance is shared by
      every handler thread of a server.
    """

    def get(self, key: str, clocks: Clocks) -> Any | None: ...
    def put(self, key: str, value: Any, clocks: Clocks) -> None: ...
    def evict_watermark(self, watermark: Clocks) -> int: ...
    def hot_keys(self, limit: int = 64) -> list[tuple[str, int]]: ...
    def describe(self) -> dict: ...
    def clear(self) -> None: ...
    def close(self) -> None: ...
    def __len__(self) -> int: ...

    @property
    def stats(self) -> CacheStats: ...


class CacheUnavailable(ConnectionError):
    """The shared cache tier could not serve a call (down, hung, garbled).

    Internal to the remote backend: public methods catch it and degrade
    (a failed ``get`` is a miss, a failed ``put``/``evict`` is dropped),
    so callers never see cache-tier faults as request failures.
    """


# ----------------------------------------------------------------------
# Wire protocol (newline-delimited JSON over TCP)
# ----------------------------------------------------------------------
# Request:  {"op": "get"|"put"|"evict"|"stats"|"hot"|"clear"|"ping",
#            "key": ..., "value": ..., "clocks": [g, mg], "limit": ...}
# Response: {"ok": true, ...} | {"ok": false, "error": "..."}
#
# Clocks cross the wire as JSON arrays (None components included) and are
# normalised back to tuples server-side, so watermark comparison semantics
# are identical local and remote.  One line in, one line out, connections
# are persistent -- a GET round-trip is one small read/write each way.

_MAX_LINE = 32 * 1024 * 1024  # defensive bound on one wire message


def _encode(message: dict) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


class _CacheRequestHandler(socketserver.StreamRequestHandler):
    """One client connection: read JSON lines, apply ops, reply per line."""

    server: "CacheServer"

    def setup(self) -> None:
        super().setup()
        self.server._track_connection(self.connection, live=True)

    def finish(self) -> None:
        self.server._track_connection(self.connection, live=False)
        super().finish()

    def handle(self) -> None:
        while True:
            try:
                line = self.rfile.readline(_MAX_LINE)
            except (OSError, ValueError):
                return
            if not line:
                return
            try:
                reply = self._dispatch(json.loads(line.decode("utf-8")))
            except Exception as exc:  # malformed request: report, keep serving
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                self.wfile.write(_encode(reply))
            except OSError:
                return

    def _dispatch(self, message: dict) -> dict:
        cache = self.server.cache
        op = message.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "get":
            clocks = tuple(message["clocks"])
            value = cache.get(message["key"], clocks)
            if value is None:
                return {"ok": True, "miss": True}
            return {"ok": True, "value": value}
        if op == "put":
            cache.put(message["key"], message["value"], tuple(message["clocks"]))
            return {"ok": True}
        if op == "evict":
            evicted = cache.evict_watermark(tuple(message["clocks"]))
            return {"ok": True, "evicted": evicted}
        if op == "stats":
            return {
                "ok": True,
                "stats": cache.stats.to_dict(),
                "entries": len(cache),
                "max_entries": cache.max_entries,
            }
        if op == "hot":
            limit = int(message.get("limit", 64))
            return {"ok": True, "keys": cache.hot_keys(limit)}
        if op == "clear":
            cache.clear()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class CacheServer(socketserver.ThreadingTCPServer):
    """The shared cache process: one clock-validated LRU behind a socket.

    ``repro cache-serve`` runs one of these in front of a whole fleet of
    serving replicas.  The store inside is an ordinary
    :class:`ResponseCache`, so entry semantics (exact-clock validation,
    watermark eviction, LRU bound) are literally the same code the local
    tier runs -- the contract suite parametrizes over both to prove it.

    Handler threads are daemonic: a client that hangs mid-line cannot
    block shutdown (cached entries are disposable state; there is nothing
    to drain).  Port 0 picks an ephemeral port; see :attr:`address`.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8901,
        cache_size: int = 65536,
    ):
        self.cache = ResponseCache(max_entries=cache_size)
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        super().__init__((host, port), _CacheRequestHandler)

    def _track_connection(self, connection, live: bool) -> None:
        with self._connections_lock:
            if live:
                self._connections.add(connection)
            else:
                self._connections.discard(connection)

    def server_close(self) -> None:
        """Close the listener AND every live client connection.

        Handler threads are daemonic and block in ``readline``; severing
        their sockets here makes an in-process close behave like a killed
        cache process -- clients see a dropped connection immediately and
        degrade, instead of talking to a zombie server.
        """
        super().server_close()
        with self._connections_lock:
            lingering = list(self._connections)
            self._connections.clear()
        for connection in lingering:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` -- what ``--cache-url`` on the replicas takes."""
        return f"{self.server_address[0]}:{self.port}"


class RemoteCache:
    """Client backend for one :class:`CacheServer`: the shared tier.

    Connections are pooled and persistent (LIFO, so the warmest one is
    reused); any transport failure closes the failed connection, counts
    one error, and degrades the call -- ``get`` to a miss, ``put`` /
    ``evict_watermark`` to a no-op -- then the next call dials fresh, so
    a cache server restart re-attaches with no replica intervention.

    ``timeout`` bounds EVERY socket operation: a hung cache server can
    delay one request by at most the timeout, never wedge it.
    """

    def __init__(
        self,
        address: str,
        timeout: float = 1.0,
        max_connections: int = 8,
    ):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"cache address must be host:port, got {address!r}"
            )
        self.address = address
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._free: "queue.LifoQueue" = queue.LifoQueue(maxsize=max_connections)
        self._stats_lock = threading.Lock()
        self._errors = 0
        self._closed = False

    # -- transport ------------------------------------------------------
    def _connect(self):
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        return sock, sock.makefile("rb")

    def _call(self, message: dict) -> dict:
        """One request/reply; raises :class:`CacheUnavailable` on any fault."""
        if self._closed:
            raise CacheUnavailable("cache client is closed")
        try:
            connection = self._free.get_nowait()
        except queue.Empty:
            connection = None
        try:
            if connection is None:
                connection = self._connect()
            sock, rfile = connection
            sock.sendall(_encode(message))
            line = rfile.readline(_MAX_LINE)
            if not line:
                raise OSError("cache server closed the connection")
            reply = json.loads(line.decode("utf-8"))
            if not isinstance(reply, dict) or not reply.get("ok"):
                raise ValueError(f"cache server refused: {reply!r}")
        except (OSError, ValueError) as exc:
            # OSError covers timeouts and resets; ValueError covers
            # garbled/poisoned replies (json, envelope, refusal).  Either
            # way the connection is suspect: close it, count, degrade.
            if connection is not None:
                sock, rfile = connection
                for closer in (rfile.close, sock.close):
                    try:
                        closer()
                    except OSError:
                        pass
            with self._stats_lock:
                self._errors += 1
            raise CacheUnavailable(str(exc)) from exc
        try:
            self._free.put_nowait(connection)
        except queue.Full:
            sock.close()
        return reply

    # -- the CacheBackend protocol --------------------------------------
    def get(self, key: str, clocks: Clocks) -> Any | None:
        try:
            reply = self._call(
                {"op": "get", "key": key, "clocks": list(clocks)}
            )
        except CacheUnavailable:
            return None
        return None if reply.get("miss") else reply.get("value")

    def put(self, key: str, value: Any, clocks: Clocks) -> None:
        try:
            self._call(
                {"op": "put", "key": key, "value": value, "clocks": list(clocks)}
            )
        except CacheUnavailable:
            pass

    def evict_watermark(self, watermark: Clocks) -> int:
        try:
            reply = self._call({"op": "evict", "clocks": list(watermark)})
        except CacheUnavailable:
            return 0
        return int(reply.get("evicted", 0))

    def hot_keys(self, limit: int = 64) -> list[tuple[str, int]]:
        try:
            reply = self._call({"op": "hot", "limit": limit})
        except CacheUnavailable:
            return []
        return [(key, hits) for key, hits in reply.get("keys", [])]

    def clear(self) -> None:
        try:
            self._call({"op": "clear"})
        except CacheUnavailable:
            pass

    def ping(self) -> bool:
        """True if the shared cache answers right now (health probes)."""
        try:
            self._call({"op": "ping"})
        except CacheUnavailable:
            return False
        return True

    def _server_stats(self) -> dict | None:
        try:
            return self._call({"op": "stats"})
        except CacheUnavailable:
            return None

    @property
    def stats(self) -> CacheStats:
        """Server-side counters plus THIS client's transport errors.

        The server's counters aggregate every replica's traffic; errors
        are inherently client-side (the server cannot count calls that
        never reached it).
        """
        reply = self._server_stats()
        with self._stats_lock:
            errors = self._errors
        if reply is None:
            return CacheStats(errors=errors)
        stats = CacheStats.from_dict(reply["stats"])
        return CacheStats(
            hits=stats.hits,
            misses=stats.misses,
            invalidations=stats.invalidations,
            evictions=stats.evictions,
            errors=errors,
        )

    def describe(self) -> dict:
        reply = self._server_stats()
        with self._stats_lock:
            errors = self._errors
        description = {
            "kind": "remote",
            "address": self.address,
            "reachable": reply is not None,
            "errors": errors,
        }
        if reply is not None:
            description["entries"] = reply["entries"]
            description["max_entries"] = reply["max_entries"]
            description["stats"] = reply["stats"]
        return description

    def close(self) -> None:
        self._closed = True
        while True:
            try:
                sock, rfile = self._free.get_nowait()
            except queue.Empty:
                return
            for closer in (rfile.close, sock.close):
                try:
                    closer()
                except OSError:
                    pass

    def __len__(self) -> int:
        reply = self._server_stats()
        return reply["entries"] if reply is not None else 0

    @property
    def errors(self) -> int:
        with self._stats_lock:
            return self._errors


class TieredCache:
    """Local-LRU-over-shared: process memory first, the fleet tier second.

    * ``get`` -- the local tier answers without a network hop when it
      can; a shared hit is copied into the local tier on the way back
      (each replica's working set migrates to process memory);
    * ``put`` -- written through to both tiers, so one replica's computed
      miss warms every other replica's next lookup;
    * ``evict_watermark`` -- swept on both tiers (one shared-tier nudge
      serves the whole fleet).

    Both member tiers validate entries against the caller's clocks on
    every ``get``, so the composition cannot serve stale even when the
    tiers disagree about what they hold.  Tier-level hit attribution
    (which tier answered) is tracked here and exposed via ``describe``.
    """

    def __init__(self, local: ResponseCache, shared: "CacheBackend"):
        self.local = local
        self.shared = shared
        self._lock = threading.Lock()
        self._local_hits = 0
        self._shared_hits = 0
        self._misses = 0

    def get(self, key: str, clocks: Clocks) -> Any | None:
        value = self.local.get(key, clocks)
        if value is not None:
            with self._lock:
                self._local_hits += 1
            return value
        value = self.shared.get(key, clocks)
        if value is not None:
            self.local.put(key, value, clocks)
            with self._lock:
                self._shared_hits += 1
            return value
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: str, value: Any, clocks: Clocks) -> None:
        self.local.put(key, value, clocks)
        self.shared.put(key, value, clocks)

    def evict_watermark(self, watermark: Clocks) -> int:
        return self.local.evict_watermark(watermark) + self.shared.evict_watermark(
            watermark
        )

    def hot_keys(self, limit: int = 64) -> list[tuple[str, int]]:
        """Shared-tier ranking (fleet-wide hotness) with a local fallback."""
        ranked = self.shared.hot_keys(limit)
        return ranked if ranked else self.local.hot_keys(limit)

    def clear(self) -> None:
        self.local.clear()
        self.shared.clear()

    @property
    def stats(self) -> CacheStats:
        """The tier as its callers experienced it.

        hits/misses count this composition's ``get`` outcomes (a shared
        hit is ONE hit here, though the member tiers saw a local miss and
        a shared hit); invalidations/evictions/errors aggregate the
        member tiers' own counters.
        """
        local, shared = self.local.stats, self.shared.stats
        with self._lock:
            return CacheStats(
                hits=self._local_hits + self._shared_hits,
                misses=self._misses,
                invalidations=local.invalidations + shared.invalidations,
                evictions=local.evictions + shared.evictions,
                errors=shared.errors,
            )

    def describe(self) -> dict:
        with self._lock:
            attribution = {
                "local_hits": self._local_hits,
                "shared_hits": self._shared_hits,
                "misses": self._misses,
            }
        return {
            "kind": "tiered",
            "attribution": attribution,
            "local": self.local.describe(),
            "shared": self.shared.describe(),
        }

    def close(self) -> None:
        self.local.close()
        self.shared.close()

    def __len__(self) -> int:
        return len(self.local)


def build_cache(
    cache_size: int = 1024,
    cache_url: str | None = None,
    tier: str = "auto",
    timeout: float = 1.0,
) -> "CacheBackend":
    """Resolve CLI/config cache options to a backend instance.

    ``tier``: ``"auto"`` (tiered when a ``cache_url`` is given, local
    otherwise), ``"local"``, ``"shared"`` (remote only, no local LRU in
    front), or ``"tiered"``.
    """
    if tier == "auto":
        tier = "tiered" if cache_url else "local"
    if tier == "local":
        return ResponseCache(max_entries=cache_size)
    if cache_url is None:
        raise ValueError(f"cache tier {tier!r} needs a cache server address")
    remote = RemoteCache(cache_url, timeout=timeout)
    if tier == "shared":
        return remote
    if tier == "tiered":
        return TieredCache(ResponseCache(max_entries=cache_size), remote)
    raise ValueError(
        f"unknown cache tier {tier!r} "
        "(expected 'auto', 'local', 'shared', or 'tiered')"
    )


def attach_cache_nudge(repository, cache: "CacheBackend"):
    """Broadcast this repository's writes to a cache tier; returns the listener.

    Every mutation already bumps the DB-backed clocks transactionally;
    the listener additionally calls ``evict_watermark`` with the
    post-write clocks so stale entries are swept proactively -- on a
    shared tier, for every replica at once.  Detach with
    ``repository.remove_write_listener(listener)``.
    """

    def nudge(clocks) -> None:
        cache.evict_watermark(clocks)

    repository.add_write_listener(nudge)
    return nudge


def warm_cache(service, cache: "CacheBackend", limit: int = 64) -> int:
    """Replay the repository's hottest recorded requests into ``cache``.

    Fetches the top ``limit`` request hashes from the repository's
    ``request_stats`` table, re-executes each through ``service`` (under
    clocks captured before execution, exactly like a live request), and
    puts the response envelopes.  Requests already cached under current
    clocks are skipped; requests that no longer execute (their schema was
    unregistered, the payload predates an option change) are skipped too
    -- warming is best-effort by nature.  Returns the number of entries
    actually warmed.
    """
    from repro.server.app import endpoint_clocks, endpoint_executor
    from repro.service import (
        CorpusMatchRequest,
        MatchRequest,
        NetworkMatchRequest,
    )

    repository = service.repository
    if repository is None or limit <= 0:
        return 0
    request_types = {
        "/match": MatchRequest,
        "/corpus-match": CorpusMatchRequest,
        "/network-match": NetworkMatchRequest,
    }
    warmed = 0
    for key, endpoint, payload, _count in repository.hot_requests(limit):
        request_type = request_types.get(endpoint)
        executor = endpoint_executor(service, endpoint)
        if request_type is None or executor is None:
            continue
        clocks = endpoint_clocks(repository, endpoint)
        if cache.get(key, clocks) is not None:
            continue
        try:
            request = request_type.from_dict(payload)
            envelope = executor(request).to_dict()
        except Exception:
            continue
        cache.put(key, envelope, clocks)
        warmed += 1
    return warmed
