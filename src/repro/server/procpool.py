"""Process-pool serving: prefork workers sharing one socket and one store.

The threaded :class:`~repro.server.app.MatchServer` scales until the GIL:
every handler thread shares one interpreter, so compute-bound MATCH
requests serialise no matter how many threads run.  This module is the
classic prefork answer, stdlib-only:

* the parent binds ONE listening socket, then forks N workers
  (``os.fork``);
* every worker adopts the inherited socket (``MatchServer`` with
  ``listen_socket=``) and runs the ordinary threaded server over it --
  the kernel's accept queue load-balances connections across workers;
* every worker opens its OWN
  :class:`~repro.repository.backends.PooledSqliteBackend` on the same
  WAL database file (SQLite connections must never cross a fork), so all
  workers serve one shared store;
* response caches are per-process by default, but their invalidation
  watermarks -- the ``generation`` / ``match_generation`` clocks -- live
  in the database and move transactionally with every write, so a write
  through ANY process (or any outside writer on the same file) makes
  every worker's stale entries invalidate on their next lookup.
  Exactness is measured by bench E20's interleaved write/read sweep.
  With ``cache_url`` every worker instead joins one shared cache tier
  (``repro cache-serve``; see :mod:`repro.server.distcache`), so a miss
  computed by one worker is a hit for all of them -- bench E22.

Shutdown: SIGTERM/SIGINT to the parent fans out as SIGTERM to every
worker; each worker stops accepting, drains its in-flight handler
threads (the same graceful path as the threaded server), and exits; the
parent reaps them all and returns 0.  A worker that dies on its own
takes the pool down (the parent terminates the rest and returns 1) --
supervision belongs to the operator's init system, not to a hidden
respawn loop.

``repro serve --db repo.db --workers N`` is the CLI front; see
``docs/serving.md`` for deployment notes and pool sizing.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
from typing import Callable

from repro.repository.store import MetadataRepository
from repro.server.app import MatchServer
from repro.server.distcache import build_cache
from repro.service import MatchOptions, MatchService
from repro.telemetry import FleetStats

__all__ = ["serve_process_pool"]


def _worker_main(
    listen_socket: socket.socket,
    db_path: str,
    options: MatchOptions | None,
    cache_size: int,
    pool_size: int,
    busy_timeout: float,
    quiet: bool,
    refresh_interval: float | None = None,
    corpus_shards: int | None = None,
    cache_url: str | None = None,
    cache_tier: str = "auto",
    cache_timeout: float = 1.0,
    warm_limit: int = 0,
    trace_log: str | None = None,
    slow_ms: float = 250.0,
    trace_sample: float | None = None,
    fleet_path: str | None = None,
    fleet_index: int = 0,
) -> int:
    """One worker: open the shared store, serve the inherited socket.

    Runs entirely inside the forked child.  Signal handlers are installed
    FIRST so a shutdown that lands during the (numpy-heavy) service
    build-up is not lost; the serve loop then mirrors
    :func:`~repro.server.app.serve_until_shutdown`.
    """
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    repository = MetadataRepository(
        path=db_path,
        backend="pooled",
        pool_size=pool_size,
        busy_timeout=busy_timeout,
    )
    try:
        service = MatchService(
            repository=repository, options=options, corpus_shards=corpus_shards
        )
        # Each worker builds its own cache tier AFTER the fork (sockets to
        # a shared cache server must never cross one, same rule as SQLite
        # connections); with --cache-url every worker's shared tier is the
        # same cache process, so one worker's computed miss (or one
        # write's nudge) serves the whole pool.
        #
        # Stats follow the same post-fork rebuild rule: the parent created
        # the zeroed fleet-stats file BEFORE forking, and each worker maps
        # it here, binding its metrics board to its own page-aligned
        # region.  Any worker answering /metrics reads all regions and
        # reports fleet totals.
        fleet = FleetStats.attach(fleet_path) if fleet_path is not None else None
        server = MatchServer(
            service,
            cache_size=cache_size,
            quiet=quiet,
            listen_socket=listen_socket,
            cache=build_cache(
                cache_size=cache_size,
                cache_url=cache_url,
                tier=cache_tier,
                timeout=cache_timeout,
            ),
            warm_limit=warm_limit,
            trace_log=trace_log,
            slow_ms=slow_ms,
            trace_sample=trace_sample,
            fleet=fleet,
            fleet_index=fleet_index,
        )
        if refresh_interval is not None:
            # Each worker keeps its own corpus snapshots warm; the shared
            # generation clock in the WAL store makes every worker's
            # staleness check see writes from ANY worker.
            service.start_corpus_refresh(refresh_interval)
        if not stop.is_set():
            accept_loop = threading.Thread(
                target=server.serve_forever, name="harmonia-worker", daemon=True
            )
            accept_loop.start()
            stop.wait()
            server.shutdown()
            accept_loop.join()
        server.server_close()
        service.stop_corpus_refresh()
    finally:
        repository.close()
    return 0


def serve_process_pool(
    db_path: str,
    n_workers: int,
    host: str = "127.0.0.1",
    port: int = 8765,
    options: MatchOptions | None = None,
    cache_size: int = 1024,
    pool_size: int = 4,
    busy_timeout: float = 30.0,
    quiet: bool = True,
    announce: Callable[[str, int], None] | None = None,
    refresh_interval: float | None = None,
    corpus_shards: int | None = None,
    cache_url: str | None = None,
    cache_tier: str = "auto",
    cache_timeout: float = 1.0,
    warm_limit: int = 0,
    trace_log: str | None = None,
    slow_ms: float = 250.0,
    trace_sample: float | None = None,
) -> int:
    """Run ``n_workers`` prefork servers over one socket and one store.

    Blocks until SIGTERM/SIGINT, then drains and reaps every worker.
    Returns the parent's exit status: 0 after a clean signalled shutdown,
    1 if any worker died on its own.  Raises ``OSError`` if the socket
    cannot be bound (the CLI maps that to exit status 2) and
    ``RuntimeError`` on platforms without ``os.fork``.

    ``announce(url, n_workers)`` is called once the pool is accepting.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only guard
        raise RuntimeError("process-pool serving needs os.fork (POSIX)")

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    # One stats file, one page-aligned region per worker, created BEFORE
    # the forks so every child maps the same inode.  Workers write their
    # own region; /metrics on any worker reads them all.
    fleet_path = db_path + ".fleet-stats"
    FleetStats.create(fleet_path, n_workers)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(128)
        bound_port = listener.getsockname()[1]

        workers: list[int] = []
        for fleet_index in range(n_workers):
            pid = os.fork()
            if pid == 0:
                # The child never returns into the caller's stack: serve,
                # flush, and _exit (skipping the parent's atexit state,
                # which the fork copied but does not own).
                status = 1
                try:
                    status = _worker_main(
                        listener,
                        db_path,
                        options,
                        cache_size,
                        pool_size,
                        busy_timeout,
                        quiet,
                        refresh_interval,
                        corpus_shards,
                        cache_url,
                        cache_tier,
                        cache_timeout,
                        warm_limit,
                        trace_log,
                        slow_ms,
                        trace_sample,
                        fleet_path,
                        fleet_index,
                    )
                finally:
                    sys.stdout.flush()
                    sys.stderr.flush()
                    os._exit(status)
            workers.append(pid)
        # The workers own the socket now; the parent only supervises.
        listener.close()

        stop_requested = threading.Event()

        def _shutdown(signum, frame) -> None:
            stop_requested.set()
            for pid in workers:
                try:
                    os.kill(pid, signal.SIGTERM)
                except ProcessLookupError:  # already gone
                    pass

        previous = {
            signum: signal.signal(signum, _shutdown)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            if announce is not None:
                announce(f"http://{host}:{bound_port}", n_workers)
            failed = False
            remaining = set(workers)
            while remaining:
                # Blocks until a child exits; EINTR is retried by Python
                # after our handler has already SIGTERMed the pool, so a
                # shutdown signal turns into a stream of clean reaps.
                pid, status = os.waitpid(-1, 0)
                remaining.discard(pid)
                if not (os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0):
                    failed = True
                if not stop_requested.is_set() and remaining:
                    # A worker died on its own: take the pool down rather
                    # than limp along with fewer workers than promised.
                    failed = True
                    _shutdown(None, None)
            return 1 if failed else 0
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    finally:
        # Idempotent: already closed in the normal path.
        listener.close()
        FleetStats.remove(fleet_path)
