"""The service layer: matching as a managed operation.

One facade (:class:`MatchService`) fronts every execution strategy: typed
:class:`MatchRequest` in, auto-routed exact/batch execution inside,
JSON-round-trippable :class:`MatchResponse` out, with optional
:class:`~repro.repository.store.MetadataRepository` binding for the paper's
matches-as-knowledge loop.  See ``docs/architecture.md`` for the dataflow.
"""

from repro.service.options import DEFAULT_VOTER_NAMES, MatchOptions
from repro.service.requests import MatchRequest, SchemaRef
from repro.service.response import MatchResponse
from repro.service.service import MatchService

__all__ = [
    "DEFAULT_VOTER_NAMES",
    "MatchOptions",
    "MatchRequest",
    "MatchResponse",
    "MatchService",
    "SchemaRef",
]
