"""The service layer: matching as a managed operation.

One facade (:class:`MatchService`) fronts every execution strategy: typed
:class:`MatchRequest` / :class:`CorpusMatchRequest` in, auto-routed
exact/batch execution inside, JSON-round-trippable :class:`MatchResponse`
/ :class:`CorpusMatchResponse` out, with optional
:class:`~repro.repository.store.MetadataRepository` binding for the paper's
matches-as-knowledge loop and repository-scale ``corpus_match``.  Every
request and response type round-trips through JSON, which makes them the
wire protocol of the serving tier (:mod:`repro.server`).  See
``docs/architecture.md`` for the dataflow, ``docs/repository.md`` for
the corpus subsystem, and ``docs/serving.md`` for the serving tier.
"""

from repro.service.corpus_response import CorpusCandidate, CorpusMatchResponse
from repro.service.network_response import NetworkMatchResponse
from repro.service.options import DEFAULT_VOTER_NAMES, MatchOptions
from repro.service.requests import (
    CorpusMatchRequest,
    MatchRequest,
    NetworkMatchRequest,
    SchemaRef,
)
from repro.service.response import MatchResponse
from repro.service.service import MatchService

__all__ = [
    "DEFAULT_VOTER_NAMES",
    "CorpusCandidate",
    "CorpusMatchRequest",
    "CorpusMatchResponse",
    "MatchOptions",
    "MatchRequest",
    "MatchResponse",
    "MatchService",
    "NetworkMatchRequest",
    "NetworkMatchResponse",
    "SchemaRef",
]
