"""The corpus-match response envelope: ranked candidates as knowledge.

What a repository-scale MATCH returns: which registered schemata survived
retrieval, how they matched, how strongly they rank, and what reuse did to
each -- all JSON-round-trippable (property-tested, mirroring
:class:`~repro.service.response.MatchResponse`), so stored corpus queries
stay readable and a future HTTP layer is a thin shim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cascade.plan import CascadeReport
from repro.match.correspondence import Correspondence
from repro.service.options import MatchOptions

__all__ = [
    "CorpusCandidate",
    "CorpusMatchResponse",
    "CORPUS_RESPONSE_FORMAT_VERSION",
]

CORPUS_RESPONSE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CorpusCandidate:
    """One ranked repository schema with its full correspondences."""

    target_name: str
    retrieval_score: float         # BM25 rank score from the corpus index
    match_score: float             # sum of positive correspondence scores
    n_source: int
    n_target: int
    n_candidates: int              # pairs scored after blocking
    elapsed_seconds: float
    n_boosted: int                 # correspondences boosted by prior assertions
    n_seeded: int                  # prior-only pairs seeded back in
    correspondences: tuple[Correspondence, ...]
    cascade: CascadeReport | None = None   # per-candidate oracle spend

    def __post_init__(self) -> None:
        object.__setattr__(self, "correspondences", tuple(self.correspondences))

    @property
    def n_pairs(self) -> int:
        return self.n_source * self.n_target

    def __len__(self) -> int:
        return len(self.correspondences)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": {"schema": self.target_name, "n_elements": self.n_target},
            "retrieval_score": self.retrieval_score,
            "match_score": self.match_score,
            "n_source": self.n_source,
            "n_candidates": self.n_candidates,
            "elapsed_seconds": self.elapsed_seconds,
            "reuse": {"boosted": self.n_boosted, "seeded": self.n_seeded},
            "correspondences": [c.to_dict() for c in self.correspondences],
            "cascade": self.cascade.to_dict() if self.cascade is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CorpusCandidate":
        return cls(
            target_name=payload["target"]["schema"],
            retrieval_score=payload["retrieval_score"],
            match_score=payload["match_score"],
            n_source=payload["n_source"],
            n_target=payload["target"]["n_elements"],
            n_candidates=payload["n_candidates"],
            elapsed_seconds=payload["elapsed_seconds"],
            n_boosted=payload["reuse"]["boosted"],
            n_seeded=payload["reuse"]["seeded"],
            correspondences=tuple(
                Correspondence.from_dict(entry)
                for entry in payload["correspondences"]
            ),
            cascade=(
                CascadeReport.from_dict(payload["cascade"])
                if payload.get("cascade") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class CorpusMatchResponse:
    """The envelope one corpus-match invocation returns.

    ``candidates`` holds at most ``top_k`` entries, ranked by descending
    ``match_score`` (retrieval score breaks ties).  ``n_registered`` and
    ``n_retrieved`` record how hard the index pruned: everything between
    the two numbers was never matched at all.
    """

    source_name: str
    n_registered: int              # registry size at query time
    n_retrieved: int               # candidates the index returned for matching
    top_k: int
    elapsed_seconds: float
    retrieval_seconds: float       # of which: index refresh + BM25 ranking
    options: MatchOptions
    reuse_applied: bool
    candidates: tuple[CorpusCandidate, ...]
    #: Serialised span tree when the request opted in (``options.trace``).
    trace: dict[str, Any] | None = None
    #: Transport facts stamped by :class:`repro.server.MatchServiceClient`
    #: from response headers; never serialised, never compared.
    cache_status: str | None = field(default=None, compare=False, repr=False)
    trace_id: str | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "candidates", tuple(self.candidates))

    # -- convenience queries --------------------------------------------
    def __len__(self) -> int:
        return len(self.candidates)

    @property
    def best(self) -> CorpusCandidate | None:
        """The top-ranked candidate (None when nothing survived)."""
        return self.candidates[0] if self.candidates else None

    @property
    def candidate_names(self) -> tuple[str, ...]:
        return tuple(candidate.target_name for candidate in self.candidates)

    @property
    def oracle_calls(self) -> int:
        """Total live oracle invocations across the ranked candidates."""
        return sum(
            candidate.cascade.oracle_calls
            for candidate in self.candidates
            if candidate.cascade is not None
        )

    def cascade_totals(self) -> dict[str, int] | None:
        """Summed oracle spend across candidates (None without a cascade)."""
        reports = [c.cascade for c in self.candidates if c.cascade is not None]
        if not reports:
            return None
        return {
            "n_ambiguous": sum(r.n_ambiguous for r in reports),
            "n_escalated": sum(r.n_escalated for r in reports),
            "oracle_calls": sum(r.oracle_calls for r in reports),
            "oracle_cache_hits": sum(r.oracle_cache_hits for r in reports),
            "truncated": sum(1 for r in reports if r.truncated),
        }

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "format_version": CORPUS_RESPONSE_FORMAT_VERSION,
            "source": {"schema": self.source_name},
            "corpus": {
                "n_registered": self.n_registered,
                "n_retrieved": self.n_retrieved,
            },
            "top_k": self.top_k,
            "elapsed_seconds": self.elapsed_seconds,
            "retrieval_seconds": self.retrieval_seconds,
            "options": self.options.to_dict(),
            "reuse_applied": self.reuse_applied,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
            # Derived: summed oracle spend (rebuilt from candidates on read).
            "cascade_totals": self.cascade_totals(),
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CorpusMatchResponse":
        version = payload.get("format_version")
        if version != CORPUS_RESPONSE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported corpus response format version {version!r}"
            )
        return cls(
            source_name=payload["source"]["schema"],
            n_registered=payload["corpus"]["n_registered"],
            n_retrieved=payload["corpus"]["n_retrieved"],
            top_k=payload["top_k"],
            elapsed_seconds=payload["elapsed_seconds"],
            retrieval_seconds=payload["retrieval_seconds"],
            options=MatchOptions.from_dict(payload["options"]),
            reuse_applied=payload["reuse_applied"],
            candidates=tuple(
                CorpusCandidate.from_dict(entry)
                for entry in payload["candidates"]
            ),
            trace=payload.get("trace"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "CorpusMatchResponse":
        return cls.from_dict(json.loads(document))
