"""The network-match response envelope: composed routes as knowledge.

What one mapping-network routing query returns: which pivot paths exist,
what they composed, whether a verify run confirmed the composition, and
the final correspondences -- JSON-round-trippable like every other
service envelope, so routed answers persist and replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.match.correspondence import Correspondence
from repro.network.graph import ComposedPath
from repro.service.options import MatchOptions

__all__ = ["NetworkMatchResponse", "NETWORK_RESPONSE_FORMAT_VERSION"]

NETWORK_RESPONSE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class NetworkMatchResponse:
    """The envelope one :meth:`MatchService.network_match` invocation returns.

    ``composed`` is the pure routing output (every element pair some pivot
    path supports, strongest path first); ``correspondences`` is the final
    answer -- identical to ``composed`` for compose-only requests, the
    reuse-folded fresh match output when ``verified``.  ``n_nodes`` /
    ``n_edges`` record the graph the route ran over; ``graph_seconds`` is
    the refresh + routing share of ``elapsed_seconds`` (near zero on a
    warm graph).
    """

    source_name: str
    target_name: str
    max_hops: int
    hop_decay: float
    n_nodes: int                   # graph nodes (registered schemata)
    n_edges: int                   # schema pairs with stored mappings
    paths: tuple[ComposedPath, ...]
    composed: tuple[Correspondence, ...]
    verified: bool                 # True = compose-then-verify ran the fast path
    n_boosted: int                 # verify fold: fresh pairs a prior confirmed
    n_seeded: int                  # verify fold: prior-only pairs re-entered
    elapsed_seconds: float
    graph_seconds: float
    options: MatchOptions
    correspondences: tuple[Correspondence, ...]
    #: Serialised span tree when the request opted in (``options.trace``).
    trace: dict[str, Any] | None = None
    #: Transport facts stamped by :class:`repro.server.MatchServiceClient`
    #: from response headers; never serialised, never compared.
    cache_status: str | None = field(default=None, compare=False, repr=False)
    trace_id: str | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "paths", tuple(self.paths))
        object.__setattr__(self, "composed", tuple(self.composed))
        object.__setattr__(self, "correspondences", tuple(self.correspondences))

    # -- convenience queries --------------------------------------------
    def __len__(self) -> int:
        return len(self.correspondences)

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    @property
    def best_score(self) -> float:
        return max((c.score for c in self.correspondences), default=0.0)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "format_version": NETWORK_RESPONSE_FORMAT_VERSION,
            "source": {"schema": self.source_name},
            "target": {"schema": self.target_name},
            "routing": {
                "max_hops": self.max_hops,
                "hop_decay": self.hop_decay,
                "n_nodes": self.n_nodes,
                "n_edges": self.n_edges,
                "paths": [path.to_dict() for path in self.paths],
            },
            "composed": [c.to_dict() for c in self.composed],
            "verified": self.verified,
            "reuse": {"boosted": self.n_boosted, "seeded": self.n_seeded},
            "elapsed_seconds": self.elapsed_seconds,
            "graph_seconds": self.graph_seconds,
            "options": self.options.to_dict(),
            "correspondences": [c.to_dict() for c in self.correspondences],
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkMatchResponse":
        version = payload.get("format_version")
        if version != NETWORK_RESPONSE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported network response format version {version!r}"
            )
        routing = payload["routing"]
        return cls(
            source_name=payload["source"]["schema"],
            target_name=payload["target"]["schema"],
            max_hops=routing["max_hops"],
            hop_decay=routing["hop_decay"],
            n_nodes=routing["n_nodes"],
            n_edges=routing["n_edges"],
            paths=tuple(
                ComposedPath.from_dict(entry) for entry in routing["paths"]
            ),
            composed=tuple(
                Correspondence.from_dict(entry) for entry in payload["composed"]
            ),
            verified=payload["verified"],
            n_boosted=payload["reuse"]["boosted"],
            n_seeded=payload["reuse"]["seeded"],
            elapsed_seconds=payload["elapsed_seconds"],
            graph_seconds=payload["graph_seconds"],
            options=MatchOptions.from_dict(payload["options"]),
            correspondences=tuple(
                Correspondence.from_dict(entry)
                for entry in payload["correspondences"]
            ),
            trace=payload.get("trace"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "NetworkMatchResponse":
        return cls.from_dict(json.loads(document))
