"""Declarative match configuration: the options half of a MATCH request.

The paper's section-5 argument is that MATCH invocations should be managed
artifacts: reproducible, storable, comparable.  That requires the
*configuration* of a match -- which voters ran, how votes merged, how
candidates were selected, which execution path was taken -- to be data, not
a live object graph.  :class:`MatchOptions` is that data: a frozen,
JSON-round-trippable description that the :class:`~repro.service.MatchService`
compiles into engines and batch runners on demand (and caches by value).

Every stock configuration is expressible: the calibrated Harmony default
(``MatchOptions()``), the E11/E12 baselines (see
:func:`repro.baselines.engines.baseline_options`), and the corpus fast path
(``execution="batch"``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.cascade.plan import CascadePlan
from repro.match.selection import (
    HungarianSelection,
    SelectionStrategy,
    StableMarriageSelection,
    ThresholdSelection,
    TopKSelection,
)
from repro.matchers import (
    DEFAULT_VOTER_WEIGHTS,
    DataTypeVoter,
    DescribingTextVoter,
    DocumentationVoter,
    EditDistanceVoter,
    ExactNameVoter,
    MatchVoter,
    NameTokenVoter,
    NgramVoter,
    PathVoter,
    StructuralVoter,
    ThesaurusVoter,
)
from repro.voting.merger import (
    AverageMerger,
    ConvictionLinearMerger,
    ConvictionWeightedMerger,
    MaxMerger,
    MinMerger,
    VoteMerger,
    WeightedLinearMerger,
)

__all__ = ["MatchOptions", "DEFAULT_VOTER_NAMES"]

#: The default ensemble, by voter name, in :func:`repro.matchers.default_voters`
#: order (the order the calibrated weights are aligned with).
DEFAULT_VOTER_NAMES: tuple[str, ...] = (
    "name_token",
    "name_ngram",
    "thesaurus",
    "documentation",
    "datatype",
    "path",
    "structure",
)

#: Voters constructible by name.  The thesaurus and structural voters share
#: one lexicon instance when both are requested (mirroring
#: :func:`repro.matchers.default_voters`, and letting the feature cache hold
#: one canonical feature for both).
_LEXICON_VOTERS = ("thesaurus", "structure")

_VOTER_FACTORIES = {
    "name_token": NameTokenVoter,
    "name_ngram": NgramVoter,
    "exact_name": ExactNameVoter,
    "edit_distance": EditDistanceVoter,
    "thesaurus": ThesaurusVoter,
    "documentation": DocumentationVoter,
    "describing_text": DescribingTextVoter,
    "datatype": DataTypeVoter,
    "path": PathVoter,
    "structure": StructuralVoter,
}

_MERGERS = (
    "conviction_linear",
    "conviction_weighted",
    "weighted_linear",
    "average",
    "max_conviction",
    "min",
)

_SELECTIONS = ("threshold", "top_k", "stable_marriage", "hungarian")

_EXECUTIONS = ("auto", "exact", "batch")


@dataclass(frozen=True)
class MatchOptions:
    """One MATCH invocation's configuration, as a value.

    Parameters
    ----------
    voters:
        Voter names (see :data:`DEFAULT_VOTER_NAMES` and the registry in
        this module); ``None`` means the calibrated default ensemble.
    merger:
        Merger name; ``conviction_linear`` is the production default.
    merger_weights:
        Per-voter importance weights for the weighted mergers.  ``None``
        with the default ensemble and merger means the calibrated
        :data:`~repro.matchers.DEFAULT_VOTER_WEIGHTS`.
    selection:
        Selection strategy name deciding which matrix cells become
        correspondences.
    threshold:
        Score gate used by every selection strategy.
    top_k:
        ``k`` for the ``top_k`` selection (ignored otherwise).
    execution:
        Routing hint: ``auto`` (workload-shaped routing), ``exact`` (always
        the per-grid engine), ``batch`` (always the blocked fast path).
    fill_value:
        Score assigned to blocked-out pairs on the batch path.
    cascade:
        Optional :class:`~repro.cascade.CascadePlan`: Stage-1 merged
        confidences inside the plan's ambiguity band escalate to its
        Stage-2 oracle (budgeted, most-ambiguous-first; see
        ``docs/cascade.md``).  ``None`` (the default) keeps execution
        single-stage and bit-identical to the pre-cascade pipeline.
        Because the plan serialises inside these options -- and the
        options inside every request -- cascaded and plain requests can
        never share a response-cache key.
    trace:
        Opt into span-tree tracing for this request: the service records
        a :class:`repro.telemetry.Trace` and attaches its serialised tree
        to the response envelope.  ``False`` (the default) keeps the
        no-op disabled path.  Like ``cascade``, the flag serialises
        inside the options, so traced and untraced requests never share
        a response-cache key (a cached traced envelope legitimately
        carries its stored trace).
    """

    voters: tuple[str, ...] | None = None
    merger: str = "conviction_linear"
    merger_weights: tuple[float, ...] | None = None
    selection: str = "threshold"
    threshold: float = 0.15
    top_k: int = 1
    execution: str = "auto"
    fill_value: float = 0.0
    cascade: CascadePlan | None = None
    trace: bool = False

    def __post_init__(self) -> None:
        if self.voters is not None:
            object.__setattr__(self, "voters", tuple(self.voters))
            if not self.voters:
                raise ValueError("voters must be None or a non-empty tuple")
            unknown = [name for name in self.voters if name not in _VOTER_FACTORIES]
            if unknown:
                known = ", ".join(sorted(_VOTER_FACTORIES))
                raise ValueError(f"unknown voters {unknown}; known: {known}")
        if self.merger not in _MERGERS:
            raise ValueError(
                f"unknown merger {self.merger!r}; known: {', '.join(_MERGERS)}"
            )
        if self.merger_weights is not None:
            object.__setattr__(
                self, "merger_weights", tuple(float(w) for w in self.merger_weights)
            )
            if not self.merger_weights or any(w < 0 for w in self.merger_weights):
                raise ValueError("merger_weights must be non-empty and non-negative")
            if self.voters is not None and len(self.merger_weights) != len(self.voters):
                raise ValueError(
                    f"{len(self.merger_weights)} merger_weights for "
                    f"{len(self.voters)} voters"
                )
        if self.merger == "weighted_linear" and self.merger_weights is None:
            raise ValueError("weighted_linear merger requires merger_weights")
        if self.selection not in _SELECTIONS:
            raise ValueError(
                f"unknown selection {self.selection!r}; known: {', '.join(_SELECTIONS)}"
            )
        if not -1.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [-1, 1], got {self.threshold}")
        if self.top_k <= 0:
            raise ValueError(f"top_k must be positive, got {self.top_k}")
        if self.execution not in _EXECUTIONS:
            raise ValueError(
                f"unknown execution {self.execution!r}; known: {', '.join(_EXECUTIONS)}"
            )
        if not -1.0 <= self.fill_value <= 1.0:
            raise ValueError(f"fill_value must be in [-1, 1], got {self.fill_value}")
        if self.cascade is not None and not isinstance(self.cascade, CascadePlan):
            object.__setattr__(self, "cascade", CascadePlan.from_dict(self.cascade))
        object.__setattr__(self, "trace", bool(self.trace))

    # -- compilation ----------------------------------------------------
    @property
    def voter_names(self) -> tuple[str, ...]:
        """The effective voter names (defaults resolved)."""
        return self.voters if self.voters is not None else DEFAULT_VOTER_NAMES

    def build_voters(self) -> list[MatchVoter]:
        """Instantiate the voter ensemble this configuration names."""
        from repro.text.thesaurus import SynonymLexicon

        names = self.voter_names
        lexicon = (
            SynonymLexicon.default()
            if any(name in _LEXICON_VOTERS for name in names)
            else None
        )
        voters: list[MatchVoter] = []
        for name in names:
            if name in _LEXICON_VOTERS:
                voters.append(_VOTER_FACTORIES[name](lexicon=lexicon))
            else:
                voters.append(_VOTER_FACTORIES[name]())
        return voters

    def build_merger(self) -> VoteMerger:
        """Instantiate the merger (calibrated weights resolved for defaults)."""
        weights = self.merger_weights
        if (
            weights is None
            and self.voters is None
            and self.merger == "conviction_linear"
        ):
            weights = DEFAULT_VOTER_WEIGHTS
        if self.merger == "conviction_linear":
            return ConvictionLinearMerger(voter_weights=weights)
        if self.merger == "conviction_weighted":
            return ConvictionWeightedMerger(voter_weights=weights)
        if self.merger == "weighted_linear":
            return WeightedLinearMerger(weights)
        if self.merger == "average":
            return AverageMerger()
        if self.merger == "max_conviction":
            return MaxMerger()
        return MinMerger()

    def build_selection(self) -> SelectionStrategy:
        """Instantiate the selection strategy."""
        if self.selection == "threshold":
            return ThresholdSelection(self.threshold)
        if self.selection == "top_k":
            return TopKSelection(k=self.top_k, threshold=self.threshold)
        if self.selection == "stable_marriage":
            return StableMarriageSelection(threshold=self.threshold)
        return HungarianSelection(threshold=self.threshold)

    # -- derivation and serialisation -----------------------------------
    def with_execution(self, execution: str) -> "MatchOptions":
        """A copy with a different routing hint."""
        return replace(self, execution=execution)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "voters": list(self.voters) if self.voters is not None else None,
            "merger": self.merger,
            "merger_weights": (
                list(self.merger_weights) if self.merger_weights is not None else None
            ),
            "selection": self.selection,
            "threshold": self.threshold,
            "top_k": self.top_k,
            "execution": self.execution,
            "fill_value": self.fill_value,
            "cascade": self.cascade.to_dict() if self.cascade is not None else None,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MatchOptions":
        """Rebuild options from :meth:`to_dict` output (defaults fill gaps)."""
        voters = payload.get("voters")
        weights = payload.get("merger_weights")
        cascade = payload.get("cascade")
        return cls(
            voters=tuple(voters) if voters is not None else None,
            merger=payload.get("merger", "conviction_linear"),
            merger_weights=tuple(weights) if weights is not None else None,
            selection=payload.get("selection", "threshold"),
            threshold=payload.get("threshold", 0.15),
            top_k=payload.get("top_k", 1),
            execution=payload.get("execution", "auto"),
            fill_value=payload.get("fill_value", 0.0),
            cascade=CascadePlan.from_dict(cascade) if cascade is not None else None,
            trace=payload.get("trace", False),
        )
