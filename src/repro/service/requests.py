"""Typed MATCH requests: what to match, under which configuration.

A :class:`MatchRequest` names its schemata either *inline* (live
:class:`~repro.schema.schema.Schema` objects) or *by reference* (the
registered name of a schema in the service's bound
:class:`~repro.repository.store.MetadataRepository`) -- the paper's
repository-centric view, where a match invocation over registered artifacts
is itself an artifact.  Element-id restrictions carry the sub-tree /
concept-at-a-time workflows through the same front door.

Every request type round-trips through :meth:`to_dict`/:meth:`from_dict`
(inline schemata serialise through the schema serialiser, by-name
references stay plain strings), which is what makes the typed requests the
**wire protocol** of the serving tier (:mod:`repro.server`): an HTTP body
is ``request.to_dict()`` as JSON, nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Union

from repro.repository.provenance import TrustPolicy
from repro.repository.reuse import ReusePolicy
from repro.schema.schema import Schema
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.service.options import MatchOptions

__all__ = ["SchemaRef", "MatchRequest", "CorpusMatchRequest", "NetworkMatchRequest"]

#: A schema argument: inline, or the name of a repository-registered schema.
SchemaRef = Union[Schema, str]


def _ref_to_dict(ref: SchemaRef) -> Any:
    """A schema reference as wire data: a plain string for a registered
    name, an ``{"inline": <serialised schema>}`` object for a live schema."""
    if isinstance(ref, str):
        return ref
    return {"inline": schema_to_dict(ref)}


def _ref_from_dict(payload: Any) -> SchemaRef:
    """Inverse of :func:`_ref_to_dict` (raises on malformed payloads)."""
    if isinstance(payload, str):
        return payload
    if isinstance(payload, Mapping) and "inline" in payload:
        return schema_from_dict(payload["inline"])
    raise ValueError(
        "schema reference must be a registered name or an {'inline': ...} "
        f"object, got {payload!r}"
    )


@dataclass(frozen=True)
class MatchRequest:
    """One MATCH(source, target) invocation, as data.

    Parameters
    ----------
    source, target:
        Inline schemata or repository names (resolution of names requires
        the service to be bound to a repository).
    options:
        The :class:`~repro.service.options.MatchOptions` configuration;
        the calibrated defaults when omitted.
    source_element_ids / target_element_ids:
        Optional match-time grid restrictions (sub-tree and concept
        increments).  A target-side restriction forces the exact path --
        the blocked fast path prunes candidates target-side itself.
    """

    source: SchemaRef
    target: SchemaRef
    options: MatchOptions = field(default_factory=MatchOptions)
    source_element_ids: tuple[str, ...] | None = None
    target_element_ids: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, (Schema, str)):
            raise TypeError("source must be a Schema or a registered schema name")
        if not isinstance(self.target, (Schema, str)):
            raise TypeError("target must be a Schema or a registered schema name")
        for attribute in ("source_element_ids", "target_element_ids"):
            ids = getattr(self, attribute)
            if ids is not None:
                object.__setattr__(self, attribute, tuple(ids))

    @property
    def is_restricted(self) -> bool:
        """Whether either side of the pair grid is restricted."""
        return (
            self.source_element_ids is not None or self.target_element_ids is not None
        )

    # -- serialisation (the /match wire form) ---------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "source": _ref_to_dict(self.source),
            "target": _ref_to_dict(self.target),
            "options": self.options.to_dict(),
            "source_element_ids": (
                list(self.source_element_ids)
                if self.source_element_ids is not None
                else None
            ),
            "target_element_ids": (
                list(self.target_element_ids)
                if self.target_element_ids is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MatchRequest":
        """Rebuild a request from :meth:`to_dict` output (defaults fill gaps)."""
        source_ids = payload.get("source_element_ids")
        target_ids = payload.get("target_element_ids")
        return cls(
            source=_ref_from_dict(payload["source"]),
            target=_ref_from_dict(payload["target"]),
            options=MatchOptions.from_dict(payload.get("options", {})),
            source_element_ids=tuple(source_ids) if source_ids is not None else None,
            target_element_ids=tuple(target_ids) if target_ids is not None else None,
        )


@dataclass(frozen=True)
class CorpusMatchRequest:
    """One MATCH(source, *everything registered*) invocation, as data.

    The paper's routine enterprise operation: match a schema against the
    whole repository and come back with the top-k registered schemata plus
    full correspondences for each.  Execution is two-staged -- the corpus
    index prunes the registry to ``retrieval_limit`` candidates, the
    blocked batch fast path scores each survivor -- so requests stay cheap
    even over hundreds of registered schemata (bench E17).

    Parameters
    ----------
    source:
        The query schema: inline, or the name of a registered schema.
    top_k:
        How many ranked candidate schemata the response keeps.
    options:
        Per-pair matching configuration (voters, merger, selection,
        threshold).  The execution hint is ignored: corpus matching always
        rides the blocked fast path per candidate.
    retrieval_limit:
        How many index candidates are actually matched; ``None`` means
        ``max(3 x top_k, 10)``.  Raising it trades latency for retrieval
        recall; the registry size caps it implicitly.
    exclude:
        Registered names never retrieved or matched.  Self-exclusion is
        automatic: a by-name query excludes that name, an inline query
        excludes content-identical registered copies of itself (a
        registered schema that merely *shares the inline query's name*
        stays a candidate).
    reuse:
        The :class:`~repro.repository.reuse.ReusePolicy` folding prior
        assertions into each candidate's correspondences; ``None`` turns
        reuse off.  Reuse needs the query schema to be registered (priors
        are keyed by schema name); inline sources skip it silently.
    executor / max_workers:
        Candidate fan-out, as for the batch runner (``serial`` |
        ``thread`` | ``process``).
    """

    source: SchemaRef
    top_k: int = 5
    options: MatchOptions = field(default_factory=MatchOptions)
    retrieval_limit: int | None = None
    exclude: tuple[str, ...] = ()
    reuse: ReusePolicy | None = field(default_factory=ReusePolicy)
    executor: str = "serial"
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, (Schema, str)):
            raise TypeError("source must be a Schema or a registered schema name")
        if self.top_k <= 0:
            raise ValueError(f"top_k must be positive, got {self.top_k}")
        if self.retrieval_limit is not None and self.retrieval_limit <= 0:
            raise ValueError(
                f"retrieval_limit must be positive, got {self.retrieval_limit}"
            )
        object.__setattr__(self, "exclude", tuple(self.exclude))

    @property
    def effective_retrieval_limit(self) -> int:
        """The candidate-pruning width (defaults resolved)."""
        if self.retrieval_limit is not None:
            return self.retrieval_limit
        return max(3 * self.top_k, 10)

    # -- serialisation (the /corpus-match wire form) --------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; inverse of :meth:`from_dict`.

        ``reuse: null`` means reuse *off* (it is a meaningful value, not a
        gap); an absent key falls back to the default policy on the way in.
        """
        return {
            "source": _ref_to_dict(self.source),
            "top_k": self.top_k,
            "options": self.options.to_dict(),
            "retrieval_limit": self.retrieval_limit,
            "exclude": list(self.exclude),
            "reuse": self.reuse.to_dict() if self.reuse is not None else None,
            "executor": self.executor,
            "max_workers": self.max_workers,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CorpusMatchRequest":
        """Rebuild a request from :meth:`to_dict` output (defaults fill gaps)."""
        if "reuse" in payload:
            reuse_payload = payload["reuse"]
            reuse = (
                ReusePolicy.from_dict(reuse_payload)
                if reuse_payload is not None
                else None
            )
        else:
            reuse = ReusePolicy()
        return cls(
            source=_ref_from_dict(payload["source"]),
            top_k=payload.get("top_k", 5),
            options=MatchOptions.from_dict(payload.get("options", {})),
            retrieval_limit=payload.get("retrieval_limit"),
            exclude=tuple(payload.get("exclude", ())),
            reuse=reuse,
            executor=payload.get("executor", "serial"),
            max_workers=payload.get("max_workers"),
        )


@dataclass(frozen=True)
class NetworkMatchRequest:
    """One MATCH(source, target) *routed through the mapping network*.

    The repository's stored mappings form a graph (nodes = registered
    schemata, edges = stored correspondence sets); this request answers
    source -> target by composing evidence along acyclic pivot paths
    instead of (or before) matching from scratch.  Both endpoints must be
    *registered names* -- routing is a repository operation by definition.

    Parameters
    ----------
    source, target:
        Registered schema names (the graph's nodes).
    max_hops:
        Maximum pivot count per path (``1`` = classic single-pivot
        composition; ``2`` answers A -> C via A -> B1 -> B2 -> C).
    hop_decay:
        Confidence decay applied once per pivot beyond the first, so a
        3-hop chain never outranks an equally strong single-pivot one.
    options:
        Matching configuration for the verify stage (and the response
        envelope); ignored for compose-only requests beyond recording.
    min_score:
        Composed candidates below this score are dropped from a
        compose-only response (verify folds them as weak priors instead).
    trust:
        Optional :class:`TrustPolicy` gating which stored legs are
        traversable (rejected assertions never are).  The same policy
        carries into the verify fold's direct priors when ``reuse`` does
        not name its own trust gate, so one request-level policy governs
        the whole pipeline.
    verify:
        ``False`` returns the composed candidates as-is (cheap: no
        matching happens at all).  ``True`` runs the blocked E16
        fast path over the pair and folds the composed candidates in as
        COMPOSED-method priors under ``reuse`` -- confirmed compositions
        boost the fresh scores, unconfirmed ones are seeded back.
    reuse:
        The :class:`~repro.repository.reuse.ReusePolicy` used by the
        verify fold (direct stored priors join composed ones; a direct
        REJECTED assertion still vetoes its pair).
    """

    source: str
    target: str
    max_hops: int = 2
    hop_decay: float = 0.9
    options: MatchOptions = field(default_factory=MatchOptions)
    min_score: float = 0.0
    trust: "TrustPolicy | None" = None
    verify: bool = False
    reuse: ReusePolicy = field(default_factory=ReusePolicy)

    def __post_init__(self) -> None:
        for attribute in ("source", "target"):
            value = getattr(self, attribute)
            if not isinstance(value, str) or not value:
                raise TypeError(
                    f"{attribute} must be a registered schema name, got {value!r}"
                )
        if self.source == self.target:
            raise ValueError(
                f"source and target must differ, both are {self.source!r}"
            )
        if self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {self.max_hops}")
        if not 0.0 < self.hop_decay <= 1.0:
            raise ValueError(f"hop_decay must be in (0, 1], got {self.hop_decay}")
        if not 0.0 <= self.min_score <= 1.0:
            raise ValueError(f"min_score must be in [0, 1], got {self.min_score}")
        if self.reuse is None:
            raise TypeError("reuse must be a ReusePolicy (the verify fold needs one)")

    # -- serialisation (the /network-match wire form) -------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "source": self.source,
            "target": self.target,
            "max_hops": self.max_hops,
            "hop_decay": self.hop_decay,
            "options": self.options.to_dict(),
            "min_score": self.min_score,
            "trust": self.trust.to_dict() if self.trust is not None else None,
            "verify": self.verify,
            "reuse": self.reuse.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkMatchRequest":
        """Rebuild a request from :meth:`to_dict` output (defaults fill gaps)."""
        trust = payload.get("trust")
        reuse = payload.get("reuse")
        return cls(
            source=payload["source"],
            target=payload["target"],
            max_hops=payload.get("max_hops", 2),
            hop_decay=payload.get("hop_decay", 0.9),
            options=MatchOptions.from_dict(payload.get("options", {})),
            min_score=payload.get("min_score", 0.0),
            trust=TrustPolicy.from_dict(trust) if trust is not None else None,
            verify=payload.get("verify", False),
            reuse=ReusePolicy.from_dict(reuse) if reuse is not None else ReusePolicy(),
        )
