"""Typed MATCH requests: what to match, under which configuration.

A :class:`MatchRequest` names its schemata either *inline* (live
:class:`~repro.schema.schema.Schema` objects) or *by reference* (the
registered name of a schema in the service's bound
:class:`~repro.repository.store.MetadataRepository`) -- the paper's
repository-centric view, where a match invocation over registered artifacts
is itself an artifact.  Element-id restrictions carry the sub-tree /
concept-at-a-time workflows through the same front door.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.schema.schema import Schema
from repro.service.options import MatchOptions

__all__ = ["SchemaRef", "MatchRequest"]

#: A schema argument: inline, or the name of a repository-registered schema.
SchemaRef = Union[Schema, str]


@dataclass(frozen=True)
class MatchRequest:
    """One MATCH(source, target) invocation, as data.

    Parameters
    ----------
    source, target:
        Inline schemata or repository names (resolution of names requires
        the service to be bound to a repository).
    options:
        The :class:`~repro.service.options.MatchOptions` configuration;
        the calibrated defaults when omitted.
    source_element_ids / target_element_ids:
        Optional match-time grid restrictions (sub-tree and concept
        increments).  A target-side restriction forces the exact path --
        the blocked fast path prunes candidates target-side itself.
    """

    source: SchemaRef
    target: SchemaRef
    options: MatchOptions = field(default_factory=MatchOptions)
    source_element_ids: tuple[str, ...] | None = None
    target_element_ids: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, (Schema, str)):
            raise TypeError("source must be a Schema or a registered schema name")
        if not isinstance(self.target, (Schema, str)):
            raise TypeError("target must be a Schema or a registered schema name")
        for attribute in ("source_element_ids", "target_element_ids"):
            ids = getattr(self, attribute)
            if ids is not None:
                object.__setattr__(self, attribute, tuple(ids))

    @property
    def is_restricted(self) -> bool:
        """Whether either side of the pair grid is restricted."""
        return (
            self.source_element_ids is not None or self.target_element_ids is not None
        )
