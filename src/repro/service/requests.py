"""Typed MATCH requests: what to match, under which configuration.

A :class:`MatchRequest` names its schemata either *inline* (live
:class:`~repro.schema.schema.Schema` objects) or *by reference* (the
registered name of a schema in the service's bound
:class:`~repro.repository.store.MetadataRepository`) -- the paper's
repository-centric view, where a match invocation over registered artifacts
is itself an artifact.  Element-id restrictions carry the sub-tree /
concept-at-a-time workflows through the same front door.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.repository.provenance import TrustPolicy
from repro.repository.reuse import ReusePolicy
from repro.schema.schema import Schema
from repro.service.options import MatchOptions

__all__ = ["SchemaRef", "MatchRequest", "CorpusMatchRequest", "NetworkMatchRequest"]

#: A schema argument: inline, or the name of a repository-registered schema.
SchemaRef = Union[Schema, str]


@dataclass(frozen=True)
class MatchRequest:
    """One MATCH(source, target) invocation, as data.

    Parameters
    ----------
    source, target:
        Inline schemata or repository names (resolution of names requires
        the service to be bound to a repository).
    options:
        The :class:`~repro.service.options.MatchOptions` configuration;
        the calibrated defaults when omitted.
    source_element_ids / target_element_ids:
        Optional match-time grid restrictions (sub-tree and concept
        increments).  A target-side restriction forces the exact path --
        the blocked fast path prunes candidates target-side itself.
    """

    source: SchemaRef
    target: SchemaRef
    options: MatchOptions = field(default_factory=MatchOptions)
    source_element_ids: tuple[str, ...] | None = None
    target_element_ids: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, (Schema, str)):
            raise TypeError("source must be a Schema or a registered schema name")
        if not isinstance(self.target, (Schema, str)):
            raise TypeError("target must be a Schema or a registered schema name")
        for attribute in ("source_element_ids", "target_element_ids"):
            ids = getattr(self, attribute)
            if ids is not None:
                object.__setattr__(self, attribute, tuple(ids))

    @property
    def is_restricted(self) -> bool:
        """Whether either side of the pair grid is restricted."""
        return (
            self.source_element_ids is not None or self.target_element_ids is not None
        )


@dataclass(frozen=True)
class CorpusMatchRequest:
    """One MATCH(source, *everything registered*) invocation, as data.

    The paper's routine enterprise operation: match a schema against the
    whole repository and come back with the top-k registered schemata plus
    full correspondences for each.  Execution is two-staged -- the corpus
    index prunes the registry to ``retrieval_limit`` candidates, the
    blocked batch fast path scores each survivor -- so requests stay cheap
    even over hundreds of registered schemata (bench E17).

    Parameters
    ----------
    source:
        The query schema: inline, or the name of a registered schema.
    top_k:
        How many ranked candidate schemata the response keeps.
    options:
        Per-pair matching configuration (voters, merger, selection,
        threshold).  The execution hint is ignored: corpus matching always
        rides the blocked fast path per candidate.
    retrieval_limit:
        How many index candidates are actually matched; ``None`` means
        ``max(3 x top_k, 10)``.  Raising it trades latency for retrieval
        recall; the registry size caps it implicitly.
    exclude:
        Registered names never retrieved or matched.  Self-exclusion is
        automatic: a by-name query excludes that name, an inline query
        excludes content-identical registered copies of itself (a
        registered schema that merely *shares the inline query's name*
        stays a candidate).
    reuse:
        The :class:`~repro.repository.reuse.ReusePolicy` folding prior
        assertions into each candidate's correspondences; ``None`` turns
        reuse off.  Reuse needs the query schema to be registered (priors
        are keyed by schema name); inline sources skip it silently.
    executor / max_workers:
        Candidate fan-out, as for the batch runner (``serial`` |
        ``thread`` | ``process``).
    """

    source: SchemaRef
    top_k: int = 5
    options: MatchOptions = field(default_factory=MatchOptions)
    retrieval_limit: int | None = None
    exclude: tuple[str, ...] = ()
    reuse: ReusePolicy | None = field(default_factory=ReusePolicy)
    executor: str = "serial"
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.source, (Schema, str)):
            raise TypeError("source must be a Schema or a registered schema name")
        if self.top_k <= 0:
            raise ValueError(f"top_k must be positive, got {self.top_k}")
        if self.retrieval_limit is not None and self.retrieval_limit <= 0:
            raise ValueError(
                f"retrieval_limit must be positive, got {self.retrieval_limit}"
            )
        object.__setattr__(self, "exclude", tuple(self.exclude))

    @property
    def effective_retrieval_limit(self) -> int:
        """The candidate-pruning width (defaults resolved)."""
        if self.retrieval_limit is not None:
            return self.retrieval_limit
        return max(3 * self.top_k, 10)


@dataclass(frozen=True)
class NetworkMatchRequest:
    """One MATCH(source, target) *routed through the mapping network*.

    The repository's stored mappings form a graph (nodes = registered
    schemata, edges = stored correspondence sets); this request answers
    source -> target by composing evidence along acyclic pivot paths
    instead of (or before) matching from scratch.  Both endpoints must be
    *registered names* -- routing is a repository operation by definition.

    Parameters
    ----------
    source, target:
        Registered schema names (the graph's nodes).
    max_hops:
        Maximum pivot count per path (``1`` = classic single-pivot
        composition; ``2`` answers A -> C via A -> B1 -> B2 -> C).
    hop_decay:
        Confidence decay applied once per pivot beyond the first, so a
        3-hop chain never outranks an equally strong single-pivot one.
    options:
        Matching configuration for the verify stage (and the response
        envelope); ignored for compose-only requests beyond recording.
    min_score:
        Composed candidates below this score are dropped from a
        compose-only response (verify folds them as weak priors instead).
    trust:
        Optional :class:`TrustPolicy` gating which stored legs are
        traversable (rejected assertions never are).  The same policy
        carries into the verify fold's direct priors when ``reuse`` does
        not name its own trust gate, so one request-level policy governs
        the whole pipeline.
    verify:
        ``False`` returns the composed candidates as-is (cheap: no
        matching happens at all).  ``True`` runs the blocked E16
        fast path over the pair and folds the composed candidates in as
        COMPOSED-method priors under ``reuse`` -- confirmed compositions
        boost the fresh scores, unconfirmed ones are seeded back.
    reuse:
        The :class:`~repro.repository.reuse.ReusePolicy` used by the
        verify fold (direct stored priors join composed ones; a direct
        REJECTED assertion still vetoes its pair).
    """

    source: str
    target: str
    max_hops: int = 2
    hop_decay: float = 0.9
    options: MatchOptions = field(default_factory=MatchOptions)
    min_score: float = 0.0
    trust: "TrustPolicy | None" = None
    verify: bool = False
    reuse: ReusePolicy = field(default_factory=ReusePolicy)

    def __post_init__(self) -> None:
        for attribute in ("source", "target"):
            value = getattr(self, attribute)
            if not isinstance(value, str) or not value:
                raise TypeError(
                    f"{attribute} must be a registered schema name, got {value!r}"
                )
        if self.source == self.target:
            raise ValueError(
                f"source and target must differ, both are {self.source!r}"
            )
        if self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {self.max_hops}")
        if not 0.0 < self.hop_decay <= 1.0:
            raise ValueError(f"hop_decay must be in (0, 1], got {self.hop_decay}")
        if not 0.0 <= self.min_score <= 1.0:
            raise ValueError(f"min_score must be in [0, 1], got {self.min_score}")
        if self.reuse is None:
            raise TypeError("reuse must be a ReusePolicy (the verify fold needs one)")
