"""The MATCH response envelope: results as JSON-serialisable knowledge.

A :class:`MatchResponse` is what the paper's section 5 wants out of a match
invocation: not a transient score matrix but a durable record -- which
schemata, which configuration, which execution route, how long it took,
which correspondences came out, and under whose provenance.  The envelope
round-trips through :meth:`to_dict`/:meth:`from_dict` (property-tested), so
a future HTTP layer is a thin shim over the service and stored responses
stay readable.

The live :class:`~repro.match.engine.MatchResult` (dense matrix and all) is
attached on ``result`` for in-process consumers (overlap analysis,
concept-level matching); it is deliberately *not* part of the serialised
form or of equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cascade.plan import CascadeReport
from repro.match.correspondence import Correspondence
from repro.match.engine import MatchResult
from repro.repository.provenance import ProvenanceRecord
from repro.service.options import MatchOptions

__all__ = ["MatchResponse", "RESPONSE_FORMAT_VERSION"]

RESPONSE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class MatchResponse:
    """The envelope one MATCH invocation returns (see module docstring)."""

    source_name: str
    target_name: str
    n_source: int
    n_target: int
    n_pairs: int
    n_candidates: int
    route: str
    routing_reason: str
    elapsed_seconds: float
    voter_names: tuple[str, ...]
    options: MatchOptions
    correspondences: tuple[Correspondence, ...]
    provenance: ProvenanceRecord
    #: Per-stage timing and oracle spend when a cascade ran (None otherwise).
    cascade: CascadeReport | None = None
    #: Serialised span tree when the request opted in (``options.trace``).
    trace: dict[str, Any] | None = None
    #: Live result for in-process consumers; never serialised, never compared.
    result: MatchResult | None = field(default=None, compare=False, repr=False)
    #: Transport facts stamped by :class:`repro.server.MatchServiceClient`
    #: from response headers (``X-Harmonia-Cache`` / ``X-Harmonia-Trace``);
    #: never serialised, never compared.
    cache_status: str | None = field(default=None, compare=False, repr=False)
    trace_id: str | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "voter_names", tuple(self.voter_names))
        object.__setattr__(self, "correspondences", tuple(self.correspondences))

    # -- convenience queries --------------------------------------------
    @property
    def candidate_fraction(self) -> float:
        """Scored fraction of the cross-product (1.0 on the exact route)."""
        if self.n_pairs == 0:
            return 0.0
        return self.n_candidates / self.n_pairs

    @property
    def best_score(self) -> float:
        """The strongest correspondence score (0.0 when none selected)."""
        return max((c.score for c in self.correspondences), default=0.0)

    def __len__(self) -> int:
        return len(self.correspondences)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "format_version": RESPONSE_FORMAT_VERSION,
            "source": {"schema": self.source_name, "n_elements": self.n_source},
            "target": {"schema": self.target_name, "n_elements": self.n_target},
            "routing": {"route": self.route, "reason": self.routing_reason},
            "n_pairs": self.n_pairs,
            "n_candidates": self.n_candidates,
            "elapsed_seconds": self.elapsed_seconds,
            "voters": list(self.voter_names),
            "options": self.options.to_dict(),
            "correspondences": [c.to_dict() for c in self.correspondences],
            "provenance": self.provenance.to_dict(),
            "cascade": self.cascade.to_dict() if self.cascade is not None else None,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MatchResponse":
        """Rebuild a response envelope (without the live ``result``)."""
        version = payload.get("format_version")
        if version != RESPONSE_FORMAT_VERSION:
            raise ValueError(f"unsupported response format version {version!r}")
        return cls(
            source_name=payload["source"]["schema"],
            target_name=payload["target"]["schema"],
            n_source=payload["source"]["n_elements"],
            n_target=payload["target"]["n_elements"],
            n_pairs=payload["n_pairs"],
            n_candidates=payload["n_candidates"],
            route=payload["routing"]["route"],
            routing_reason=payload["routing"]["reason"],
            elapsed_seconds=payload["elapsed_seconds"],
            voter_names=tuple(payload["voters"]),
            options=MatchOptions.from_dict(payload["options"]),
            correspondences=tuple(
                Correspondence.from_dict(entry)
                for entry in payload["correspondences"]
            ),
            provenance=ProvenanceRecord.from_dict(payload["provenance"]),
            cascade=(
                CascadeReport.from_dict(payload["cascade"])
                if payload.get("cascade") is not None
                else None
            ),
            trace=payload.get("trace"),
        )

    def to_json(self, indent: int | None = None) -> str:
        """The envelope as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "MatchResponse":
        return cls.from_dict(json.loads(document))
