"""The MatchService facade: one front door for every MATCH invocation.

Section 5 argues that enterprise matching is a *managed operation*: inputs,
configurations and outputs are knowledge artifacts, and callers should not
care which execution strategy realises a MATCH.  :class:`MatchService` is
that seam.  It

* accepts typed :class:`~repro.service.requests.MatchRequest` objects
  (inline schemata or repository references, declarative
  :class:`~repro.service.options.MatchOptions`),
* **auto-routes** between the exact per-grid engine
  (:class:`~repro.match.engine.HarmonyMatchEngine`) and the blocked,
  feature-cached batch fast path (:class:`~repro.batch.BatchMatchRunner`)
  based on workload shape -- pair count for a single pair, registry size
  for corpus and all-pairs sweeps,
* shares **one** :class:`~repro.matchers.profile.FeatureSpace` and one
  profile cache across every engine and runner it compiles, so repeated
  calls over the same schemata never re-derive linguistic features,
* returns JSON-round-trippable
  :class:`~repro.service.response.MatchResponse` envelopes carrying
  provenance, timing and the routing decision, and
* optionally binds to a :class:`~repro.repository.store.MetadataRepository`
  so responses can be persisted and prior matches recalled (the paper's
  matches-as-knowledge loop).

The dataflow (request -> routing -> engine/batch -> response -> repository)
is drawn in ``docs/architecture.md``.

**Thread-safety.**  One service instance may be shared across threads (the
serving tier, :mod:`repro.server`, runs one per process under a
``ThreadingHTTPServer``): compiled-executor caches, the registered-schema
cache, and the lazy corpus index / mapping graph singletons are guarded by
an internal lock, so concurrent ``match_pair`` / ``corpus_match`` /
``network_match`` calls return the serial results -- pair-for-pair, with
scores equal to 1e-9 (thread-order token interning permutes float
summation order by one ulp; regression-tested by a thread-pool hammer in
``tests/test_concurrency.py``).  The lock covers cache *structure*, not
execution: matches themselves run concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.batch.runner import BatchMatchRunner, BatchPairOutcome
from repro.cascade.executor import CascadeCounters, CascadeExecutor
from repro.cascade.plan import CascadePlan
from repro.corpus.index import CorpusIndex
from repro.corpus.index import payload_hash as corpus_payload_hash
from repro.corpus.sharding import CorpusRefreshWorker, ShardedCorpusIndex
from repro.match.correspondence import Correspondence
from repro.match.engine import HarmonyMatchEngine, MatchResult
from repro.match.selection import SelectionStrategy
from repro.matchers.profile import FeatureSpace, SchemaProfile
from repro.network.graph import MappingGraph
from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.repository.store import MetadataRepository
from repro.schema.schema import Schema
from repro.schema.serialize import schema_to_dict
from repro.service.corpus_response import CorpusCandidate, CorpusMatchResponse
from repro.service.network_response import NetworkMatchResponse
from repro.service.options import MatchOptions
from repro.service.requests import (
    CorpusMatchRequest,
    MatchRequest,
    NetworkMatchRequest,
    SchemaRef,
)
from repro.service.response import MatchResponse
from repro.telemetry import Tracer, request_trace, span

__all__ = ["MatchService"]

#: Auto-routing default: a workload whose pair grid (single pair) or total
#: pair count (corpus / all-pairs sweep) reaches this many cells goes
#: through the blocked fast path (the paper's 10^6-pair scale; the E16
#: case study sits just above it at 1378 x 784).  Routing is deliberately
#: pair-count-only: blocking's measured recall is a price worth paying at
#: scale, never for a small registry where the exact engine is cheap and
#: lossless.
DEFAULT_AUTO_BATCH_PAIRS = 200_000


class MatchService:
    """The single entry point for matching (see module docstring).

    Parameters
    ----------
    options:
        Service-wide default :class:`MatchOptions`; requests may override
        per call.  The calibrated Harmony defaults when omitted.
    repository:
        Optional :class:`MetadataRepository` enabling schema-by-name
        requests, :meth:`persist` and :meth:`recall`.
    auto_batch_pairs:
        The auto-routing shape threshold (see the module constant).
    asserted_by:
        The asserter recorded on response provenance and persisted matches.
    oracle_cache:
        The judgement cache cascaded requests share: any
        :class:`~repro.server.distcache.CacheBackend` (pass a
        :class:`~repro.server.distcache.TieredCache` to share oracle
        judgements across replicas, exactly like response caching).  A
        private in-process :class:`~repro.server.cache.ResponseCache` is
        created lazily when omitted and a cascade first compiles.
    tracer:
        The :class:`~repro.telemetry.Tracer` gating span-tree tracing for
        requests that opt in via ``MatchOptions.trace`` (a default
        always-sample tracer when omitted).  The serving tier replaces it
        to apply the ``--trace-sample`` knob.
    """

    def __init__(
        self,
        options: MatchOptions | None = None,
        repository: MetadataRepository | None = None,
        auto_batch_pairs: int = DEFAULT_AUTO_BATCH_PAIRS,
        asserted_by: str = "match-service",
        corpus_shards: int | None = None,
        oracle_cache=None,
        tracer: Tracer | None = None,
    ):
        self.options = options if options is not None else MatchOptions()
        self.repository = repository
        if auto_batch_pairs <= 0:
            raise ValueError(f"auto_batch_pairs must be positive, got {auto_batch_pairs}")
        if corpus_shards is not None and corpus_shards < 1:
            raise ValueError(f"corpus_shards must be >= 1, got {corpus_shards}")
        self.auto_batch_pairs = auto_batch_pairs
        self.asserted_by = asserted_by
        self.tracer = tracer if tracer is not None else Tracer()
        #: None -> unsharded CorpusIndex; N -> ShardedCorpusIndex(N).
        self.corpus_shards = corpus_shards
        #: One feature space and one profile cache, shared by every engine
        #: and runner this service compiles.
        self.space = FeatureSpace()
        self._profiles: dict[int, SchemaProfile] = {}
        self._engines: dict[MatchOptions, HarmonyMatchEngine] = {}
        self._runners: dict[tuple, BatchMatchRunner] = {}
        #: Compiled cascades (plan -> executor), all sharing the service's
        #: oracle cache and spend counters.
        self._cascades: dict[CascadePlan, CascadeExecutor] = {}
        self._oracle_cache = oracle_cache
        self.cascade_counters = CascadeCounters()
        self._corpus_index: CorpusIndex | ShardedCorpusIndex | None = None
        self._refresh_worker: CorpusRefreshWorker | None = None
        self._mapping_graph: MappingGraph | None = None
        #: Registered schemata as stable objects, keyed by name and
        #: invalidated by the repository generation (see _registered_schema).
        self._registered: dict[str, Schema] = {}
        self._registered_generation: int | None = None
        #: Guards every shared cache above (profiles, compiled engines and
        #: runners, the registered-schema map, and the lazy corpus-index /
        #: mapping-graph singletons).  Reentrant: locked sections resolve
        #: schemata, which locks again.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Compiled executors (cached by options value)
    # ------------------------------------------------------------------
    def oracle_cache(self):
        """The shared oracle-judgement cache (created lazily)."""
        with self._lock:
            if self._oracle_cache is None:
                from repro.server.cache import ResponseCache

                self._oracle_cache = ResponseCache(max_entries=4096)
            return self._oracle_cache

    def cascade_executor(
        self, plan: CascadePlan | None
    ) -> CascadeExecutor | None:
        """The compiled cascade for a plan (None plan -> no cascade).

        Executors cache by plan value and share the service's oracle
        cache and :class:`~repro.cascade.CascadeCounters`, so every
        engine/runner compiled from the same plan reuses one oracle and
        one judgement cache.
        """
        if plan is None:
            return None
        with self._lock:
            executor = self._cascades.get(plan)
            if executor is None:
                executor = CascadeExecutor(
                    plan,
                    cache=self.oracle_cache(),
                    counters=self.cascade_counters,
                )
                self._cascades[plan] = executor
            return executor

    def cascade_status(self) -> dict:
        """Oracle budget/spend/cache state for /healthz and /metrics.

        Always present (zeroed counters before any cascaded request), so
        fleet monitoring can assert on the block unconditionally; the
        ``oracle_cache`` sub-block appears once a cascade has compiled.
        """
        status = self.cascade_counters.to_dict()
        status["compiled_plans"] = len(self._cascades)
        with self._lock:
            cache = self._oracle_cache
        if cache is not None and hasattr(cache, "describe"):
            status["oracle_cache"] = cache.describe()
        return status

    def engine(self, options: MatchOptions | None = None) -> HarmonyMatchEngine:
        """The exact engine for a configuration, sharing the service caches.

        This is the sanctioned way for low-level callers (incremental
        matching, sessions, diffing) to obtain an engine without losing
        the shared profile cache.
        """
        options = options if options is not None else self.options
        if options.trace:
            # Tracing is a request concern, not an execution configuration:
            # traced and untraced requests share one compiled engine.
            options = replace(options, trace=False)
        with self._lock:
            engine = self._engines.get(options)
            if engine is None:
                engine = HarmonyMatchEngine(
                    voters=options.build_voters(),
                    merger=options.build_merger(),
                    profile_cache=self._profiles,
                    cascade=self.cascade_executor(options.cascade),
                )
                self._engines[options] = engine
            return engine

    def runner(
        self,
        options: MatchOptions | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        keep_matrices: bool = True,
    ) -> BatchMatchRunner:
        """The batch runner for a configuration, sharing the service caches."""
        options = options if options is not None else self.options
        if options.trace:
            options = replace(options, trace=False)
        key = (options, executor, max_workers, keep_matrices)
        with self._lock:
            runner = self._runners.get(key)
            if runner is None:
                runner = BatchMatchRunner(
                    voters=options.build_voters(),
                    merger=options.build_merger(),
                    selection=options.build_selection(),
                    space=self.space,
                    fill_value=options.fill_value,
                    executor=executor,
                    max_workers=max_workers,
                    keep_matrices=keep_matrices,
                    profile_cache=self._profiles,
                    cascade=self.cascade_executor(options.cascade),
                )
                self._runners[key] = runner
            return runner

    # ------------------------------------------------------------------
    # Schema resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: SchemaRef) -> Schema:
        """An inline schema as-is; a name through the bound repository."""
        if isinstance(ref, Schema):
            return ref
        if self.repository is None:
            raise ValueError(
                f"schema reference {ref!r} requires a bound MetadataRepository"
            )
        return self._registered_schema(ref)

    def _registered_schema(self, name: str) -> Schema:
        """A registered schema as a *stable* object (generation-cached).

        Repeated by-name and corpus requests reuse one ``Schema`` object
        per registered name, so the id-keyed profile/feature caches hit
        across calls instead of re-deserialising and re-profiling every
        candidate per query.  The cache drops -- and evicts its schemata's
        profiles, so the profile dict cannot grow without bound -- whenever
        the repository's generation moves.
        """
        with self._lock:
            generation = self.repository.generation
            if self._registered_generation != generation:
                for schema in self._registered.values():
                    self._profiles.pop(id(schema), None)
                self._registered.clear()
                self._registered_generation = generation
            schema = self._registered.get(name)
        if schema is None:
            # Deserialise OUTSIDE the lock (rebuilding an object graph is
            # the expensive part, and it is idempotent); the first insert
            # wins so every caller shares one object -- the id-keyed
            # profile caches depend on that.
            built = self.repository.schema(name)
            with self._lock:
                schema = self._registered.setdefault(name, built)
        return schema

    def _resolve_registry(
        self, schemata: Mapping[str, SchemaRef]
    ) -> dict[str, Schema]:
        return {name: self.resolve(ref) for name, ref in schemata.items()}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_pair(self, request: MatchRequest, source: Schema, target: Schema) -> tuple[str, str]:
        """The (route, reason) decision for one pair request."""
        execution = request.options.execution
        if request.target_element_ids is not None:
            if execution == "batch":
                raise ValueError(
                    "the batch path cannot restrict the target side; "
                    "use execution='exact' (or 'auto') with target_element_ids"
                )
            return "exact", "target-side restriction requires the exact grid"
        if execution == "exact":
            return "exact", "requested"
        if execution == "batch":
            return "batch", "requested"
        n_rows = (
            len(request.source_element_ids)
            if request.source_element_ids is not None
            else len(source)
        )
        n_pairs = n_rows * len(target)
        if n_pairs >= self.auto_batch_pairs:
            return "batch", (
                f"{n_pairs:,} pairs >= auto_batch_pairs ({self.auto_batch_pairs:,})"
            )
        return "exact", (
            f"{n_pairs:,} pairs < auto_batch_pairs ({self.auto_batch_pairs:,})"
        )

    def _route_sweep(self, total_pairs: int, options: MatchOptions) -> tuple[str, str]:
        """The (route, reason) decision for corpus / all-pairs sweeps.

        Pair-count-only on purpose: a registry of many *small* schemata is
        cheap and lossless on the exact engine (which shares the same
        profile cache); blocking's recall trade-off is only bought when
        the total workload warrants it.
        """
        if options.execution == "exact":
            return "exact", "requested"
        if options.execution == "batch":
            return "batch", "requested"
        if total_pairs >= self.auto_batch_pairs:
            return "batch", (
                f"{total_pairs:,} total pairs >= auto_batch_pairs "
                f"({self.auto_batch_pairs:,})"
            )
        return "exact", (
            f"{total_pairs:,} total pairs < auto_batch_pairs "
            f"({self.auto_batch_pairs:,})"
        )

    # ------------------------------------------------------------------
    # The MATCH operation
    # ------------------------------------------------------------------
    def match(self, request: MatchRequest) -> MatchResponse:
        """Execute one typed MATCH request (route, run, envelope).

        When the request opts in (``options.trace``) and the tracer
        samples it, the returned envelope carries the serialised span
        tree; otherwise every instrumentation site below is a no-op.
        """
        with request_trace(self.tracer, request.options.trace) as trace:
            with span("service.match"):
                response = self._match(request)
            if trace is not None:
                response = replace(response, trace=trace.to_dict())
            return response

    def _match(self, request: MatchRequest) -> MatchResponse:
        source = self.resolve(request.source)
        target = self.resolve(request.target)
        with span("route.compile") as compile_span:
            route, reason = self.route_pair(request, source, target)
            executor = (
                self.runner(request.options)
                if route == "batch"
                else self.engine(request.options)
            )
            compile_span.annotate(route=route)
        source_ids = (
            list(request.source_element_ids)
            if request.source_element_ids is not None
            else None
        )
        if route == "batch":
            result = executor.match_pair(
                source, target, source_element_ids=source_ids
            )
            n_candidates = result.n_candidates
        else:
            target_ids = (
                list(request.target_element_ids)
                if request.target_element_ids is not None
                else None
            )
            result = executor.match(
                source,
                target,
                source_element_ids=source_ids,
                target_element_ids=target_ids,
            )
            n_candidates = result.n_pairs
        with span("envelope.build"):
            return self._envelope(
                result,
                request.options,
                route,
                reason,
                n_candidates,
                selection=None,
            )

    def match_pair(
        self,
        source: SchemaRef,
        target: SchemaRef,
        options: MatchOptions | None = None,
        source_element_ids: Sequence[str] | None = None,
        target_element_ids: Sequence[str] | None = None,
    ) -> MatchResponse:
        """Convenience wrapper building the :class:`MatchRequest` inline."""
        return self.match(
            MatchRequest(
                source=source,
                target=target,
                options=options if options is not None else self.options,
                source_element_ids=(
                    tuple(source_element_ids)
                    if source_element_ids is not None
                    else None
                ),
                target_element_ids=(
                    tuple(target_element_ids)
                    if target_element_ids is not None
                    else None
                ),
            )
        )

    # ------------------------------------------------------------------
    # Corpus and all-pairs sweeps
    # ------------------------------------------------------------------
    def match_corpus(
        self,
        source: SchemaRef,
        corpus: Mapping[str, SchemaRef],
        options: MatchOptions | None = None,
        selection: SelectionStrategy | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> list[MatchResponse]:
        """Match one schema against every schema of a corpus.

        ``selection`` optionally overrides the options-declared strategy
        with a live instance (for in-process callers; the declarative form
        in ``options`` is what serialises).
        """
        options = options if options is not None else self.options
        source_schema = self.resolve(source)
        registry = self._resolve_registry(corpus)
        total = sum(len(source_schema) * len(s) for s in registry.values())
        route, reason = self._route_sweep(total, options)
        if route == "batch":
            # Sweep envelopes never carry dense matrices; don't retain them.
            runner = self.runner(
                options, executor=executor, max_workers=max_workers,
                keep_matrices=False,
            )
            outcomes = runner.match_corpus(source_schema, registry, selection=selection)
            return [
                self._envelope_outcome(outcome, options, route, reason, runner)
                for outcome in outcomes
            ]
        selection = selection if selection is not None else options.build_selection()
        engine = self.engine(options)
        responses = []
        for name in sorted(registry):
            result = engine.match(source_schema, registry[name])
            responses.append(
                self._envelope(
                    result, options, route, reason, result.n_pairs, selection,
                    target_name=name,
                )
            )
        return responses

    def match_all_pairs(
        self,
        schemata: Mapping[str, SchemaRef],
        options: MatchOptions | None = None,
        selection: SelectionStrategy | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> list[MatchResponse]:
        """All C(N,2) pairwise matches of a registry (the N-way front end)."""
        options = options if options is not None else self.options
        registry = self._resolve_registry(schemata)
        pairs = list(combinations(sorted(registry), 2))
        total = sum(len(registry[a]) * len(registry[b]) for a, b in pairs)
        route, reason = self._route_sweep(total, options)
        if route == "batch":
            runner = self.runner(
                options, executor=executor, max_workers=max_workers,
                keep_matrices=False,
            )
            outcomes = runner.match_all_pairs(registry, selection=selection)
            return [
                self._envelope_outcome(outcome, options, route, reason, runner)
                for outcome in outcomes
            ]
        selection = selection if selection is not None else options.build_selection()
        engine = self.engine(options)
        responses = []
        for name_a, name_b in pairs:
            result = engine.match(registry[name_a], registry[name_b])
            responses.append(
                self._envelope(
                    result, options, route, reason, result.n_pairs, selection,
                    source_name=name_a, target_name=name_b,
                )
            )
        return responses

    # ------------------------------------------------------------------
    # Repository-scale matching: retrieve, match, reuse, rank
    # ------------------------------------------------------------------
    def corpus_index(self) -> CorpusIndex | ShardedCorpusIndex:
        """The service's corpus index over its bound repository (lazy).

        One index per service; it refreshes itself against the
        repository's generation clock, so callers never rebuild manually.
        ``corpus_shards=N`` at construction swaps in a
        :class:`~repro.corpus.sharding.ShardedCorpusIndex` -- same
        retrieval contract, bit-identical scores, per-shard refresh.
        """
        if self.repository is None:
            raise ValueError("corpus indexing requires a bound MetadataRepository")
        with self._lock:
            if self._corpus_index is None:
                if self.corpus_shards is not None:
                    self._corpus_index = ShardedCorpusIndex(
                        self.repository, n_shards=self.corpus_shards
                    )
                else:
                    self._corpus_index = CorpusIndex(self.repository)
            return self._corpus_index

    def start_corpus_refresh(self, interval: float = 1.0) -> CorpusRefreshWorker:
        """Start (or return) the background refresh worker for this service.

        The worker watches the repository's generation clock and
        refreshes the corpus index off the request path, so
        ``corpus_match`` queries land on warm snapshots (a query that
        outruns the worker still refreshes synchronously -- the worker is
        a latency optimisation, never a correctness dependency).
        """
        with self._lock:
            worker = self._refresh_worker
            if worker is None or not worker.running:
                worker = CorpusRefreshWorker(self.corpus_index(), interval=interval)
                worker.start()
                self._refresh_worker = worker
            return worker

    def stop_corpus_refresh(self) -> None:
        """Stop the background refresh worker, if one is running."""
        with self._lock:
            worker = self._refresh_worker
            self._refresh_worker = None
        if worker is not None:
            worker.stop()

    def corpus_status(self) -> dict:
        """Corpus + refresh-worker state for /healthz and /metrics.

        A monitoring read: reports the *published* snapshots without
        triggering a refresh, so probing an idle service stays cheap and
        never takes the refresh lock.  ``{"initialized": False}`` until
        the first ``corpus_match`` (or explicit ``corpus_index()`` call)
        builds the index.
        """
        with self._lock:
            index = self._corpus_index
            worker = self._refresh_worker
        if index is None:
            return {"initialized": False}
        status: dict = {
            "initialized": True,
            "n_indexed": index.n_indexed(),
            "stale": index.is_stale(),
        }
        if isinstance(index, ShardedCorpusIndex):
            status["n_shards"] = index.n_shards
            status["shards"] = [stats.to_dict() for stats in index.shard_stats()]
        if worker is not None:
            status["refresh_worker"] = worker.stats().to_dict()
        return status

    def corpus_match(self, request: CorpusMatchRequest) -> CorpusMatchResponse:
        """Match a schema against everything registered; return the top k.

        The repository-scale MATCH (see ``docs/repository.md``):

        1. **retrieve** -- the corpus index prunes the registry to the
           request's ``retrieval_limit`` BM25 candidates.  A by-name
           query excludes its own name; an inline query excludes
           content-identical registered copies of itself.  Two *distinct*
           registered systems with identical schemata stay candidates
           for a by-name query (the consolidation case: the sibling is
           the best match, not a copy);
        2. **match** -- each surviving candidate is matched on the blocked
           batch fast path, fanned out by the shared
           :class:`~repro.batch.BatchMatchRunner` (the execution hint in
           ``request.options`` is ignored: pruning has already decided the
           cost/recall trade, so the per-candidate path is always batch);
        3. **reuse** -- prior assertions boost/seed each candidate's
           correspondences under the request's
           :class:`~repro.repository.reuse.ReusePolicy`.  Priors key on
           registered names: a by-name request uses that name, an inline
           schema uses the name of a content-identical registered copy
           when one exists and skips reuse otherwise (a merely same-named
           registered schema lends neither exclusion nor priors);
        4. **rank** -- candidates order by total positive correspondence
           score (retrieval score breaks ties) and the top k survive.
        """
        if self.repository is None:
            raise ValueError("corpus_match requires a bound MetadataRepository")
        with request_trace(self.tracer, request.options.trace) as trace:
            with span("service.corpus_match"):
                response = self._corpus_match(request)
            if trace is not None:
                response = replace(response, trace=trace.to_dict())
            return response

    def _corpus_match(self, request: CorpusMatchRequest) -> CorpusMatchResponse:
        started = time.perf_counter()
        source = self.resolve(request.source)
        # A by-name request is identified by its registered name; an inline
        # schema is identified by *content only* -- its .name may collide
        # with an unrelated registered schema, which must stay a candidate
        # and must not lend the inline query its stored priors.
        source_name = request.source if isinstance(request.source, str) else None
        excluded = set(request.exclude)
        if source_name is not None:
            excluded.add(source_name)

        with span("corpus.retrieve") as retrieve_span:
            index = self.corpus_index()
            retrieval_started = time.perf_counter()
            limit = request.effective_retrieval_limit
            # An INLINE query's registered copies are dropped besides the
            # name exclusions (an identical copy is the query itself and
            # would waste the top rank on a self-match).  A by-name query
            # keeps content-identical siblings: two distinct registered
            # systems with identical schemata are the paper's consolidation
            # case, and the sibling is the best possible candidate, not a
            # copy.  Identity is decided by the corpus index's persisted
            # content hashes (one map fetch, no payload parsing); the fetch
            # widens until `limit` survivors are found or the index is
            # exhausted.
            source_hash = (
                corpus_payload_hash(schema_to_dict(source))
                if source_name is None
                else None
            )
            identical: list[str] = []
            hits: list = []
            fetch_limit = limit + len(excluded) + 1
            while True:
                fetched = index.top_candidates(source, limit=fetch_limit)
                content_hashes = (
                    self.repository.fingerprint_hashes()
                    if source_hash is not None
                    else {}
                )
                identical.clear()
                hits.clear()
                for hit in fetched:
                    if len(hits) == limit:
                        break
                    if hit.schema_name in excluded:
                        continue
                    if source_hash is not None and source_hash == (
                        content_hashes.get(hit.schema_name)
                        or corpus_payload_hash(
                            self.repository.schema_payload(hit.schema_name)
                        )
                    ):
                        identical.append(hit.schema_name)
                        continue
                    hits.append(hit)
                if len(hits) >= limit or len(fetched) < fetch_limit:
                    break
                fetch_limit *= 2
            retrieval_seconds = time.perf_counter() - retrieval_started
            retrieve_span.annotate(n_retrieved=len(hits))
        n_registered = len(index)
        if source_name is None and identical:
            # The inline query schema lives in the registry (under any
            # name); key reuse priors and the report on that name.
            source_name = min(identical)

        registry = {
            hit.schema_name: self._registered_schema(hit.schema_name)
            for hit in hits
        }
        retrieval_score = {hit.schema_name: hit.score for hit in hits}
        with span("route.compile", route="batch"):
            runner = self.runner(
                request.options,
                executor=request.executor,
                max_workers=request.max_workers,
                keep_matrices=False,
            )
        outcomes = runner.match_corpus(
            source, registry, selection=request.options.build_selection()
        )

        reuse_applied = (
            request.reuse is not None
            and source_name is not None
            and source_name in self.repository
        )
        prior_pool = self.repository.matches() if reuse_applied else None
        candidates: list[CorpusCandidate] = []
        with span("envelope.build"):
            for outcome in outcomes:
                correspondences = tuple(outcome.correspondences)
                n_boosted = n_seeded = 0
                if reuse_applied:
                    with span("reuse.apply", target=outcome.target_name):
                        reused = request.reuse.rematch(
                            self.repository,
                            source_name,
                            outcome.target_name,
                            correspondences,
                            pool=prior_pool,
                        )
                    correspondences = reused.correspondences
                    n_boosted, n_seeded = reused.n_boosted, reused.n_seeded
                candidates.append(
                    CorpusCandidate(
                        target_name=outcome.target_name,
                        retrieval_score=retrieval_score[outcome.target_name],
                        match_score=sum(max(0.0, c.score) for c in correspondences),
                        n_source=outcome.n_source,
                        n_target=outcome.n_target,
                        n_candidates=outcome.n_candidates,
                        elapsed_seconds=outcome.elapsed_seconds,
                        n_boosted=n_boosted,
                        n_seeded=n_seeded,
                        correspondences=correspondences,
                        cascade=outcome.cascade,
                    )
                )
            candidates.sort(
                key=lambda c: (-c.match_score, -c.retrieval_score, c.target_name)
            )
        return CorpusMatchResponse(
            source_name=source_name if source_name is not None else source.name,
            n_registered=n_registered,
            n_retrieved=len(hits),
            top_k=request.top_k,
            elapsed_seconds=time.perf_counter() - started,
            retrieval_seconds=retrieval_seconds,
            options=request.options,
            reuse_applied=reuse_applied,
            candidates=tuple(candidates[: request.top_k]),
        )

    # ------------------------------------------------------------------
    # Network matching: route through stored mappings
    # ------------------------------------------------------------------
    def mapping_graph(self) -> MappingGraph:
        """The service's mapping network over its bound repository (lazy).

        One graph per service; it refreshes itself against the
        repository's generation and match-generation clocks, so repeated
        :meth:`network_match` calls over a warm repository do no store
        scans at all.
        """
        if self.repository is None:
            raise ValueError("the mapping network requires a bound MetadataRepository")
        with self._lock:
            if self._mapping_graph is None:
                self._mapping_graph = MappingGraph(self.repository)
            return self._mapping_graph

    def network_match(self, request: NetworkMatchRequest) -> NetworkMatchResponse:
        """Answer MATCH(source, target) by routing through stored mappings.

        The mapping-network MATCH (see ``docs/repository.md``):

        1. **route** -- the cached :class:`MappingGraph` enumerates every
           acyclic pivot path up to ``max_hops`` between the two
           registered names and composes correspondences along each
           (min-leg scoring, per-extra-hop decay, multi-path merge);
        2. **verify** (optional) -- the composed candidates seed a blocked
           E16 fast-path run over the actual pair: fresh output is folded
           with the composed candidates (and any direct stored priors)
           under the request's :class:`~repro.repository.reuse.ReusePolicy`,
           so a composition the fresh evidence confirms is boosted and one
           it cannot see is seeded back as a reviewable candidate.

        Compose-only requests never profile or match a single element --
        the answer is derived entirely from stored knowledge.
        """
        if self.repository is None:
            raise ValueError("network_match requires a bound MetadataRepository")
        with request_trace(self.tracer, request.options.trace) as trace:
            with span("service.network_match"):
                response = self._network_match(request)
            if trace is not None:
                response = replace(response, trace=trace.to_dict())
            return response

    def _network_match(
        self, request: NetworkMatchRequest
    ) -> NetworkMatchResponse:
        started = time.perf_counter()
        for name in (request.source, request.target):
            if name not in self.repository:
                raise KeyError(f"schema {name!r} is not registered")
        with span("network.route") as route_span:
            graph = self.mapping_graph()
            route = graph.route(
                request.source,
                request.target,
                max_hops=request.max_hops,
                hop_decay=request.hop_decay,
                policy=request.trust,
            )
            route_span.annotate(n_paths=len(route.paths))
        graph_seconds = time.perf_counter() - started
        composed = tuple(
            c for c in route.correspondences if c.score >= request.min_score
        )
        n_boosted = n_seeded = 0
        correspondences = composed
        if request.verify:
            with span("route.compile", route="batch"):
                runner = self.runner(request.options, keep_matrices=False)
            result = runner.match_pair(
                self._registered_schema(request.source),
                self._registered_schema(request.target),
            )
            fresh = list(result.candidates(request.options.build_selection()))
            # The request-level trust gate governs the whole pipeline: when
            # the fold's policy does not name its own, direct stored priors
            # are filtered under the same policy that gated the legs.
            reuse = request.reuse
            if request.trust is not None and reuse.trust is None:
                reuse = replace(reuse, trust=request.trust)
            with span("reuse.apply"):
                priors = reuse.priors(
                    self.repository,
                    request.source,
                    request.target,
                    composed=route.correspondences,
                )
                outcome = reuse.apply(fresh, priors)
            correspondences = outcome.correspondences
            n_boosted, n_seeded = outcome.n_boosted, outcome.n_seeded
        refresh = graph.last_refresh
        return NetworkMatchResponse(
            source_name=request.source,
            target_name=request.target,
            max_hops=request.max_hops,
            hop_decay=request.hop_decay,
            n_nodes=refresh.n_nodes if refresh is not None else 0,
            n_edges=refresh.n_edges if refresh is not None else 0,
            paths=route.paths,
            composed=composed,
            verified=request.verify,
            n_boosted=n_boosted,
            n_seeded=n_seeded,
            elapsed_seconds=time.perf_counter() - started,
            graph_seconds=graph_seconds,
            options=request.options,
            correspondences=correspondences,
        )

    # ------------------------------------------------------------------
    # Envelopes
    # ------------------------------------------------------------------
    def _provenance(
        self, correspondences: tuple[Correspondence, ...], route: str
    ) -> ProvenanceRecord:
        best = max((c.score for c in correspondences), default=0.0)
        return ProvenanceRecord(
            asserted_by=self.asserted_by,
            method=AssertionMethod.AUTOMATIC,
            confidence=best,
            context=f"route={route}",
        )

    def _envelope(
        self,
        result: MatchResult,
        options: MatchOptions,
        route: str,
        reason: str,
        n_candidates: int,
        selection: SelectionStrategy | None,
        source_name: str | None = None,
        target_name: str | None = None,
    ) -> MatchResponse:
        strategy = selection if selection is not None else options.build_selection()
        correspondences = tuple(result.candidates(strategy))
        return MatchResponse(
            source_name=source_name if source_name is not None else result.source.name,
            target_name=target_name if target_name is not None else result.target.name,
            n_source=len(result.matrix.source_ids),
            n_target=len(result.matrix.target_ids),
            n_pairs=result.n_pairs,
            n_candidates=n_candidates,
            route=route,
            routing_reason=reason,
            elapsed_seconds=result.elapsed_seconds,
            voter_names=tuple(result.voter_names),
            options=options,
            correspondences=correspondences,
            provenance=self._provenance(correspondences, route),
            cascade=result.cascade,
            result=result,
        )

    def _envelope_outcome(
        self,
        outcome: BatchPairOutcome,
        options: MatchOptions,
        route: str,
        reason: str,
        runner: BatchMatchRunner,
    ) -> MatchResponse:
        correspondences = tuple(outcome.correspondences)
        return MatchResponse(
            source_name=outcome.source_name,
            target_name=outcome.target_name,
            n_source=outcome.n_source,
            n_target=outcome.n_target,
            n_pairs=outcome.n_pairs,
            n_candidates=outcome.n_candidates,
            route=route,
            routing_reason=reason,
            elapsed_seconds=outcome.elapsed_seconds,
            voter_names=tuple(voter.name for voter in runner.voters),
            options=options,
            correspondences=correspondences,
            provenance=self._provenance(correspondences, route),
            cascade=outcome.cascade,
            result=None,
        )

    # ------------------------------------------------------------------
    # The matches-as-knowledge loop
    # ------------------------------------------------------------------
    def persist(
        self,
        response: MatchResponse,
        context: str | None = None,
        register_schemas: bool = True,
    ) -> int:
        """Store a response's correspondences (and schemata) in the repository.

        Registers the pair's schemata when the response still carries its
        live result and they are not registered yet; stores every
        correspondence with AUTOMATIC provenance under the routing context.
        Returns the number of matches stored.

        Sweep responses (and deserialised envelopes) carry no live result,
        so their schemata must already be registered -- a missing one
        raises ``ValueError`` with that guidance rather than failing deep
        inside the store.
        """
        if self.repository is None:
            raise ValueError("persist requires a bound MetadataRepository")
        if register_schemas and response.result is not None:
            for name, schema in (
                (response.source_name, response.result.source),
                (response.target_name, response.result.target),
            ):
                if name not in self.repository:
                    self.repository.register(schema, name=name)
        missing = [
            name
            for name in (response.source_name, response.target_name)
            if name not in self.repository
        ]
        if missing:
            raise ValueError(
                f"cannot persist response: schemata {missing} are not "
                "registered (corpus/all-pairs and deserialised responses "
                "carry no live schemata; register them first)"
            )
        return self.repository.store_matches(
            response.source_name,
            response.target_name,
            response.correspondences,
            asserted_by=self.asserted_by,
            method=AssertionMethod.AUTOMATIC,
            context=context if context is not None else f"route={response.route}",
        )

    def recall(
        self,
        source: str,
        target: str,
        policy: TrustPolicy | None = None,
    ) -> tuple[Correspondence, ...]:
        """Prior correspondences for a registered pair, trust-filtered."""
        if self.repository is None:
            raise ValueError("recall requires a bound MetadataRepository")
        return tuple(
            match.correspondence
            for match in self.repository.matches(
                source_schema=source, target_schema=target, policy=policy
            )
        )

    # ------------------------------------------------------------------
    def warm(self, schemata: Iterable[SchemaRef]) -> None:
        """Pre-profile schemata and populate the shared feature cache."""
        self.runner(self.options).warm(
            self.resolve(ref) for ref in schemata
        )

    def clear_caches(self) -> None:
        """Release the shared profile and feature caches.

        The caches hold strong references to every schema matched through
        this service; long-lived processes cycling through unrelated
        corpora should clear between them.  Compiled engines and runners
        survive (they share the same now-empty dicts).
        """
        with self._lock:
            self._profiles.clear()
            self.space.clear()
            self._registered.clear()
            self._registered_generation = None
