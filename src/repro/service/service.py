"""The MatchService facade: one front door for every MATCH invocation.

Section 5 argues that enterprise matching is a *managed operation*: inputs,
configurations and outputs are knowledge artifacts, and callers should not
care which execution strategy realises a MATCH.  :class:`MatchService` is
that seam.  It

* accepts typed :class:`~repro.service.requests.MatchRequest` objects
  (inline schemata or repository references, declarative
  :class:`~repro.service.options.MatchOptions`),
* **auto-routes** between the exact per-grid engine
  (:class:`~repro.match.engine.HarmonyMatchEngine`) and the blocked,
  feature-cached batch fast path (:class:`~repro.batch.BatchMatchRunner`)
  based on workload shape -- pair count for a single pair, registry size
  for corpus and all-pairs sweeps,
* shares **one** :class:`~repro.matchers.profile.FeatureSpace` and one
  profile cache across every engine and runner it compiles, so repeated
  calls over the same schemata never re-derive linguistic features,
* returns JSON-round-trippable
  :class:`~repro.service.response.MatchResponse` envelopes carrying
  provenance, timing and the routing decision, and
* optionally binds to a :class:`~repro.repository.store.MetadataRepository`
  so responses can be persisted and prior matches recalled (the paper's
  matches-as-knowledge loop).

The dataflow (request -> routing -> engine/batch -> response -> repository)
is drawn in ``docs/architecture.md``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.batch.runner import BatchMatchRunner, BatchPairOutcome
from repro.match.correspondence import Correspondence
from repro.match.engine import HarmonyMatchEngine, MatchResult
from repro.match.selection import SelectionStrategy
from repro.matchers.profile import FeatureSpace, SchemaProfile
from repro.repository.provenance import AssertionMethod, ProvenanceRecord, TrustPolicy
from repro.repository.store import MetadataRepository
from repro.schema.schema import Schema
from repro.service.options import MatchOptions
from repro.service.requests import MatchRequest, SchemaRef
from repro.service.response import MatchResponse

__all__ = ["MatchService"]

#: Auto-routing default: a workload whose pair grid (single pair) or total
#: pair count (corpus / all-pairs sweep) reaches this many cells goes
#: through the blocked fast path (the paper's 10^6-pair scale; the E16
#: case study sits just above it at 1378 x 784).  Routing is deliberately
#: pair-count-only: blocking's measured recall is a price worth paying at
#: scale, never for a small registry where the exact engine is cheap and
#: lossless.
DEFAULT_AUTO_BATCH_PAIRS = 200_000


class MatchService:
    """The single entry point for matching (see module docstring).

    Parameters
    ----------
    options:
        Service-wide default :class:`MatchOptions`; requests may override
        per call.  The calibrated Harmony defaults when omitted.
    repository:
        Optional :class:`MetadataRepository` enabling schema-by-name
        requests, :meth:`persist` and :meth:`recall`.
    auto_batch_pairs:
        The auto-routing shape threshold (see the module constant).
    asserted_by:
        The asserter recorded on response provenance and persisted matches.
    """

    def __init__(
        self,
        options: MatchOptions | None = None,
        repository: MetadataRepository | None = None,
        auto_batch_pairs: int = DEFAULT_AUTO_BATCH_PAIRS,
        asserted_by: str = "match-service",
    ):
        self.options = options if options is not None else MatchOptions()
        self.repository = repository
        if auto_batch_pairs <= 0:
            raise ValueError(f"auto_batch_pairs must be positive, got {auto_batch_pairs}")
        self.auto_batch_pairs = auto_batch_pairs
        self.asserted_by = asserted_by
        #: One feature space and one profile cache, shared by every engine
        #: and runner this service compiles.
        self.space = FeatureSpace()
        self._profiles: dict[int, SchemaProfile] = {}
        self._engines: dict[MatchOptions, HarmonyMatchEngine] = {}
        self._runners: dict[tuple, BatchMatchRunner] = {}

    # ------------------------------------------------------------------
    # Compiled executors (cached by options value)
    # ------------------------------------------------------------------
    def engine(self, options: MatchOptions | None = None) -> HarmonyMatchEngine:
        """The exact engine for a configuration, sharing the service caches.

        This is the sanctioned way for low-level callers (incremental
        matching, sessions, diffing) to obtain an engine without losing
        the shared profile cache.
        """
        options = options if options is not None else self.options
        engine = self._engines.get(options)
        if engine is None:
            engine = HarmonyMatchEngine(
                voters=options.build_voters(),
                merger=options.build_merger(),
                profile_cache=self._profiles,
            )
            self._engines[options] = engine
        return engine

    def runner(
        self,
        options: MatchOptions | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        keep_matrices: bool = True,
    ) -> BatchMatchRunner:
        """The batch runner for a configuration, sharing the service caches."""
        options = options if options is not None else self.options
        key = (options, executor, max_workers, keep_matrices)
        runner = self._runners.get(key)
        if runner is None:
            runner = BatchMatchRunner(
                voters=options.build_voters(),
                merger=options.build_merger(),
                selection=options.build_selection(),
                space=self.space,
                fill_value=options.fill_value,
                executor=executor,
                max_workers=max_workers,
                keep_matrices=keep_matrices,
                profile_cache=self._profiles,
            )
            self._runners[key] = runner
        return runner

    # ------------------------------------------------------------------
    # Schema resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: SchemaRef) -> Schema:
        """An inline schema as-is; a name through the bound repository."""
        if isinstance(ref, Schema):
            return ref
        if self.repository is None:
            raise ValueError(
                f"schema reference {ref!r} requires a bound MetadataRepository"
            )
        return self.repository.schema(ref)

    def _resolve_registry(
        self, schemata: Mapping[str, SchemaRef]
    ) -> dict[str, Schema]:
        return {name: self.resolve(ref) for name, ref in schemata.items()}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_pair(self, request: MatchRequest, source: Schema, target: Schema) -> tuple[str, str]:
        """The (route, reason) decision for one pair request."""
        execution = request.options.execution
        if request.target_element_ids is not None:
            if execution == "batch":
                raise ValueError(
                    "the batch path cannot restrict the target side; "
                    "use execution='exact' (or 'auto') with target_element_ids"
                )
            return "exact", "target-side restriction requires the exact grid"
        if execution == "exact":
            return "exact", "requested"
        if execution == "batch":
            return "batch", "requested"
        n_rows = (
            len(request.source_element_ids)
            if request.source_element_ids is not None
            else len(source)
        )
        n_pairs = n_rows * len(target)
        if n_pairs >= self.auto_batch_pairs:
            return "batch", (
                f"{n_pairs:,} pairs >= auto_batch_pairs ({self.auto_batch_pairs:,})"
            )
        return "exact", (
            f"{n_pairs:,} pairs < auto_batch_pairs ({self.auto_batch_pairs:,})"
        )

    def _route_sweep(self, total_pairs: int, options: MatchOptions) -> tuple[str, str]:
        """The (route, reason) decision for corpus / all-pairs sweeps.

        Pair-count-only on purpose: a registry of many *small* schemata is
        cheap and lossless on the exact engine (which shares the same
        profile cache); blocking's recall trade-off is only bought when
        the total workload warrants it.
        """
        if options.execution == "exact":
            return "exact", "requested"
        if options.execution == "batch":
            return "batch", "requested"
        if total_pairs >= self.auto_batch_pairs:
            return "batch", (
                f"{total_pairs:,} total pairs >= auto_batch_pairs "
                f"({self.auto_batch_pairs:,})"
            )
        return "exact", (
            f"{total_pairs:,} total pairs < auto_batch_pairs "
            f"({self.auto_batch_pairs:,})"
        )

    # ------------------------------------------------------------------
    # The MATCH operation
    # ------------------------------------------------------------------
    def match(self, request: MatchRequest) -> MatchResponse:
        """Execute one typed MATCH request (route, run, envelope)."""
        source = self.resolve(request.source)
        target = self.resolve(request.target)
        route, reason = self.route_pair(request, source, target)
        source_ids = (
            list(request.source_element_ids)
            if request.source_element_ids is not None
            else None
        )
        if route == "batch":
            result = self.runner(request.options).match_pair(
                source, target, source_element_ids=source_ids
            )
            n_candidates = result.n_candidates
        else:
            target_ids = (
                list(request.target_element_ids)
                if request.target_element_ids is not None
                else None
            )
            result = self.engine(request.options).match(
                source,
                target,
                source_element_ids=source_ids,
                target_element_ids=target_ids,
            )
            n_candidates = result.n_pairs
        return self._envelope(
            result,
            request.options,
            route,
            reason,
            n_candidates,
            selection=None,
        )

    def match_pair(
        self,
        source: SchemaRef,
        target: SchemaRef,
        options: MatchOptions | None = None,
        source_element_ids: Sequence[str] | None = None,
        target_element_ids: Sequence[str] | None = None,
    ) -> MatchResponse:
        """Convenience wrapper building the :class:`MatchRequest` inline."""
        return self.match(
            MatchRequest(
                source=source,
                target=target,
                options=options if options is not None else self.options,
                source_element_ids=(
                    tuple(source_element_ids)
                    if source_element_ids is not None
                    else None
                ),
                target_element_ids=(
                    tuple(target_element_ids)
                    if target_element_ids is not None
                    else None
                ),
            )
        )

    # ------------------------------------------------------------------
    # Corpus and all-pairs sweeps
    # ------------------------------------------------------------------
    def match_corpus(
        self,
        source: SchemaRef,
        corpus: Mapping[str, SchemaRef],
        options: MatchOptions | None = None,
        selection: SelectionStrategy | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> list[MatchResponse]:
        """Match one schema against every schema of a corpus.

        ``selection`` optionally overrides the options-declared strategy
        with a live instance (for in-process callers; the declarative form
        in ``options`` is what serialises).
        """
        options = options if options is not None else self.options
        source_schema = self.resolve(source)
        registry = self._resolve_registry(corpus)
        total = sum(len(source_schema) * len(s) for s in registry.values())
        route, reason = self._route_sweep(total, options)
        if route == "batch":
            # Sweep envelopes never carry dense matrices; don't retain them.
            runner = self.runner(
                options, executor=executor, max_workers=max_workers,
                keep_matrices=False,
            )
            outcomes = runner.match_corpus(source_schema, registry, selection=selection)
            return [
                self._envelope_outcome(outcome, options, route, reason, runner)
                for outcome in outcomes
            ]
        selection = selection if selection is not None else options.build_selection()
        engine = self.engine(options)
        responses = []
        for name in sorted(registry):
            result = engine.match(source_schema, registry[name])
            responses.append(
                self._envelope(
                    result, options, route, reason, result.n_pairs, selection,
                    target_name=name,
                )
            )
        return responses

    def match_all_pairs(
        self,
        schemata: Mapping[str, SchemaRef],
        options: MatchOptions | None = None,
        selection: SelectionStrategy | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> list[MatchResponse]:
        """All C(N,2) pairwise matches of a registry (the N-way front end)."""
        options = options if options is not None else self.options
        registry = self._resolve_registry(schemata)
        pairs = list(combinations(sorted(registry), 2))
        total = sum(len(registry[a]) * len(registry[b]) for a, b in pairs)
        route, reason = self._route_sweep(total, options)
        if route == "batch":
            runner = self.runner(
                options, executor=executor, max_workers=max_workers,
                keep_matrices=False,
            )
            outcomes = runner.match_all_pairs(registry, selection=selection)
            return [
                self._envelope_outcome(outcome, options, route, reason, runner)
                for outcome in outcomes
            ]
        selection = selection if selection is not None else options.build_selection()
        engine = self.engine(options)
        responses = []
        for name_a, name_b in pairs:
            result = engine.match(registry[name_a], registry[name_b])
            responses.append(
                self._envelope(
                    result, options, route, reason, result.n_pairs, selection,
                    source_name=name_a, target_name=name_b,
                )
            )
        return responses

    # ------------------------------------------------------------------
    # Envelopes
    # ------------------------------------------------------------------
    def _provenance(
        self, correspondences: tuple[Correspondence, ...], route: str
    ) -> ProvenanceRecord:
        best = max((c.score for c in correspondences), default=0.0)
        return ProvenanceRecord(
            asserted_by=self.asserted_by,
            method=AssertionMethod.AUTOMATIC,
            confidence=best,
            context=f"route={route}",
        )

    def _envelope(
        self,
        result: MatchResult,
        options: MatchOptions,
        route: str,
        reason: str,
        n_candidates: int,
        selection: SelectionStrategy | None,
        source_name: str | None = None,
        target_name: str | None = None,
    ) -> MatchResponse:
        strategy = selection if selection is not None else options.build_selection()
        correspondences = tuple(result.candidates(strategy))
        return MatchResponse(
            source_name=source_name if source_name is not None else result.source.name,
            target_name=target_name if target_name is not None else result.target.name,
            n_source=len(result.matrix.source_ids),
            n_target=len(result.matrix.target_ids),
            n_pairs=result.n_pairs,
            n_candidates=n_candidates,
            route=route,
            routing_reason=reason,
            elapsed_seconds=result.elapsed_seconds,
            voter_names=tuple(result.voter_names),
            options=options,
            correspondences=correspondences,
            provenance=self._provenance(correspondences, route),
            result=result,
        )

    def _envelope_outcome(
        self,
        outcome: BatchPairOutcome,
        options: MatchOptions,
        route: str,
        reason: str,
        runner: BatchMatchRunner,
    ) -> MatchResponse:
        correspondences = tuple(outcome.correspondences)
        return MatchResponse(
            source_name=outcome.source_name,
            target_name=outcome.target_name,
            n_source=outcome.n_source,
            n_target=outcome.n_target,
            n_pairs=outcome.n_pairs,
            n_candidates=outcome.n_candidates,
            route=route,
            routing_reason=reason,
            elapsed_seconds=outcome.elapsed_seconds,
            voter_names=tuple(voter.name for voter in runner.voters),
            options=options,
            correspondences=correspondences,
            provenance=self._provenance(correspondences, route),
            result=None,
        )

    # ------------------------------------------------------------------
    # The matches-as-knowledge loop
    # ------------------------------------------------------------------
    def persist(
        self,
        response: MatchResponse,
        context: str | None = None,
        register_schemas: bool = True,
    ) -> int:
        """Store a response's correspondences (and schemata) in the repository.

        Registers the pair's schemata when the response still carries its
        live result and they are not registered yet; stores every
        correspondence with AUTOMATIC provenance under the routing context.
        Returns the number of matches stored.

        Sweep responses (and deserialised envelopes) carry no live result,
        so their schemata must already be registered -- a missing one
        raises ``ValueError`` with that guidance rather than failing deep
        inside the store.
        """
        if self.repository is None:
            raise ValueError("persist requires a bound MetadataRepository")
        if register_schemas and response.result is not None:
            for name, schema in (
                (response.source_name, response.result.source),
                (response.target_name, response.result.target),
            ):
                if name not in self.repository:
                    self.repository.register(schema, name=name)
        missing = [
            name
            for name in (response.source_name, response.target_name)
            if name not in self.repository
        ]
        if missing:
            raise ValueError(
                f"cannot persist response: schemata {missing} are not "
                "registered (corpus/all-pairs and deserialised responses "
                "carry no live schemata; register them first)"
            )
        return self.repository.store_matches(
            response.source_name,
            response.target_name,
            response.correspondences,
            asserted_by=self.asserted_by,
            method=AssertionMethod.AUTOMATIC,
            context=context if context is not None else f"route={response.route}",
        )

    def recall(
        self,
        source: str,
        target: str,
        policy: TrustPolicy | None = None,
    ) -> tuple[Correspondence, ...]:
        """Prior correspondences for a registered pair, trust-filtered."""
        if self.repository is None:
            raise ValueError("recall requires a bound MetadataRepository")
        return tuple(
            match.correspondence
            for match in self.repository.matches(
                source_schema=source, target_schema=target, policy=policy
            )
        )

    # ------------------------------------------------------------------
    def warm(self, schemata: Iterable[SchemaRef]) -> None:
        """Pre-profile schemata and populate the shared feature cache."""
        self.runner(self.options).warm(
            self.resolve(ref) for ref in schemata
        )

    def clear_caches(self) -> None:
        """Release the shared profile and feature caches.

        The caches hold strong references to every schema matched through
        this service; long-lived processes cycling through unrelated
        corpora should clear between them.  Compiled engines and runners
        survive (they share the same now-empty dicts).
        """
        self._profiles.clear()
        self.space.clear()
