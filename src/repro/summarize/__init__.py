"""The SUMMARIZE(S) operator: concepts, summaries, and concept-level matching."""

from repro.summarize.auto import ImportanceSummarizer, TokenClusterSummarizer
from repro.summarize.conceptmatch import (
    ConceptMatch,
    concept_match_matrix,
    match_concepts,
)
from repro.summarize.concepts import Concept, Summary
from repro.summarize.manual import summarize_by_roots, summarize_with_labels
from repro.summarize.quality import (
    coverage,
    inverse_purity,
    pairwise_f1,
    purity,
    summary_agreement,
)

__all__ = [
    "Concept",
    "ConceptMatch",
    "ImportanceSummarizer",
    "Summary",
    "TokenClusterSummarizer",
    "concept_match_matrix",
    "coverage",
    "inverse_purity",
    "match_concepts",
    "pairwise_f1",
    "purity",
    "summarize_by_roots",
    "summarize_with_labels",
    "summary_agreement",
]
