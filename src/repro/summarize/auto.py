"""Automatic schema summarization.

The paper's research agenda (section 5) asks for tools that "extract key
concepts from a schema and its documentation and ... break the schema into
semantically-related chunks", citing structural-importance work [12, 13].
Two automatic summarizers are provided:

* :class:`ImportanceSummarizer` -- Yu & Jagadish-flavoured: rank containers
  by structural importance (sub-tree size, documentation mass, name-token
  centrality) and keep the top k as concepts; every element maps to its
  nearest chosen ancestor.
* :class:`TokenClusterSummarizer` -- groups containers that share a dominant
  (synonym-canonicalised) name token into one concept: PERSON_MASTER,
  PERSON_ADDRESS and PERSON_ROLE all become "person".  This approximates how
  the engineers collapsed 140 tables into fewer abstract concepts.
"""

from __future__ import annotations

from collections import Counter

from repro.schema.schema import Schema
from repro.summarize.concepts import Summary
from repro.text.pipeline import LinguisticPipeline
from repro.text.thesaurus import SynonymLexicon

__all__ = ["ImportanceSummarizer", "TokenClusterSummarizer"]


class ImportanceSummarizer:
    """Keep the k most important containers as concepts.

    Importance of a container c combines:

    * size of its sub-tree (bigger tables model more of the domain),
    * total documentation length underneath (well-described = central),
    * centrality: how frequent the container's name tokens are across the
      whole schema (a "PERSON" prefix shared by ten tables marks a hub).
    """

    def __init__(self, k: int = 20, size_weight: float = 1.0,
                 doc_weight: float = 0.3, centrality_weight: float = 1.0):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.size_weight = size_weight
        self.doc_weight = doc_weight
        self.centrality_weight = centrality_weight
        self._pipeline = LinguisticPipeline.for_names()

    def importance(self, schema: Schema, root_id: str,
                   token_frequency: Counter | None = None) -> float:
        """Importance score of one container."""
        if token_frequency is None:
            token_frequency = self._token_frequency(schema)
        subtree = schema.subtree(root_id)
        size_term = float(len(subtree))
        doc_term = sum(len(element.documentation.split()) for element in subtree)
        root = schema.element(root_id)
        root_tokens = self._pipeline.terms(root.name)
        centrality = sum(token_frequency[token] for token in set(root_tokens))
        return (
            self.size_weight * size_term
            + self.doc_weight * doc_term
            + self.centrality_weight * centrality
        )

    def _token_frequency(self, schema: Schema) -> Counter:
        frequency: Counter = Counter()
        for element in schema:
            frequency.update(set(self._pipeline.terms(element.name)))
        return frequency

    def summarize(self, schema: Schema) -> Summary:
        """Produce a summary with at most k concepts."""
        token_frequency = self._token_frequency(schema)
        roots = schema.roots()
        ranked = sorted(
            roots,
            key=lambda root: -self.importance(
                schema, root.element_id, token_frequency
            ),
        )
        chosen = ranked[: self.k]
        summary = Summary(schema)
        for root in chosen:
            label_tokens = self._pipeline.terms(root.name) or [root.name.lower()]
            label = " ".join(token.capitalize() for token in label_tokens)
            concept_id = f"{root.element_id}#auto"
            summary.add_concept(
                label, description=root.documentation, concept_id=concept_id
            )
            summary.assign_subtree(root.element_id, concept_id)
        return summary


class TokenClusterSummarizer:
    """Group containers by their dominant canonical name token.

    Each root's *head token* is the first non-stopword token of its name,
    canonicalised through the synonym lexicon; roots sharing a head token
    form one concept.  This gives fewer, broader concepts than one-per-root
    -- closer to the abstract "Event"/"Person" labels the engineers chose.
    """

    def __init__(self, lexicon: SynonymLexicon | None = None, head_index: int = 0):
        self.lexicon = lexicon if lexicon is not None else SynonymLexicon.default()
        self.head_index = head_index
        self._pipeline = LinguisticPipeline.for_names()

    def head_token(self, name: str) -> str:
        """The grouping key for one container name."""
        tokens = self._pipeline.terms(name)
        if not tokens:
            return name.lower()
        index = min(self.head_index, len(tokens) - 1)
        return self.lexicon.canonical(tokens[index])

    def summarize(self, schema: Schema) -> Summary:
        summary = Summary(schema)
        head_to_concept: dict[str, str] = {}
        for root in schema.roots():
            head = self.head_token(root.name)
            concept_id = head_to_concept.get(head)
            if concept_id is None:
                concept = summary.add_concept(
                    head.capitalize(), concept_id=f"{head}#cluster"
                )
                concept_id = concept.concept_id
                head_to_concept[head] = concept_id
            summary.assign_subtree(root.element_id, concept_id)
        return summary
